"""Optimisers for the neural substrate."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.errors import ModelError
from repro.nn.autograd import Tensor


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ModelError("optimizer received no parameters")
        if lr <= 0:
            raise ModelError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += parameter.grad
                parameter.data -= self.lr * velocity
            else:
                parameter.data -= self.lr * parameter.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if grad is None:
                continue
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
