"""A small numpy reverse-mode autograd substrate with graph layers.

The paper's Table IV evaluates CSPM as a booster for node attribute
completion models (NeighAggre, VAE, GCN, GAT, GraphSAGE, SAT).  No GPU
deep-learning stack is available offline, so this package implements
the needed machinery from scratch on numpy:

* :mod:`repro.nn.autograd` — a reverse-mode ``Tensor``;
* :mod:`repro.nn.layers` — modules (Linear, GCN/GAT/SAGE convolutions);
* :mod:`repro.nn.optim` — SGD and Adam;
* :mod:`repro.nn.losses` — the losses used by the completion task;
* :mod:`repro.nn.models` — the six Table IV baselines.
"""

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import (
    GATConv,
    GCNConv,
    Linear,
    Module,
    SAGEConv,
    Sequential,
)
from repro.nn.losses import bce_with_logits, gaussian_kl, mse
from repro.nn.optim import SGD, Adam

__all__ = [
    "Adam",
    "GATConv",
    "GCNConv",
    "Linear",
    "Module",
    "SAGEConv",
    "SGD",
    "Sequential",
    "Tensor",
    "bce_with_logits",
    "gaussian_kl",
    "mse",
    "no_grad",
]
