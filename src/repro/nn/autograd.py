"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations that
produced it; :meth:`Tensor.backward` walks the graph in reverse
topological order accumulating gradients.  The operator set is the
minimum needed by the completion models: elementwise arithmetic with
broadcasting, matmul, common activations, reductions, indexing and
masking.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ModelError

ArrayLike = Union[np.ndarray, float, int, list, tuple]

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def _as_array(data: ArrayLike) -> np.ndarray:
    if isinstance(data, np.ndarray):
        return data.astype(np.float64, copy=False)
    return np.asarray(data, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # numpy defers to Tensor's operators

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor (defaults to scalar 1)."""
        if not self.requires_grad:
            raise ModelError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise ModelError("backward() without grad needs a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        # Iterative topological sort to dodge recursion limits on deep
        # graphs (e.g. many-layer or unrolled expressions).
        order: List[Tensor] = []
        seen = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if id(node) in seen or not node.requires_grad:
                continue
            if processed:
                seen.add(id(node))
                order.append(node)
            else:
                stack.append((node, True))
                for parent in node._parents:
                    if id(parent) not in seen and parent.requires_grad:
                        stack.append((parent, False))

        self.grad = grad
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free the tape as we go; parents keep their grads.
                node._backward = None
                node._parents = ()

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-(other if isinstance(other, Tensor) else Tensor(other)))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return (other if isinstance(other, Tensor) else Tensor(other)) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return (other if isinstance(other, Tensor) else Tensor(other)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------

    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._make(data, (self, other), backward)

    __matmul__ = matmul

    @property
    def T(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(self.data.T, (self,), backward)

    # ------------------------------------------------------------------
    # Activations and pointwise functions
    # ------------------------------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        factor = np.where(self.data > 0, 1.0, slope)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * factor)

        return Tensor._make(self.data * factor, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        data = exps / exps.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                dot = (grad * data).sum(axis=axis, keepdims=True)
                self._accumulate(data * (grad - dot))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions, shaping, masking
    # ------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make(self.data.reshape(*shape), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is true by ``value``.

        Gradients do not flow through the filled entries.
        """
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        inside = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * inside)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        start = 0
        for tensor, size in zip(tensors, sizes):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, start + size)
                tensor._accumulate(grad[tuple(slicer)])
            start += size

    return Tensor._make(data, tuple(tensors), backward)
