"""Weight initialisers for the neural substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


def glorot(fan_in: int, fan_out: int, rng: np.random.Generator) -> Tensor:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    data = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    return Tensor(data, requires_grad=True)


def he(fan_in: int, fan_out: int, rng: np.random.Generator) -> Tensor:
    """He normal initialisation (for ReLU stacks)."""
    data = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
    return Tensor(data, requires_grad=True)


def zeros(*shape: int) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=True)
