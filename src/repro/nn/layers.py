"""Neural modules: linear layers and graph convolutions.

The graph layers operate on dense node-feature matrices and a fixed
graph structure prepared once per graph:

* :class:`GCNConv` uses the symmetrically normalised adjacency
  ``D^-1/2 (A + I) D^-1/2`` (Kipf & Welling);
* :class:`SAGEConv` concatenates self features with mean-aggregated
  neighbour features (Hamilton et al.);
* :class:`GATConv` computes masked additive attention over edges
  (Velickovic et al.), dense with ``-inf`` masking off-edges.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.nn import init
from repro.nn.autograd import Tensor, concat


class Module:
    """Base class: recursive parameter collection and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Tensor]:
        seen = set()
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()
                    elif isinstance(item, Tensor) and item.requires_grad:
                        if id(item) not in seen:
                            seen.add(id(item))
                            yield item

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """A dense affine layer ``x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.weight = init.glorot(in_features, out_features, rng)
        self.bias = init.zeros(out_features) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = self._rng.random(x.shape) < keep
        return x * Tensor(mask / keep)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


# ----------------------------------------------------------------------
# Graph structure helpers
# ----------------------------------------------------------------------


def normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """``D^-1/2 (A + I) D^-1/2`` for GCN propagation."""
    a_hat = adjacency + np.eye(adjacency.shape[0])
    degree = a_hat.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return a_hat * inv_sqrt[:, None] * inv_sqrt[None, :]


def mean_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Row-normalised adjacency (mean neighbour aggregation)."""
    degree = adjacency.sum(axis=1)
    scale = np.divide(
        1.0, degree, out=np.zeros_like(degree, dtype=float), where=degree > 0
    )
    return adjacency * scale[:, None]


class GCNConv(Module):
    """One graph-convolution layer: ``A_norm @ x @ W + b``."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng)

    def forward(self, x: Tensor, a_norm: Tensor) -> Tensor:
        return a_norm @ self.linear(x)


class SAGEConv(Module):
    """GraphSAGE mean aggregator: ``[x || mean(x_neigh)] @ W``."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.linear = Linear(2 * in_features, out_features, rng)

    def forward(self, x: Tensor, a_mean: Tensor) -> Tensor:
        aggregated = a_mean @ x
        return self.linear(concat([x, aggregated], axis=1))


class GATConv(Module):
    """Dense masked graph attention (single head).

    Attention logits ``e_ij = LeakyReLU(a_src . Wh_i + a_dst . Wh_j)``
    are masked to the (self-looped) adjacency and softmax-normalised
    per row.
    """

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng, bias=False)
        self.att_src = init.glorot(out_features, 1, rng)
        self.att_dst = init.glorot(out_features, 1, rng)

    def forward(self, x: Tensor, adjacency_mask: np.ndarray) -> Tensor:
        h = self.linear(x)
        src = h @ self.att_src  # (n, 1)
        dst = h @ self.att_dst  # (n, 1)
        logits = (src + dst.T).leaky_relu(0.2)
        off_edges = ~adjacency_mask
        attention = logits.masked_fill(off_edges, -1e30).softmax(axis=1)
        return attention @ h


def adjacency_with_self_loops(adjacency: np.ndarray) -> np.ndarray:
    """Boolean mask ``A + I`` for attention layers."""
    mask = adjacency.astype(bool).copy()
    np.fill_diagonal(mask, True)
    return mask


class MLP(Module):
    """A plain multi-layer perceptron with ReLU activations."""

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        dropout: float = 0.0,
        final_activation: Optional[str] = None,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ModelError("MLP needs at least input and output sizes")
        layers: List[Module] = []
        for i in range(len(sizes) - 1):
            layers.append(Linear(sizes[i], sizes[i + 1], rng))
            if i < len(sizes) - 2:
                layers.append(ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng))
        self.body = Sequential(*layers)
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        out = self.body(x)
        if self.final_activation == "sigmoid":
            return out.sigmoid()
        if self.final_activation == "tanh":
            return out.tanh()
        return out
