"""Losses used by the attribute-completion models."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.autograd import Tensor


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _masked_mean(per_element: Tensor, mask: Optional[np.ndarray]) -> Tensor:
    """Mean of ``per_element``; ``mask`` selects rows (1 = keep)."""
    if mask is None:
        return per_element.mean()
    mask = np.asarray(mask, dtype=float)
    if mask.ndim == 1:
        mask = mask[:, None]
    weights = np.broadcast_to(mask, per_element.shape)
    total = per_element * Tensor(weights)
    count = float(weights.sum())
    return total.sum() * (1.0 / max(count, 1.0))


def _abs(x: Tensor) -> Tensor:
    """``|x|`` with subgradient ``sign(x)``."""
    return x * Tensor(np.sign(x.data))


def bce_with_logits(
    logits: Tensor, targets, mask: Optional[np.ndarray] = None
) -> Tensor:
    """Numerically-stable binary cross-entropy from logits.

    Computes ``max(x, 0) - x*t + log(1 + exp(-|x|))`` per element and
    averages; ``mask`` selects the rows (e.g. train nodes) included in
    the mean.
    """
    targets = _as_tensor(targets)
    positive_part = logits.clip(0.0, np.inf)
    log_term = ((-_abs(logits)).exp() + 1.0).log()
    per_element = positive_part - logits * targets + log_term
    return _masked_mean(per_element, mask)


def mse(prediction: Tensor, target, mask: Optional[np.ndarray] = None) -> Tensor:
    """Mean squared error, optionally row-masked."""
    target = _as_tensor(target)
    diff = prediction - target
    return _masked_mean(diff * diff, mask)


def gaussian_kl(mu: Tensor, logvar: Tensor) -> Tensor:
    """``KL(q(z|x) || N(0, I))`` for a diagonal Gaussian, batch mean."""
    kl = (mu * mu + logvar.exp() - logvar - 1.0) * 0.5
    return kl.sum(axis=1).mean()
