"""GCN attribute completer (Kipf & Welling, Table IV baseline).

A two-layer graph convolutional network over the observed attribute
indicators (zero rows for attribute-missing nodes), trained with
binary cross-entropy on the train nodes to reconstruct their own
attribute vectors, then applied transductively to all nodes.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import GCNConv, normalized_adjacency
from repro.nn.losses import bce_with_logits
from repro.nn.models.base import CompletionModel, register
from repro.nn.optim import Adam


@register("gcn")
class GCNCompleter(CompletionModel):
    """Two-layer GCN trained to reconstruct observed attributes."""

    def __init__(
        self,
        seed: int = 0,
        hidden: int = 64,
        epochs: int = 120,
        lr: float = 0.02,
        weight_decay: float = 5e-4,
    ) -> None:
        super().__init__(seed)
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.weight_decay = weight_decay
        self._scores: np.ndarray = None

    def fit(
        self,
        adjacency: np.ndarray,
        features: np.ndarray,
        train_mask: np.ndarray,
    ) -> "GCNCompleter":
        self._check_inputs(adjacency, features, train_mask)
        num_values = features.shape[1]
        a_norm = Tensor(normalized_adjacency(adjacency))
        x = Tensor(features)
        conv1 = GCNConv(num_values, self.hidden, self._rng)
        conv2 = GCNConv(self.hidden, num_values, self._rng)
        parameters = list(conv1.parameters()) + list(conv2.parameters())
        optimizer = Adam(parameters, lr=self.lr, weight_decay=self.weight_decay)
        targets = features

        for _epoch in range(self.epochs):
            optimizer.zero_grad()
            hidden = conv1(x, a_norm).relu()
            logits = conv2(hidden, a_norm)
            loss = bce_with_logits(logits, targets, mask=train_mask)
            loss.backward()
            optimizer.step()

        with no_grad():
            hidden = conv1(x, a_norm).relu()
            logits = conv2(hidden, a_norm)
            self._scores = logits.sigmoid().numpy()
        self._fitted = True
        return self

    def predict(self) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        return self._scores
