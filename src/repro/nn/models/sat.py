"""SAT-lite: structure-attribute alignment (Chen et al., Table IV).

The strongest Table IV baseline is SAT ("Learning on Attribute-Missing
Graphs"), which learns a *shared latent space* for attributes and
structure so that an attribute-missing node's structure embedding can
be decoded into attributes.  This lite reproduction keeps that paired
design on the numpy substrate:

* attribute encoder — MLP over the observed attribute vector;
* structure encoder — GCN over a one-hot-free structural signal (the
  normalised adjacency applied to a learned per-node embedding);
* shared decoder — MLP from latent space to attribute logits;
* losses — attribute reconstruction from both latents on train nodes
  plus an alignment (MSE) term tying the two latents together.

Attribute-missing nodes are scored by decoding their structure latent.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import GCNConv, Linear, normalized_adjacency
from repro.nn.losses import bce_with_logits, mse
from repro.nn.models.base import CompletionModel, register
from repro.nn.optim import Adam


@register("sat")
class SATCompleter(CompletionModel):
    """Shared-latent structure/attribute model with alignment loss."""

    def __init__(
        self,
        seed: int = 0,
        hidden: int = 64,
        latent: int = 32,
        epochs: int = 150,
        lr: float = 0.01,
        align_weight: float = 1.0,
    ) -> None:
        super().__init__(seed)
        self.hidden = hidden
        self.latent = latent
        self.epochs = epochs
        self.lr = lr
        self.align_weight = align_weight
        self._scores: np.ndarray = None

    def fit(
        self,
        adjacency: np.ndarray,
        features: np.ndarray,
        train_mask: np.ndarray,
    ) -> "SATCompleter":
        self._check_inputs(adjacency, features, train_mask)
        num_nodes, num_values = features.shape
        a_norm = Tensor(normalized_adjacency(adjacency))

        # Attribute branch.
        attr_enc1 = Linear(num_values, self.hidden, self._rng)
        attr_enc2 = Linear(self.hidden, self.latent, self._rng)
        # Structure branch: learned node embeddings propagated by GCN.
        node_embedding = init.glorot(num_nodes, self.hidden, self._rng)
        struct_conv1 = GCNConv(self.hidden, self.hidden, self._rng)
        struct_conv2 = GCNConv(self.hidden, self.latent, self._rng)
        # Shared decoder.
        dec1 = Linear(self.latent, self.hidden, self._rng)
        dec2 = Linear(self.hidden, num_values, self._rng)

        modules = [attr_enc1, attr_enc2, struct_conv1, struct_conv2, dec1, dec2]
        parameters = [p for m in modules for p in m.parameters()]
        parameters.append(node_embedding)
        optimizer = Adam(parameters, lr=self.lr)

        x = Tensor(features)

        def attribute_latent() -> Tensor:
            return attr_enc2(attr_enc1(x).relu())

        def structure_latent() -> Tensor:
            hidden = struct_conv1(node_embedding, a_norm).relu()
            return struct_conv2(hidden, a_norm)

        def decode(z: Tensor) -> Tensor:
            return dec2(dec1(z).relu())

        train_rows = np.where(train_mask)[0]
        for _epoch in range(self.epochs):
            optimizer.zero_grad()
            za = attribute_latent()
            zs = structure_latent()
            loss = (
                bce_with_logits(decode(za), features, mask=train_mask)
                + bce_with_logits(decode(zs), features, mask=train_mask)
                + mse(za[train_rows], zs[train_rows].detach()) * self.align_weight
                + mse(zs[train_rows], za[train_rows].detach()) * self.align_weight
            )
            loss.backward()
            optimizer.step()

        with no_grad():
            scores = decode(structure_latent()).sigmoid().numpy()
        self._scores = scores
        self._fitted = True
        return self

    def predict(self) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        return self._scores
