"""GAT attribute completer (Velickovic et al., Table IV baseline).

Same protocol as the GCN completer but with masked additive attention
instead of symmetric normalisation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import GATConv, adjacency_with_self_loops
from repro.nn.losses import bce_with_logits
from repro.nn.models.base import CompletionModel, register
from repro.nn.optim import Adam


@register("gat")
class GATCompleter(CompletionModel):
    """Two-layer single-head GAT trained to reconstruct attributes."""

    def __init__(
        self,
        seed: int = 0,
        hidden: int = 64,
        epochs: int = 120,
        lr: float = 0.02,
        weight_decay: float = 5e-4,
    ) -> None:
        super().__init__(seed)
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.weight_decay = weight_decay
        self._scores: np.ndarray = None

    def fit(
        self,
        adjacency: np.ndarray,
        features: np.ndarray,
        train_mask: np.ndarray,
    ) -> "GATCompleter":
        self._check_inputs(adjacency, features, train_mask)
        num_values = features.shape[1]
        mask = adjacency_with_self_loops(adjacency)
        x = Tensor(features)
        conv1 = GATConv(num_values, self.hidden, self._rng)
        conv2 = GATConv(self.hidden, num_values, self._rng)
        parameters = list(conv1.parameters()) + list(conv2.parameters())
        optimizer = Adam(parameters, lr=self.lr, weight_decay=self.weight_decay)

        for _epoch in range(self.epochs):
            optimizer.zero_grad()
            hidden = conv1(x, mask).relu()
            logits = conv2(hidden, mask)
            loss = bce_with_logits(logits, features, mask=train_mask)
            loss.backward()
            optimizer.step()

        with no_grad():
            hidden = conv1(x, mask).relu()
            logits = conv2(hidden, mask)
            self._scores = logits.sigmoid().numpy()
        self._fitted = True
        return self

    def predict(self) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        return self._scores
