"""Shared interface and factory for the completion baselines."""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import ModelError


class CompletionModel:
    """Base class of all attribute-completion models.

    Subclasses implement :meth:`fit` (which may be a no-op for
    non-parametric baselines) and :meth:`predict`.
    """

    name = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._fitted = False

    def fit(
        self,
        adjacency: np.ndarray,
        features: np.ndarray,
        train_mask: np.ndarray,
    ) -> "CompletionModel":
        """Train on the observed (train-mask) attribute rows."""
        raise NotImplementedError

    def predict(self) -> np.ndarray:
        """Dense ``(num_nodes, num_values)`` attribute scores."""
        raise NotImplementedError

    def _check_inputs(
        self, adjacency: np.ndarray, features: np.ndarray, train_mask: np.ndarray
    ) -> None:
        n = adjacency.shape[0]
        if adjacency.shape != (n, n):
            raise ModelError("adjacency must be square")
        if features.shape[0] != n:
            raise ModelError("features row count must match adjacency")
        if train_mask.shape != (n,):
            raise ModelError("train_mask must be one flag per node")
        if not train_mask.any():
            raise ModelError("train_mask selects no nodes")


_REGISTRY: Dict[str, Callable[..., CompletionModel]] = {}


def register(name: str):
    """Class decorator adding a model to the factory registry."""

    def decorate(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def make_model(name: str, seed: int = 0, **kwargs) -> CompletionModel:
    """Instantiate a registered completion model by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelError(f"unknown model {name!r}; known: {known}") from None
    return factory(seed=seed, **kwargs)


def model_names():
    """All registered model names, in Table IV order when possible."""
    preferred = ["neighaggre", "vae", "gcn", "gat", "graphsage", "sat"]
    ordered = [name for name in preferred if name in _REGISTRY]
    ordered.extend(sorted(set(_REGISTRY) - set(ordered)))
    return ordered
