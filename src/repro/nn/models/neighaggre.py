"""NeighAggre: non-parametric neighbour aggregation (Simsek & Jensen).

The weakest Table IV baseline: a node's attribute scores are the mean
of the observed attribute indicator vectors of its neighbours.
Attribute-missing neighbours contribute nothing.
"""

from __future__ import annotations

import numpy as np

from repro.nn.models.base import CompletionModel, register


@register("neighaggre")
class NeighAggre(CompletionModel):
    """Mean of observed neighbour attribute vectors."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._scores: np.ndarray = None

    def fit(
        self,
        adjacency: np.ndarray,
        features: np.ndarray,
        train_mask: np.ndarray,
    ) -> "NeighAggre":
        self._check_inputs(adjacency, features, train_mask)
        observed = adjacency * train_mask[None, :].astype(float)
        counts = observed.sum(axis=1, keepdims=True)
        scale = np.divide(1.0, counts, out=np.zeros_like(counts), where=counts > 0)
        self._scores = (observed @ features) * scale
        self._fitted = True
        return self

    def predict(self) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        return self._scores
