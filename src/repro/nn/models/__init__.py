"""Node attribute completion baselines (Table IV).

All six models share the :class:`~repro.nn.models.base.CompletionModel`
interface: ``fit(adjacency, features, train_mask)`` then ``predict()``
returning a dense ``(num_nodes, num_values)`` score matrix.  ``features``
holds the observed binary attribute indicators with all-zero rows for
attribute-missing nodes — the standard protocol of the SAT paper the
evaluation follows.
"""

from repro.nn.models.base import CompletionModel, make_model
from repro.nn.models.gat import GATCompleter
from repro.nn.models.gcn import GCNCompleter
from repro.nn.models.neighaggre import NeighAggre
from repro.nn.models.sage import GraphSAGECompleter
from repro.nn.models.sat import SATCompleter
from repro.nn.models.vae import VAECompleter

__all__ = [
    "CompletionModel",
    "GATCompleter",
    "GCNCompleter",
    "GraphSAGECompleter",
    "NeighAggre",
    "SATCompleter",
    "VAECompleter",
    "make_model",
]
