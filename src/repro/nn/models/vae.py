"""VAE attribute completer (Kingma & Welling, Table IV baseline).

A variational autoencoder trained on the attribute vectors of the
observed (train) nodes.  An attribute-missing node has nothing to
encode, so — following the protocol the SAT paper uses for this
baseline — its input is the mean of its observed neighbours' attribute
vectors, which is then encoded and decoded to produce scores.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Linear
from repro.nn.losses import bce_with_logits, gaussian_kl
from repro.nn.models.base import CompletionModel, register
from repro.nn.optim import Adam


@register("vae")
class VAECompleter(CompletionModel):
    """Gaussian VAE over attribute vectors with neighbour-mean inputs."""

    def __init__(
        self,
        seed: int = 0,
        hidden: int = 64,
        latent: int = 32,
        epochs: int = 150,
        lr: float = 0.01,
        beta: float = 0.5,
    ) -> None:
        super().__init__(seed)
        self.hidden = hidden
        self.latent = latent
        self.epochs = epochs
        self.lr = lr
        self.beta = beta
        self._scores: np.ndarray = None

    def fit(
        self,
        adjacency: np.ndarray,
        features: np.ndarray,
        train_mask: np.ndarray,
    ) -> "VAECompleter":
        self._check_inputs(adjacency, features, train_mask)
        num_values = features.shape[1]
        enc_hidden = Linear(num_values, self.hidden, self._rng)
        enc_mu = Linear(self.hidden, self.latent, self._rng)
        enc_logvar = Linear(self.hidden, self.latent, self._rng)
        dec_hidden = Linear(self.latent, self.hidden, self._rng)
        dec_out = Linear(self.hidden, num_values, self._rng)
        modules = [enc_hidden, enc_mu, enc_logvar, dec_hidden, dec_out]
        parameters = [p for m in modules for p in m.parameters()]
        optimizer = Adam(parameters, lr=self.lr)

        train_x = Tensor(features[train_mask])

        def encode(x: Tensor):
            hidden = enc_hidden(x).relu()
            return enc_mu(hidden), enc_logvar(hidden).clip(-8.0, 8.0)

        def decode(z: Tensor) -> Tensor:
            return dec_out(dec_hidden(z).relu())

        for _epoch in range(self.epochs):
            optimizer.zero_grad()
            mu, logvar = encode(train_x)
            noise = Tensor(self._rng.standard_normal(mu.shape))
            z = mu + (logvar * 0.5).exp() * noise
            logits = decode(z)
            loss = bce_with_logits(logits, train_x) + gaussian_kl(mu, logvar) * (
                self.beta / max(features.shape[1], 1)
            )
            loss.backward()
            optimizer.step()

        # Inference: train nodes encode their own attributes; missing
        # nodes encode the mean of observed neighbour attributes.
        observed = adjacency * train_mask[None, :].astype(float)
        counts = observed.sum(axis=1, keepdims=True)
        scale = np.divide(1.0, counts, out=np.zeros_like(counts), where=counts > 0)
        inputs = features.copy()
        aggregated = (observed @ features) * scale
        inputs[~train_mask] = aggregated[~train_mask]
        with no_grad():
            mu, _logvar = encode(Tensor(inputs))
            self._scores = decode(mu).sigmoid().numpy()
        self._fitted = True
        return self

    def predict(self) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        return self._scores
