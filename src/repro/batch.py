"""Batch mining: run one config over many graphs.

:func:`fit_many` is the multi-graph entry point a service layer sits
on: it takes a sequence of graphs and a single
:class:`~repro.config.CSPMConfig`, runs the default pipeline on each,
and returns per-graph :class:`BatchRun` records with wall-clock
timing.  Execution is either in-process (``executor="serial"``) or
fanned out over worker processes (``executor="process"``, ``n_jobs``
workers) — results come back in input order either way, and are
identical to calling ``CSPM(config=config).fit(graph)`` per graph.

Example::

    from repro import CSPMConfig, fit_many

    batch = fit_many([g1, g2, g3], CSPMConfig(top_k=20), n_jobs=2,
                     executor="process")
    for run in batch:
        print(run.index, run.seconds, run.result.summary())
"""

from __future__ import annotations

import os
import traceback as traceback_module
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.config import CSPMConfig
from repro.core.result import CSPMResult
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph
from repro.obs import Observation, activate, clock, current
from repro.runtime.supervisor import RuntimePolicy, SiteReport, run_supervised

EXECUTORS = ("serial", "process")


@dataclass
class BatchRun:
    """One graph's outcome within a batch.

    Exactly one of ``result``/``error`` is set: a run that raised keeps
    its position in the batch and carries the exception spelled as
    ``"ExceptionType: message"`` plus the formatted traceback text
    (a string, because the original traceback object cannot cross a
    process boundary).  ``seconds`` is the run's wall-clock either way
    — failed runs are timed too, so batch dashboards never undercount.

    Under ``config.trace=True`` the run's closed span buffer and the
    executing pid ride along (plain tuples, FRK002-shaped) so
    :func:`fit_many` can fold every run into one parent timeline.
    """

    index: int
    result: Optional[CSPMResult]
    seconds: float
    error: Optional[str] = None
    traceback: Optional[str] = None
    spans: Optional[List[Tuple[str, float, float, int, str]]] = None
    pid: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record: index, timing, and the serialised outcome."""
        document: Dict[str, Any] = {
            "index": self.index,
            "seconds": self.seconds,
            "result": self.result.to_dict() if self.result is not None else None,
        }
        if self.error is not None:
            document["error"] = self.error
            document["traceback"] = self.traceback
        return document


@dataclass
class BatchResult:
    """All runs of one :func:`fit_many` call, in input order.

    ``report`` is the supervisor's failure telemetry for the
    ``"batch"`` site — ``None`` for serial (or single-graph)
    execution, where no pool exists to supervise.  ``obs`` is the
    batch-level observation session (spans from every run adopted
    into one timeline, per-run duration metrics) when the config's
    observability knobs — or an already-active session — enabled one.
    """

    runs: List[BatchRun]
    config: CSPMConfig
    report: Optional[SiteReport] = None
    obs: Optional[Observation] = None

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[BatchRun]:
        return iter(self.runs)

    def __getitem__(self, index: int) -> BatchRun:
        return self.runs[index]

    @property
    def results(self) -> List[Optional[CSPMResult]]:
        """The per-graph results, in input order (``None`` for errors)."""
        return [run.result for run in self.runs]

    @property
    def errors(self) -> List[BatchRun]:
        """The runs that failed, in input order (empty when all ok)."""
        return [run for run in self.runs if not run.ok]

    @property
    def total_seconds(self) -> float:
        """Summed per-run mining time (excludes scheduling overhead)."""
        return sum(run.seconds for run in self.runs)

    def summary(self) -> str:
        """One line per run: index, timing, pattern count, DL ratio."""
        lines = [
            f"fit_many: {len(self.runs)} graphs, "
            f"{self.total_seconds:.2f}s mining time"
        ]
        for run in self.runs:
            result = run.result
            if result is None:
                lines.append(
                    f"  [{run.index}] {run.seconds:.2f}s  FAILED: {run.error}"
                )
                continue
            lines.append(
                f"  [{run.index}] {run.seconds:.2f}s  "
                f"{len(result.astars)} a-stars  "
                f"ratio {result.compression_ratio:.3f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<BatchResult: {len(self.runs)} runs, "
            f"{self.total_seconds:.2f}s mining time>"
        )


def _fit_one(payload: Tuple[int, AttributedGraph, CSPMConfig]) -> BatchRun:
    """Worker: mine one graph and time it (top-level for pickling).

    A raising run is *isolated*, not fatal: the exception becomes a
    per-run error record and the other graphs in the batch are
    unaffected.  Catching here (``Exception``, never
    ``BaseException`` — a crash or interrupt must stay visible to the
    supervisor) also means deterministic failures never burn pool
    retries: only process-level events (crash, hang, pickle) reach the
    supervisor's failure handling.
    """
    from repro.pipeline import MiningPipeline

    index, graph, config = payload
    start = clock.perf_counter()
    try:
        context = MiningPipeline.default(config).run_context(graph)
        result = context.result
        if result is None:
            raise MiningError(
                "pipeline finished without producing a result"
            )
    except Exception as exc:
        return BatchRun(
            index=index,
            result=None,
            seconds=clock.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
        )
    # Ship spans only when the *config* turned tracing on: then
    # ``run_context`` recorded into a run-private session whose buffer
    # must travel home.  Tracing inherited from an already-active
    # parent session recorded straight into the parent's buffer — in
    # that case shipping would duplicate every span.
    obs = context.obs
    spans = (
        obs.tracer.export_spans()
        if config.trace and obs is not None and obs.tracer.enabled
        else None
    )
    return BatchRun(
        index=index,
        result=result,
        seconds=clock.perf_counter() - start,
        spans=spans,
        pid=os.getpid(),
    )


def fit_many(
    graphs: Sequence[AttributedGraph],
    config: Optional[CSPMConfig] = None,
    n_jobs: int = 1,
    executor: str = "serial",
) -> BatchResult:
    """Mine every graph in ``graphs`` under one config.

    Parameters
    ----------
    graphs:
        The input graphs; results preserve this order.
    config:
        The shared run configuration (default: ``CSPMConfig()``).
    n_jobs:
        Worker-process count for ``executor="process"`` (ignored for
        ``"serial"``).
    executor:
        ``"serial"`` (default) runs in-process; ``"process"`` fans out
        over a :class:`~concurrent.futures.ProcessPoolExecutor` —
        graphs and results cross process boundaries via pickle.

    Notes
    -----
    The config's construction knobs compose with the batch executor:
    each run builds its inverted database per
    ``config.construction``/``config.construction_workers`` (see
    :mod:`repro.core.construction`).  Prefer one level of parallelism:
    for many small graphs use ``executor="process"`` with the default
    serial construction (per-graph columnar builds are already fast);
    reserve ``construction="partitioned"`` for a *serial* batch over a
    few paper-scale graphs — nesting both would spawn worker pools
    inside worker processes.
    """
    if executor not in EXECUTORS:
        raise MiningError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool) or n_jobs < 1:
        raise MiningError(f"n_jobs must be a positive int, got {n_jobs!r}")
    config = config if config is not None else CSPMConfig()
    graphs = list(graphs)
    payloads = [(index, graph, config) for index, graph in enumerate(graphs)]

    # Batch-level observation: inherit the caller's active session, or
    # build one from the config knobs.  Each run records its own spans
    # (in-process or in a worker) and ships them back on the BatchRun;
    # they are adopted into this session's timeline below.
    obs = current()
    if not obs.enabled:
        obs = Observation.from_config(config)
    report: Optional[SiteReport] = None
    with activate(obs):
        if executor == "serial" or len(payloads) <= 1:
            runs = [_fit_one(payload) for payload in payloads]
        else:
            # The pool is supervised (site "batch", task index = run
            # index): a crashed or hung worker is retried on a fresh
            # pool and, past the retry budget, the run is mined
            # in-process — per-run *exceptions* never get that far,
            # ``_fit_one`` already converts them to error records
            # inside the worker.
            workers = min(n_jobs, len(payloads))
            runs, report = run_supervised(
                "batch",
                payloads,
                _fit_one,
                RuntimePolicy.from_config(config),
                max_workers=workers,
                expect_type=BatchRun,
            )
        _emit_batch_observations(obs, runs)
    return BatchResult(
        runs=runs,
        config=config,
        report=report,
        obs=obs if obs.enabled else None,
    )


def _emit_batch_observations(obs: Observation, runs: List[BatchRun]) -> None:
    """Fold per-run spans and durations into the batch session.

    Runs that executed in this very process share the parent clock, so
    their spans adopt without an offset; worker-process spans are
    end-aligned to the harvest instant.  Durations are emitted for
    *every* run — failed runs included — so the histogram matches what
    ``BatchResult.total_seconds`` sums.
    """
    if obs.tracer.enabled:
        harvest = obs.tracer.now()
        for run in runs:
            if not run.spans:
                continue
            align = None if run.pid == obs.tracer.pid else harvest
            obs.tracer.adopt(
                run.spans,
                run.pid or 0,
                f"batch[{run.index}]",
                align_end=align,
            )
    if obs.metrics.enabled:
        for run in runs:
            obs.metrics.histogram("batch.run_seconds").observe(run.seconds)
            obs.metrics.counter("batch.runs").inc(1)
            if not run.ok:
                obs.metrics.counter("batch.run_failures").inc(1)
    obs.progress.note(
        "batch",
        runs=len(runs),
        failures=sum(1 for run in runs if not run.ok),
    )
