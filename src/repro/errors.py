"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised when an attributed graph is malformed or misused.

    Examples: adding a self-loop, querying a vertex that does not
    exist, or building a graph from inconsistent inputs.
    """


class MiningError(ReproError):
    """Raised when a pattern mining procedure receives invalid input."""


class ConfigError(MiningError):
    """Raised when a :class:`repro.config.CSPMConfig` is invalid.

    Subclasses :class:`MiningError` so legacy callers that guarded
    ``CSPM(...)`` construction with ``except MiningError`` keep working.
    """


class WorkerFailure(MiningError):
    """Raised when a supervised parallel task exhausts its retry budget.

    Only reachable with ``on_worker_failure="raise"`` — the default
    policy degrades exhausted tasks to in-process execution instead.
    Carries the failing site, task index, and attempt count so callers
    and CLIs can report *where* the runtime gave up.
    """

    def __init__(
        self,
        message: str,
        site: str = "",
        task_index: int = -1,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.site = site
        self.task_index = task_index
        self.attempts = attempts


class EncodingError(ReproError):
    """Raised when a code table cannot encode the requested object."""


class DatasetError(ReproError):
    """Raised when a dataset generator receives invalid parameters."""


class ModelError(ReproError):
    """Raised by the neural substrate for invalid shapes or states."""
