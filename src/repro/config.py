"""Typed run configuration: the single source of truth for CSPM knobs.

Every consumer of the miner — the :class:`repro.CSPM` facade, the
composable :class:`repro.pipeline.MiningPipeline`, the batch runner
:func:`repro.batch.fit_many`, the CLI, the benchmarks — is driven by a
:class:`CSPMConfig`.  The config is

* **frozen**: a run's parameters cannot drift mid-pipeline;
* **validated at construction**: an invalid knob fails immediately with
  :class:`~repro.errors.ConfigError` (a :class:`~repro.errors.MiningError`),
  not deep inside the search;
* **round-trippable**: ``CSPMConfig.from_dict(cfg.to_dict()) == cfg``,
  so configs can travel through JSON job descriptions unchanged.

CSPM remains parameter-free in the paper's sense: the knobs select
*variants* (search strategy, coreset encoder, ablations) and output
post-filters, not data-dependent thresholds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.runtime.faults import FaultPlan

METHODS: Tuple[str, ...] = ("partial", "basic")
ENCODERS: Tuple[str, ...] = ("singleton", "slim", "krimp")
UPDATE_SCOPES: Tuple[str, ...] = ("lazy", "exhaustive", "related")
# Canonical backend-name registry; repro.core.masks re-exports it (this
# module imports only repro.errors, so that direction is cycle-free;
# repro.runtime.faults likewise imports only repro.errors).
MASK_BACKENDS: Tuple[str, ...] = ("auto", "bigint", "chunked", "numpy")
CONSTRUCTIONS: Tuple[str, ...] = ("serial", "partitioned")
SEARCHES: Tuple[str, ...] = ("serial", "sharded")
ON_WORKER_FAILURE: Tuple[str, ...] = ("degrade", "raise")


@dataclass(frozen=True)
class CSPMConfig:
    """The full parameterisation of one CSPM run.

    Attributes
    ----------
    method:
        ``"partial"`` (default, Algorithm 3-4) or ``"basic"``
        (Algorithm 1-2).
    coreset_encoder:
        ``"singleton"`` (default — CTc equals the standard code table,
        Section IV-C), ``"slim"`` or ``"krimp"`` for multi-value
        coresets mined on the vertex-attribute transactions
        (Section IV-F, step 1).
    include_model_cost:
        Whether candidate gains subtract the code-table cost of the new
        leafset (Section IV-E).  ``True`` by default; ablated in the
        benchmarks.
    max_iterations:
        Optional safety cap on the number of merges (``None`` = run to
        convergence, as the paper does).
    partial_update_scope:
        For ``method="partial"``: ``"lazy"`` (default; same merges as
        CSPM-Basic, with stored gains kept as sound upper bounds and
        revalidated only when a dirty pair reaches the queue head),
        ``"exhaustive"`` (eager neighbourhood refresh after every
        merge, also exactly CSPM-Basic's model) or ``"related"`` (the
        paper's Algorithm 4 rdict heuristic, cheapest but may miss
        late candidates).
    top_k:
        Post-filter: keep only the ``top_k`` best-ranked a-stars in the
        result (``None`` = keep all).  Applied by the RankAndFilter
        pipeline stage after the search terminates — it never changes
        which merges happen.
    min_leafset:
        Post-filter: drop a-stars whose leafset is smaller than this
        (default 1 = keep all).  Applied with ``top_k``.
    mask_backend:
        Position-mask representation for the inverted database
        (:mod:`repro.core.masks`): ``"auto"`` (default — bigint below
        the chunking threshold, chunked at paper scale), ``"bigint"``,
        ``"chunked"`` or ``"numpy"``.  Purely an execution-engine
        choice: every backend mines the bit-identical model, so the
        field is serialised only when non-default (schema-v1 result
        documents stay byte-stable).
    construction:
        How the inverted database is built: ``"serial"`` (default —
        the in-process columnar batch builder) or ``"partitioned"``
        (the coreset space is sharded over worker processes,
        :mod:`repro.core.construction`, and the sub-databases merged).
        Like ``mask_backend`` this is purely an execution-engine
        choice — the built database is identical either way — so it
        too is serialised only when non-default.
    construction_workers:
        Worker-process count for ``construction="partitioned"``
        (``None`` = one per CPU, capped by the partition count).
        Ignored under serial construction.
    search:
        How the greedy search runs: ``"serial"`` (default — one
        process) or ``"sharded"`` (connected components of the
        shares-a-coreset relation mined in parallel worker processes
        and replayed into the identical result,
        :mod:`repro.core.search_shard`).  Another pure
        execution-engine choice — the mined model, trace and result
        document are bit-identical — so it is serialised only when
        non-default.  Applies to ``method="partial"`` runs without an
        iteration cap; other runs fall back to the serial path.
    search_workers:
        Worker-process count for ``search="sharded"`` (``None`` = one
        per CPU, capped by the component count).  Ignored under serial
        search.
    worker_timeout:
        Per-task deadline, in seconds, for every supervised worker
        pool (:mod:`repro.runtime.supervisor`); ``None`` (default)
        uses the supervisor's generous built-in deadline — there is no
        way to wait forever.  Execution-engine knob: serialised only
        when non-default.
    max_task_retries:
        How many times a failed pool task (crash, hang, pickle error,
        corrupt result) is re-submitted before the supervisor gives
        up on the pool for that task (default 2).  Execution-engine
        knob: serialised only when non-default.
    on_worker_failure:
        What the supervisor does with a task that exhausts its
        retries: ``"degrade"`` (default) re-executes it in-process —
        bit-exact with the serial run — while ``"raise"`` raises
        :class:`~repro.errors.WorkerFailure`.  Execution-engine knob:
        serialised only when non-default.
    fault_plan:
        Deterministic fault-injection schedule for tests and chaos
        runs (:class:`repro.runtime.faults.FaultPlan`; also accepts
        its mapping/JSON/path spellings, and the ``REPRO_FAULT_PLAN``
        environment variable supplies one when this is ``None``).
        Injected failures only ever occur inside worker processes, so
        the mined output is still bit-exact.  Serialised only when
        set.
    trace:
        Record nestable spans for every pipeline stage, construction
        phase, worker task and supervisor event (:mod:`repro.obs`),
        mergeable into one Chrome-trace timeline (``mine --trace``).
        Recording never perturbs the mined output — merge sequences
        and DL floats are ``==`` an untraced run.  Serialised only
        when enabled.
    metrics:
        Record named counters/gauges/histograms (the ``RunTrace``
        perf counters, mask memory, supervisor retry/degrade/timeout
        telemetry, per-run batch durations) into a
        :class:`repro.obs.MetricsRegistry` (``mine --metrics``).
        Serialised only when enabled.
    progress:
        Emit throttled heartbeat lines for long phases on stderr
        (``mine --progress``).  Serialised only when enabled.
    """

    method: str = "partial"
    coreset_encoder: str = "singleton"
    include_model_cost: bool = True
    max_iterations: Optional[int] = None
    partial_update_scope: str = "lazy"
    top_k: Optional[int] = None
    min_leafset: int = 1
    mask_backend: str = "auto"
    construction: str = "serial"
    construction_workers: Optional[int] = None
    search: str = "serial"
    search_workers: Optional[int] = None
    worker_timeout: Optional[float] = None
    max_task_retries: int = 2
    on_worker_failure: str = "degrade"
    fault_plan: Optional[FaultPlan] = None
    trace: bool = False
    metrics: bool = False
    progress: bool = False

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ConfigError(
                f"method must be one of {METHODS}, got {self.method!r}"
            )
        if self.coreset_encoder not in ENCODERS:
            raise ConfigError(
                f"coreset_encoder must be one of {ENCODERS}, "
                f"got {self.coreset_encoder!r}"
            )
        if self.partial_update_scope not in UPDATE_SCOPES:
            raise ConfigError(
                f"partial_update_scope must be one of {UPDATE_SCOPES}, "
                f"got {self.partial_update_scope!r}"
            )
        if not isinstance(self.include_model_cost, bool):
            raise ConfigError(
                f"include_model_cost must be a bool, "
                f"got {self.include_model_cost!r}"
            )
        if self.max_iterations is not None and not (
            isinstance(self.max_iterations, int)
            and not isinstance(self.max_iterations, bool)
            and self.max_iterations >= 0
        ):
            raise ConfigError(
                f"max_iterations must be None or a non-negative int, "
                f"got {self.max_iterations!r}"
            )
        if self.top_k is not None and not (
            isinstance(self.top_k, int)
            and not isinstance(self.top_k, bool)
            and self.top_k >= 1
        ):
            raise ConfigError(
                f"top_k must be None or a positive int, got {self.top_k!r}"
            )
        if not (
            isinstance(self.min_leafset, int)
            and not isinstance(self.min_leafset, bool)
            and self.min_leafset >= 1
        ):
            raise ConfigError(
                f"min_leafset must be a positive int, got {self.min_leafset!r}"
            )
        if self.mask_backend not in MASK_BACKENDS:
            raise ConfigError(
                f"mask_backend must be one of {MASK_BACKENDS}, "
                f"got {self.mask_backend!r}"
            )
        if self.construction not in CONSTRUCTIONS:
            raise ConfigError(
                f"construction must be one of {CONSTRUCTIONS}, "
                f"got {self.construction!r}"
            )
        if self.construction_workers is not None and not (
            isinstance(self.construction_workers, int)
            and not isinstance(self.construction_workers, bool)
            and self.construction_workers >= 1
        ):
            raise ConfigError(
                f"construction_workers must be None or a positive int, "
                f"got {self.construction_workers!r}"
            )
        if self.search not in SEARCHES:
            raise ConfigError(
                f"search must be one of {SEARCHES}, got {self.search!r}"
            )
        if self.search_workers is not None and not (
            isinstance(self.search_workers, int)
            and not isinstance(self.search_workers, bool)
            and self.search_workers >= 1
        ):
            raise ConfigError(
                f"search_workers must be None or a positive int, "
                f"got {self.search_workers!r}"
            )
        if self.worker_timeout is not None and not (
            isinstance(self.worker_timeout, (int, float))
            and not isinstance(self.worker_timeout, bool)
            and self.worker_timeout > 0
        ):
            raise ConfigError(
                f"worker_timeout must be None or a positive number, "
                f"got {self.worker_timeout!r}"
            )
        if not (
            isinstance(self.max_task_retries, int)
            and not isinstance(self.max_task_retries, bool)
            and self.max_task_retries >= 0
        ):
            raise ConfigError(
                f"max_task_retries must be a non-negative int, "
                f"got {self.max_task_retries!r}"
            )
        if self.on_worker_failure not in ON_WORKER_FAILURE:
            raise ConfigError(
                f"on_worker_failure must be one of {ON_WORKER_FAILURE}, "
                f"got {self.on_worker_failure!r}"
            )
        if not isinstance(self.trace, bool):
            raise ConfigError(f"trace must be a bool, got {self.trace!r}")
        if not isinstance(self.metrics, bool):
            raise ConfigError(f"metrics must be a bool, got {self.metrics!r}")
        if not isinstance(self.progress, bool):
            raise ConfigError(
                f"progress must be a bool, got {self.progress!r}"
            )
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            # Accept the mapping/JSON/path spellings at construction
            # so configs rebuilt from job documents stay one-step.
            object.__setattr__(
                self, "fault_plan", FaultPlan.coerce(self.fault_plan)
            )

    # ------------------------------------------------------------------
    # Derivation and serialisation
    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "CSPMConfig":
        """A new config with ``changes`` applied (re-validated)."""
        try:
            return dataclasses.replace(self, **changes)
        except TypeError as exc:
            raise ConfigError(str(exc)) from None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping of the config.

        The execution-engine knobs (``mask_backend``,
        ``construction``/``construction_workers``,
        ``search``/``search_workers`` and the supervised-runtime knobs
        ``worker_timeout``/``max_task_retries``/``on_worker_failure``/
        ``fault_plan``, and the observability knobs
        ``trace``/``metrics``/``progress``) are included only when
        non-default: they never
        change the mined output, and omitting the defaults keeps
        existing schema-v1 result documents (including the CLI golden
        file) byte-identical.  :meth:`from_dict` round-trips either
        way (a serialised ``fault_plan`` comes back as its mapping and
        is re-coerced to a :class:`FaultPlan` at construction).
        """
        document = dataclasses.asdict(self)
        if document["mask_backend"] == "auto":
            del document["mask_backend"]
        if document["construction"] == "serial":
            del document["construction"]
        if document["construction_workers"] is None:
            del document["construction_workers"]
        if document["search"] == "serial":
            del document["search"]
        if document["search_workers"] is None:
            del document["search_workers"]
        if document["worker_timeout"] is None:
            del document["worker_timeout"]
        if document["max_task_retries"] == 2:
            del document["max_task_retries"]
        if document["on_worker_failure"] == "degrade":
            del document["on_worker_failure"]
        if document["trace"] is False:
            del document["trace"]
        if document["metrics"] is False:
            del document["metrics"]
        if document["progress"] is False:
            del document["progress"]
        if document["fault_plan"] is None:
            del document["fault_plan"]
        else:
            # asdict recursed into the plan dataclass; replace with the
            # canonical FaultPlan.to_dict shape (provenance seed omitted
            # when unset) so every serialised plan spells the same way.
            document["fault_plan"] = self.fault_plan.to_dict()
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "CSPMConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected so that typos in job descriptions
        fail loudly instead of silently running with defaults.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ConfigError(f"unknown config fields: {unknown}")
        return cls(**dict(document))

    def describe(self) -> str:
        """The non-default fields as ``key=value`` text (or ``defaults``)."""
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                parts.append(f"{field.name}={value!r}")
        return ", ".join(parts) if parts else "defaults"
