"""The attributed graph data structure.

An attributed graph ``G = (A, lambda, V, E)`` (paper, Section III) is an
undirected graph without self-loops whose vertices are mapped to sets of
nominal attribute values by the function ``lambda``.  This module keeps
the representation deliberately simple and explicit: adjacency sets plus
a vertex -> frozenset-of-values mapping, which is exactly the "adjacency
list + mapping function" decomposition that CSPM consumes.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.errors import GraphError

Vertex = Hashable
Value = Hashable


class AttributedGraph:
    """An undirected, self-loop-free graph with nominal vertex attributes.

    Vertices and attribute values may be any hashable objects (vertex
    ids are typically ints, values typically short strings such as
    ``"ICDM"`` or ``"rap"``).

    The class exposes both mutation (``add_vertex`` / ``add_edge`` /
    ``set_attributes``) and bulk construction (:meth:`from_edges`,
    :meth:`from_adjacency`, :meth:`from_networkx`).
    """

    def __init__(self) -> None:
        self._adjacency: Dict[Vertex, Set[Vertex]] = {}
        self._attributes: Dict[Vertex, FrozenSet[Value]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        attributes: Optional[Mapping[Vertex, Iterable[Value]]] = None,
    ) -> "AttributedGraph":
        """Build a graph from an edge list and a vertex->values mapping.

        Vertices mentioned only in ``attributes`` are added as isolated
        vertices; vertices mentioned only in ``edges`` get an empty
        attribute set.
        """
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
        if attributes is not None:
            for vertex, values in attributes.items():
                if vertex not in graph._adjacency:
                    graph.add_vertex(vertex)
                graph.set_attributes(vertex, values)
        return graph

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Mapping[Vertex, Iterable[Vertex]],
        attributes: Optional[Mapping[Vertex, Iterable[Value]]] = None,
    ) -> "AttributedGraph":
        """Build a graph from a vertex adjacency list (paper, Sec. III)."""
        graph = cls()
        for vertex, neighbours in adjacency.items():
            graph.add_vertex(vertex)
            for other in neighbours:
                graph.add_edge(vertex, other)
        if attributes is not None:
            for vertex, values in attributes.items():
                if vertex not in graph._adjacency:
                    graph.add_vertex(vertex)
                graph.set_attributes(vertex, values)
        return graph

    @classmethod
    def from_networkx(cls, nx_graph, attribute_key: str = "values") -> "AttributedGraph":
        """Convert a ``networkx`` graph whose nodes carry value iterables.

        Parameters
        ----------
        nx_graph:
            An undirected ``networkx.Graph``.
        attribute_key:
            Node-data key holding the iterable of attribute values.
        """
        graph = cls()
        for node, data in nx_graph.nodes(data=True):
            graph.add_vertex(node)
            graph.set_attributes(node, data.get(attribute_key, ()))
        for u, v in nx_graph.edges():
            if u != v:
                graph.add_edge(u, v)
        return graph

    def to_networkx(self, attribute_key: str = "values"):
        """Export to ``networkx.Graph`` with values stored per node."""
        import networkx as nx

        nx_graph = nx.Graph()
        for vertex in self._adjacency:
            nx_graph.add_node(vertex, **{attribute_key: set(self._attributes[vertex])})
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` with no neighbours and no attributes (idempotent)."""
        if vertex not in self._adjacency:
            self._adjacency[vertex] = set()
            self._attributes[vertex] = frozenset()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises
        ------
        GraphError
            If ``u == v`` (the paper's input graphs have no self-loops).
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adjacency[u]:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._num_edges += 1

    def set_attributes(self, vertex: Vertex, values: Iterable[Value]) -> None:
        """Replace the attribute value set of ``vertex``."""
        if vertex not in self._adjacency:
            raise GraphError(f"unknown vertex {vertex!r}")
        self._attributes[vertex] = frozenset(values)

    def add_attribute(self, vertex: Vertex, value: Value) -> None:
        """Add a single attribute value to ``vertex``."""
        if vertex not in self._adjacency:
            raise GraphError(f"unknown vertex {vertex!r}")
        self._attributes[vertex] = self._attributes[vertex] | {value}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adjacency)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate over each undirected edge exactly once."""
        seen: Set[Vertex] = set()
        for u, neighbours in self._adjacency.items():
            for v in neighbours:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def neighbors(self, vertex: Vertex) -> FrozenSet[Vertex]:
        """The set of vertices adjacent to ``vertex``."""
        try:
            return frozenset(self._adjacency[vertex])
        except KeyError:
            raise GraphError(f"unknown vertex {vertex!r}") from None

    def degree(self, vertex: Vertex) -> int:
        try:
            return len(self._adjacency[vertex])
        except KeyError:
            raise GraphError(f"unknown vertex {vertex!r}") from None

    def attributes_of(self, vertex: Vertex) -> FrozenSet[Value]:
        """The attribute value set ``lambda(vertex)``."""
        try:
            return self._attributes[vertex]
        except KeyError:
            raise GraphError(f"unknown vertex {vertex!r}") from None

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def neighbor_values(self, vertex: Vertex) -> FrozenSet[Value]:
        """Union of attribute values over the neighbours of ``vertex``.

        This is exactly the leaf-value universe of the star rooted at
        ``vertex``.
        """
        values: Set[Value] = set()
        for other in self._adjacency[vertex]:
            values |= self._attributes[other]
        return frozenset(values)

    # ------------------------------------------------------------------
    # Aggregates used by the miner
    # ------------------------------------------------------------------

    def attribute_values(self) -> FrozenSet[Value]:
        """The universe ``A`` of attribute values present in the graph."""
        values: Set[Value] = set()
        for vertex_values in self._attributes.values():
            values |= vertex_values
        return frozenset(values)

    def value_positions(self) -> Dict[Value, FrozenSet[Vertex]]:
        """The *mapping table* (Fig. 2a): value -> vertices carrying it."""
        positions: Dict[Value, Set[Vertex]] = {}
        for vertex, values in self._attributes.items():
            for value in values:
                positions.setdefault(value, set()).add(vertex)
        return {value: frozenset(verts) for value, verts in positions.items()}

    def value_frequencies(self) -> Counter:
        """Occurrence count of each value over vertices (Eq. 5 input)."""
        counts: Counter = Counter()
        for values in self._attributes.values():
            counts.update(values)
        return counts

    def total_value_occurrences(self) -> int:
        """Total number of (vertex, value) pairs in the mapping function."""
        return sum(len(values) for values in self._attributes.values())

    def is_connected(self) -> bool:
        """Whether the graph is connected (ignoring an empty graph)."""
        if not self._adjacency:
            return True
        start = next(iter(self._adjacency))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for other in self._adjacency[current]:
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
        return len(seen) == len(self._adjacency)

    def subgraph(self, vertices: Iterable[Vertex]) -> "AttributedGraph":
        """The induced subgraph on ``vertices`` (attributes preserved)."""
        keep = set(vertices)
        unknown = keep - set(self._adjacency)
        if unknown:
            raise GraphError(f"unknown vertices {sorted(map(repr, unknown))}")
        graph = AttributedGraph()
        for vertex in keep:
            graph.add_vertex(vertex)
            graph.set_attributes(vertex, self._attributes[vertex])
        for u in keep:
            for v in self._adjacency[u] & keep:
                if u != v:
                    graph.add_edge(u, v)
        return graph

    def copy(self) -> "AttributedGraph":
        """A deep-enough copy (attribute sets are immutable and shared)."""
        graph = AttributedGraph()
        graph._adjacency = {v: set(ns) for v, ns in self._adjacency.items()}
        graph._attributes = dict(self._attributes)
        graph._num_edges = self._num_edges
        return graph

    def __repr__(self) -> str:
        return (
            f"AttributedGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|A|={len(self.attribute_values())})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributedGraph):
            return NotImplemented
        return (
            self._adjacency == other._adjacency
            and self._attributes == other._attributes
        )
