"""Dataset statistics in the style of the paper's Table II."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graphs.attributed_graph import AttributedGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of an attributed graph.

    ``num_coresets`` is |Sc^M| in Table II: the number of distinct
    single-value coresets that occur in the inverted database, i.e. the
    number of distinct attribute values carried by at least one vertex
    that has at least one attributed neighbour.
    """

    num_vertices: int
    num_edges: int
    num_values: int
    num_coresets: int
    avg_values_per_vertex: float
    avg_degree: float

    def as_row(self, name: str = "") -> str:
        """One formatted row, matching the Table II column order."""
        prefix = f"{name:<14}" if name else ""
        return (
            f"{prefix}#Nodes={self.num_vertices:>9,}  "
            f"#Edges={self.num_edges:>10,}  "
            f"|Sc^M|={self.num_coresets:>5}  "
            f"|A|={self.num_values:>5}  "
            f"values/vertex={self.avg_values_per_vertex:.2f}  "
            f"degree={self.avg_degree:.2f}"
        )


def graph_stats(graph: AttributedGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    coresets = set()
    for vertex in graph.vertices():
        if not graph.attributes_of(vertex):
            continue
        if any(graph.attributes_of(n) for n in graph.neighbors(vertex)):
            coresets |= graph.attributes_of(vertex)
    n = graph.num_vertices
    return GraphStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        num_values=len(graph.attribute_values()),
        num_coresets=len(coresets),
        avg_values_per_vertex=(
            graph.total_value_occurrences() / n if n else 0.0
        ),
        avg_degree=(2.0 * graph.num_edges / n if n else 0.0),
    )


def stats_table(named_graphs: List[tuple]) -> str:
    """Format ``[(name, graph), ...]`` as a Table II style block."""
    lines = ["Dataset statistics (Table II analogue)", "-" * 86]
    for name, graph in named_graphs:
        lines.append(graph_stats(graph).as_row(name))
    return "\n".join(lines)
