"""Random and planted attributed-graph generators.

Two generators are provided:

* :func:`random_attributed_graph` — a noise model (random topology with
  independently-drawn attribute values) used as a null reference in
  tests and ablations.
* :func:`planted_astar_graph` — plants ground-truth a-star correlations
  (core value on a vertex => leaf values on its neighbours) on top of a
  random backbone, so that tests and benchmarks can check whether CSPM
  recovers known patterns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import DatasetError
from repro.graphs.attributed_graph import AttributedGraph


def _random_connected_edges(
    num_vertices: int, num_edges: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """A connected edge set: a random spanning tree plus random extras."""
    if num_vertices < 1:
        raise DatasetError("num_vertices must be >= 1")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise DatasetError(
            f"num_edges={num_edges} exceeds the maximum {max_edges} "
            f"for {num_vertices} vertices"
        )
    if num_vertices > 1 and num_edges < num_vertices - 1:
        raise DatasetError(
            "a connected graph needs at least num_vertices - 1 edges"
        )
    edges: Set[Tuple[int, int]] = set()
    order = list(range(num_vertices))
    rng.shuffle(order)
    for i in range(1, num_vertices):
        u = order[i]
        v = order[rng.randrange(i)]
        edges.add((min(u, v), max(u, v)))
    while len(edges) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return sorted(edges)


def random_attributed_graph(
    num_vertices: int,
    num_edges: int,
    values: Sequence[str],
    values_per_vertex: int = 2,
    seed: int = 0,
) -> AttributedGraph:
    """A connected random graph with independently drawn attribute values.

    Each vertex receives ``values_per_vertex`` distinct values drawn
    uniformly from ``values`` (fewer if the universe is smaller).
    """
    if not values:
        raise DatasetError("values must be non-empty")
    rng = random.Random(seed)
    edges = _random_connected_edges(num_vertices, num_edges, rng)
    take = min(values_per_vertex, len(values))
    attributes = {
        vertex: rng.sample(list(values), take) for vertex in range(num_vertices)
    }
    return AttributedGraph.from_edges(edges, attributes)


@dataclass(frozen=True)
class PlantedAStar:
    """A ground-truth planted correlation.

    When ``core_value`` is assigned to a vertex, each value of
    ``leaf_values`` is planted on at least one neighbour with
    probability ``strength``.
    """

    core_value: str
    leaf_values: Tuple[str, ...]
    strength: float = 0.9


@dataclass
class PlantedGraphTruth:
    """What :func:`planted_astar_graph` actually planted (for checking)."""

    patterns: List[PlantedAStar] = field(default_factory=list)
    core_positions: Dict[str, Set[int]] = field(default_factory=dict)


def planted_astar_graph(
    num_vertices: int,
    num_edges: int,
    patterns: Sequence[PlantedAStar],
    noise_values: Sequence[str] = (),
    noise_rate: float = 0.1,
    carrier_fraction: float = 0.3,
    seed: int = 0,
) -> Tuple[AttributedGraph, PlantedGraphTruth]:
    """A random connected graph with planted a-star correlations.

    Parameters
    ----------
    patterns:
        The ground-truth a-stars to plant.  A ``carrier_fraction`` of
        vertices is selected for each pattern; carriers receive the core
        value, and each leaf value is pushed onto a random neighbour
        with probability ``pattern.strength``.
    noise_values / noise_rate:
        Each vertex additionally receives each noise value independently
        with probability ``noise_rate``.

    Returns the graph together with a :class:`PlantedGraphTruth` that
    records where cores were planted, so tests can verify recovery.
    """
    if not 0.0 <= noise_rate <= 1.0:
        raise DatasetError("noise_rate must be within [0, 1]")
    if not 0.0 < carrier_fraction <= 1.0:
        raise DatasetError("carrier_fraction must be within (0, 1]")
    rng = random.Random(seed)
    edges = _random_connected_edges(num_vertices, num_edges, rng)
    adjacency: Dict[int, Set[int]] = {v: set() for v in range(num_vertices)}
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)

    attributes: Dict[int, Set[str]] = {v: set() for v in range(num_vertices)}
    truth = PlantedGraphTruth(patterns=list(patterns))
    carriers_count = max(1, int(carrier_fraction * num_vertices))
    for pattern in patterns:
        carriers = rng.sample(range(num_vertices), carriers_count)
        positions = truth.core_positions.setdefault(pattern.core_value, set())
        for vertex in carriers:
            if not adjacency[vertex]:
                continue
            attributes[vertex].add(pattern.core_value)
            positions.add(vertex)
            neighbours = sorted(adjacency[vertex])
            for leaf_value in pattern.leaf_values:
                if rng.random() < pattern.strength:
                    target = rng.choice(neighbours)
                    attributes[target].add(leaf_value)

    for vertex in range(num_vertices):
        for value in noise_values:
            if rng.random() < noise_rate:
                attributes[vertex].add(value)
        if not attributes[vertex]:
            # Every vertex carries at least one value so the mapping
            # function is total, as in the paper's datasets.
            pool = list(noise_values) or [p.core_value for p in patterns]
            attributes[vertex].add(rng.choice(pool))

    graph = AttributedGraph.from_edges(edges, attributes)
    return graph, truth
