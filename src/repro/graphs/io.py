"""Serialisation of attributed graphs.

Two formats are supported:

* JSON — explicit ``{"edges": [...], "attributes": {...}}`` documents,
  round-trip safe for string/int vertex ids and string values.
* An adjacency text format — one ``vertex | neighbours | values`` line
  per vertex, convenient for eyeballing small graphs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graphs.attributed_graph import AttributedGraph

PathLike = Union[str, Path]


def to_json_dict(graph: AttributedGraph) -> dict:
    """A JSON-serialisable dict representation of ``graph``."""
    return {
        "vertices": sorted(graph.vertices(), key=repr),
        "edges": sorted(
            ([min(u, v, key=repr), max(u, v, key=repr)] for u, v in graph.edges()),
            key=repr,
        ),
        "attributes": {
            str(vertex): sorted(graph.attributes_of(vertex), key=repr)
            for vertex in graph.vertices()
        },
    }


def from_json_dict(document: dict, int_vertices: bool = True) -> AttributedGraph:
    """Rebuild a graph from :func:`to_json_dict` output.

    JSON object keys are strings; when ``int_vertices`` is true, keys of
    the ``attributes`` mapping are parsed back to ints when possible.
    """

    def parse(key: str):
        if int_vertices:
            try:
                return int(key)
            except (TypeError, ValueError):
                return key
        return key

    graph = AttributedGraph()
    for vertex in document.get("vertices", []):
        graph.add_vertex(vertex)
    for u, v in document.get("edges", []):
        graph.add_edge(u, v)
    for key, values in document.get("attributes", {}).items():
        vertex = parse(key)
        if vertex not in graph:
            graph.add_vertex(vertex)
        graph.set_attributes(vertex, values)
    return graph


def save_json(graph: AttributedGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` as a JSON document."""
    Path(path).write_text(json.dumps(to_json_dict(graph), indent=2))


def load_json(path: PathLike, int_vertices: bool = True) -> AttributedGraph:
    """Load a graph previously written by :func:`save_json`."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise GraphError(f"cannot load graph from {path}: {exc}") from exc
    return from_json_dict(document, int_vertices=int_vertices)


def to_adjacency_text(graph: AttributedGraph) -> str:
    """Human-readable ``vertex | neighbours | values`` listing."""
    lines = []
    for vertex in sorted(graph.vertices(), key=repr):
        neighbours = ",".join(str(n) for n in sorted(graph.neighbors(vertex), key=repr))
        values = ",".join(str(v) for v in sorted(graph.attributes_of(vertex), key=repr))
        lines.append(f"{vertex} | {neighbours} | {values}")
    return "\n".join(lines)
