"""Convenience builders for small reference graphs.

Most importantly, :func:`paper_running_example` reconstructs the
five-vertex running example of the paper (Fig. 1a), which doubles as
golden-test input: the paper works its inverted database (Fig. 2), code
tables (Fig. 3) and first merge (Fig. 4) on this exact graph.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import GraphError
from repro.graphs.attributed_graph import AttributedGraph


def paper_running_example() -> AttributedGraph:
    """The attributed graph of Fig. 1(a).

    Vertices ``v1..v5`` are encoded as ints 1..5::

        v1={a}   v2={a,c}   v3={c}   v4={b}   v5={a,b}
        edges: v1-v2, v1-v3, v1-v4, v3-v5, v4-v5
    """
    return AttributedGraph.from_edges(
        edges=[(1, 2), (1, 3), (1, 4), (3, 5), (4, 5)],
        attributes={
            1: {"a"},
            2: {"a", "c"},
            3: {"c"},
            4: {"b"},
            5: {"a", "b"},
        },
    )


def star_graph(
    core_values: Iterable[str],
    leaf_value_sets: Sequence[Iterable[str]],
) -> AttributedGraph:
    """A single star: core vertex 0 connected to one vertex per leafset.

    Useful for constructing graphs whose a-stars are known exactly.
    """
    leaf_value_sets = list(leaf_value_sets)
    if not leaf_value_sets:
        raise GraphError("a star needs at least one leaf")
    attributes = {0: set(core_values)}
    edges = []
    for index, values in enumerate(leaf_value_sets, start=1):
        edges.append((0, index))
        attributes[index] = set(values)
    return AttributedGraph.from_edges(edges, attributes)


def path_graph(attribute_sequence: Sequence[Iterable[str]]) -> AttributedGraph:
    """A path ``0-1-...-(n-1)`` with the given per-vertex value sets."""
    n = len(attribute_sequence)
    if n == 0:
        raise GraphError("path needs at least one vertex")
    edges = [(i, i + 1) for i in range(n - 1)]
    attributes = {i: set(values) for i, values in enumerate(attribute_sequence)}
    graph = AttributedGraph.from_edges(edges, attributes)
    if n == 1:
        graph.add_vertex(0)
        graph.set_attributes(0, set(attribute_sequence[0]))
    return graph
