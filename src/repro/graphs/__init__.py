"""Attributed-graph substrate.

The paper's input is a connected, self-loop-free undirected graph whose
vertices carry sets of nominal attribute values.  This package provides
the :class:`~repro.graphs.attributed_graph.AttributedGraph` container
together with builders, (de)serialisation, statistics (Table II) and
synthetic generators used throughout the experiments.
"""

from repro.graphs.attributed_graph import AttributedGraph
from repro.graphs.generators import (
    planted_astar_graph,
    random_attributed_graph,
)
from repro.graphs.stats import GraphStats, graph_stats

__all__ = [
    "AttributedGraph",
    "GraphStats",
    "graph_stats",
    "planted_astar_graph",
    "random_attributed_graph",
]
