"""The composable mining pipeline behind ``CSPM.fit``.

The paper's Algorithm 1/3 is already staged internally — (1) encode
coresets, (2) build the inverted database, (3) greedy MDL search,
(4) rank the surviving a-stars.  :class:`MiningPipeline` makes those
stages explicit and first-class:

* every stage is an object with a ``name`` and a ``run(context)``
  method that reads/writes a shared :class:`PipelineContext`;
* ``MiningPipeline.default(config)`` wires the paper's four stages;
* callers can insert custom stages (graph preprocessing,
  instrumentation taps, result post-processors) with
  :meth:`MiningPipeline.with_stage` — plain callables are accepted and
  wrapped automatically;
* the facade ``CSPM.fit`` is a thin wrapper over the default pipeline,
  so the facade, the CLI, the batch runner and any future service layer
  all execute the exact same code path.

Example::

    from repro import CSPMConfig, MiningPipeline

    def tap(context):
        print("rows:", context.inverted_db.num_rows)

    pipeline = MiningPipeline.default(CSPMConfig(top_k=10))
    pipeline = pipeline.with_stage(tap, before="Search")
    result = pipeline.run(graph)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.config import CSPMConfig
from repro.core.astar import AStar
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_basic import run_basic
from repro.core.cspm_partial import run_partial
from repro.core.instrumentation import RunTrace
from repro.core.inverted_db import InvertedDatabase
from repro.core.masks import resolve_backend
from repro.core.mdl import (
    DescriptionLength,
    description_length,
    initial_description_length,
    row_code_length,
)
from repro.core.result import CSPMResult
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph
from repro.obs import Observation, activate, clock, current, emit_run_trace
from repro.runtime.supervisor import RuntimePolicy

Value = Hashable
Vertex = Hashable


@dataclass
class PipelineContext:
    """Shared state threaded through the pipeline stages.

    Each default stage fills in the fields it is responsible for;
    custom stages may read anything already populated and stash their
    own data in ``extras``.
    """

    graph: AttributedGraph
    config: CSPMConfig
    standard_table: Optional[StandardCodeTable] = None
    coreset_positions: Optional[Dict[FrozenSet[Value], Set[Vertex]]] = None
    core_table: Optional[CoreCodeTable] = None
    inverted_db: Optional[InvertedDatabase] = None
    initial_dl: Optional[DescriptionLength] = None
    trace: Optional[RunTrace] = None
    final_dl: Optional[DescriptionLength] = None
    astars: Optional[List[AStar]] = None
    result: Optional[CSPMResult] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    #: The observation session the stages ran under — the config-
    #: selected :class:`repro.obs.Observation` (or the session already
    #: active at the call site); callers export its trace/metrics
    #: after the run.
    obs: Optional[Observation] = None

    def recompute_initial_dl(self) -> DescriptionLength:
        """Refresh ``initial_dl`` from the current database state.

        The Search stage starts its trace DL accounting from
        ``initial_dl``; a custom stage inserted between
        ``BuildInvertedDB`` and ``Search`` that mutates the inverted
        database (pruning rows, pre-merging) must call this afterwards
        so the accounting reflects the mutated state.
        """
        self.initial_dl = description_length(
            self.inverted_db, self.standard_table, self.core_table
        )
        return self.initial_dl


class PipelineStage:
    """Base class for pipeline stages.

    A stage mutates the :class:`PipelineContext` in place; its ``name``
    (the class name by default) addresses it in
    :meth:`MiningPipeline.with_stage`.
    """

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, context: PipelineContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FunctionStage(PipelineStage):
    """Adapter wrapping a plain ``callable(context)`` as a stage."""

    def __init__(self, function: Callable[[PipelineContext], Any], name: Optional[str] = None) -> None:
        self._function = function
        self._name = name or getattr(function, "__name__", "FunctionStage")

    @property
    def name(self) -> str:
        return self._name

    def run(self, context: PipelineContext) -> None:
        self._function(context)

    def __repr__(self) -> str:
        return f"FunctionStage({self._name!r})"


class EncodeCoresets(PipelineStage):
    """Step 1 of Algorithm 1: coreset positions + their code table.

    Singleton coresets make CTc coincide with the standard code table
    (Section IV-C); the ``slim``/``krimp`` encoders mine multi-value
    coresets over the vertex-attribute transactions (Section IV-F).
    """

    def run(self, context: PipelineContext) -> None:
        graph = context.graph
        obs = current()
        with obs.span(
            "mine.encode", encoder=context.config.coreset_encoder
        ):
            context.standard_table = StandardCodeTable.from_graph(graph)
            if context.config.coreset_encoder == "singleton":
                context.coreset_positions = {
                    frozenset([value]): vertices
                    for value, vertices in graph.value_positions().items()
                }
                context.core_table = CoreCodeTable.singletons_from_graph(graph)
            else:
                # Multi-value coresets: mine itemsets over vertex
                # attribute sets and cover each vertex's attribute set
                # with them.
                from repro.itemsets import cover_database, mine_code_table

                vertices = [
                    v for v in graph.vertices() if graph.attributes_of(v)
                ]
                transactions = [graph.attributes_of(v) for v in vertices]
                code_table = mine_code_table(
                    transactions, algorithm=context.config.coreset_encoder
                )
                covers = cover_database(code_table, transactions)
                positions: Dict[FrozenSet[Value], Set[Vertex]] = {}
                usage: Dict[FrozenSet[Value], int] = {}
                for vertex, cover in zip(vertices, covers):
                    for itemset in cover:
                        key = frozenset(itemset)
                        positions.setdefault(key, set()).add(vertex)
                        usage[key] = usage.get(key, 0) + 1
                context.coreset_positions = positions
                context.core_table = CoreCodeTable(usage)
        if obs.metrics.enabled:
            obs.metrics.gauge("encode.num_coresets").set(
                len(context.coreset_positions)
            )


class BuildInvertedDB(PipelineStage):
    """Step 2 of Algorithm 1: the inverted database and the initial DL.

    The position-mask backend comes from ``config.mask_backend``
    (:mod:`repro.core.masks`; ``"auto"`` resolves by graph size —
    bigint for small graphs, chunked sparse bitmaps at paper scale) and
    the build path from ``config.construction`` — the serial columnar
    batch builder by default, or the coreset-partitioned worker-process
    path (``"partitioned"``, ``config.construction_workers`` workers),
    which produces the identical database.  The stage records the
    construction wall-clock in ``context.extras["construction_seconds"]``
    (the perf suite's schema-v4 metric).

    The initial description length is folded into construction: the
    database records its rows in canonical sorted order as each coreset
    finalises, so the Eq. 1-8 pass sums straight over that record
    instead of re-sorting every row — byte-identical floats, without
    what used to be the largest fixed cost on tiny ``fit_many`` graphs.
    """

    def run(self, context: PipelineContext) -> None:
        config = context.config
        obs = current()
        backend = resolve_backend(
            config.mask_backend,
            num_bits_hint=context.graph.num_vertices,
        )
        with obs.span("mine.build", construction=config.construction):
            start = clock.perf_counter()
            context.inverted_db = InvertedDatabase.from_graph(
                context.graph,
                context.coreset_positions,
                mask_backend=backend,
                construction=config.construction,
                construction_workers=config.construction_workers,
                runtime_policy=(
                    RuntimePolicy.from_config(config)
                    if config.construction == "partitioned"
                    else None
                ),
            )
            elapsed = clock.perf_counter() - start
            context.extras["construction_seconds"] = elapsed
            report = context.inverted_db.construction_report
            if report is not None:
                context.extras.setdefault("runtime", {})["construction"] = (
                    report.to_dict()
                )
            context.initial_dl = initial_description_length(
                context.inverted_db, context.standard_table, context.core_table
            )
        db = context.inverted_db
        if obs.metrics.enabled:
            obs.metrics.histogram("build.seconds").observe(elapsed)
            obs.metrics.gauge("build.num_rows").set(db.num_rows)
            obs.metrics.gauge("build.mask_memory_bytes").set(
                db.mask_memory_bytes()
            )
        obs.progress.note(
            "build", rows=db.num_rows, seconds=round(elapsed, 3)
        )


class Search(PipelineStage):
    """Steps 3-4: greedy MDL merging, basic or partial-update.

    Candidate pairs come from the overlap-driven generator
    (:mod:`repro.core.pairgen`) by default; ``pair_source="full"``
    switches to the quadratic reference scan — same merge sequence and
    DL bits, only slower.  The perf harness uses this to measure the
    sparse-aware speedup on identical pipelines.

    The end-of-run description length is *incremental*: the searches
    accumulate ``initial_dl_bits - sum(breakdown.total)`` (and the
    per-component sums) in the trace, so this stage no longer runs a
    full ``description_length`` pass — which on small ``fit_many``
    graphs used to cost more than the whole partial search.  The
    component breakdown ``CSPMResult.final_dl`` is recomputed lazily,
    in sorted order, only when first accessed (e.g. at serialisation,
    whose floats must be hash-seed- and accumulation-order-independent);
    tests validate the incremental totals against that recompute.

    ``config.search="sharded"`` routes uncapped partial runs through
    the component-sharded parallel search
    (:mod:`repro.core.search_shard`) — bit-identical trace and result,
    with the search wall-clock and component stats recorded in
    ``context.extras`` (``search_seconds``, ``num_components``,
    ``largest_component_frac``).  Runs the sharded path cannot express
    (basic method, ``max_iterations`` caps) fall back to serial.
    """

    def __init__(self, pair_source: str = "overlap") -> None:
        from repro.core.pairgen import PAIR_SOURCES

        if pair_source not in PAIR_SOURCES:
            raise MiningError(
                f"pair_source must be one of {PAIR_SOURCES}, got {pair_source!r}"
            )
        self.pair_source = pair_source

    def run(self, context: PipelineContext) -> None:
        config = context.config
        obs = current()
        # BuildInvertedDB already computed the starting DL on the fresh
        # database; hand it to the search instead of recomputing.
        initial_bits = (
            context.initial_dl.total_bits
            if context.initial_dl is not None
            else None
        )
        start = clock.perf_counter()
        with obs.span(
            "mine.search",
            method=config.method,
            search=config.search,
            scope=config.partial_update_scope,
        ):
            self._dispatch(context, config, initial_bits)
        elapsed = clock.perf_counter() - start
        context.extras["search_seconds"] = elapsed
        if obs.metrics.enabled:
            obs.metrics.histogram("search.seconds").observe(elapsed)
            emit_run_trace(obs.metrics, context.trace)
        obs.progress.note(
            "search",
            merges=len(context.trace.iterations),
            seconds=round(elapsed, 3),
        )
        # No final description_length pass here: the incremental total
        # lives in context.trace.final_dl_bits, and the result computes
        # the component breakdown lazily on first access.
        context.final_dl = None

    def _dispatch(
        self,
        context: PipelineContext,
        config: CSPMConfig,
        initial_bits: Optional[float],
    ) -> None:
        if config.method == "basic":
            context.trace = run_basic(
                context.inverted_db,
                context.standard_table,
                context.core_table,
                include_model_cost=config.include_model_cost,
                max_iterations=config.max_iterations,
                initial_dl_bits=initial_bits,
                pair_source=self.pair_source,
            )
        elif config.search == "sharded" and config.max_iterations is None:
            from repro.core.search_shard import run_sharded

            sharded = run_sharded(
                context.inverted_db,
                context.standard_table,
                context.core_table,
                include_model_cost=config.include_model_cost,
                update_scope=config.partial_update_scope,
                initial_dl_bits=initial_bits,
                pair_source=self.pair_source,
                workers=config.search_workers,
                policy=RuntimePolicy.from_config(config),
            )
            context.trace = sharded.trace
            context.extras["num_components"] = sharded.num_components
            context.extras["largest_component_frac"] = (
                sharded.largest_component_frac
            )
            if sharded.report is not None:
                context.extras.setdefault("runtime", {})["search"] = (
                    sharded.report.to_dict()
                )
        else:
            context.trace = run_partial(
                context.inverted_db,
                context.standard_table,
                context.core_table,
                include_model_cost=config.include_model_cost,
                max_iterations=config.max_iterations,
                update_scope=config.partial_update_scope,
                initial_dl_bits=initial_bits,
                pair_source=self.pair_source,
            )


class RankAndFilter(PipelineStage):
    """Rank surviving a-stars and apply the config post-filters.

    Ordering is the paper's: ascending code length.  ``min_leafset``
    and ``top_k`` only trim the reported list; they never influence the
    search itself.
    """

    def run(self, context: PipelineContext) -> None:
        config = context.config
        obs = current()
        with obs.span(
            "mine.rank", min_leafset=config.min_leafset, top_k=config.top_k
        ):
            self._rank(context, config)
        if obs.metrics.enabled:
            obs.metrics.gauge("rank.num_astars").set(len(context.astars))

    def _rank(self, context: PipelineContext, config: CSPMConfig) -> None:
        db = context.inverted_db
        core_table = context.core_table
        astars = []
        for core, leaf, frequency in db.row_items():
            code = core_table.code_length(core) + row_code_length(db, core, leaf)
            astars.append(
                AStar(
                    coreset=core,
                    leafset=leaf,
                    frequency=frequency,
                    coreset_frequency=db.coreset_frequency(core),
                    code_length=code,
                )
            )
        astars.sort(key=AStar.sort_key)
        if config.min_leafset > 1:
            astars = [
                star for star in astars if len(star.leafset) >= config.min_leafset
            ]
        if config.top_k is not None:
            astars = astars[: config.top_k]
        context.astars = astars
        runtime = context.extras.get("runtime")
        if runtime is not None and "fault_plan" not in runtime:
            # Record which injection schedule (if any) the supervised
            # pools ran under, so a chaos run's telemetry is
            # self-describing.
            from repro.runtime.faults import resolve_plan

            plan = resolve_plan(config.fault_plan)
            runtime["fault_plan"] = plan.to_dict() if plan is not None else None
        context.result = CSPMResult(
            astars=astars,
            trace=context.trace,
            initial_dl=context.initial_dl,
            final_dl=context.final_dl,
            standard_table=context.standard_table,
            core_table=context.core_table,
            inverted_db=db,
            config=config,
            runtime=runtime,
        )


class MiningPipeline:
    """An ordered list of stages plus the config that drives them.

    Pipelines are immutable in spirit: :meth:`with_stage` and
    :meth:`with_config` return new pipelines, so a default pipeline can
    be shared and specialised per call site.
    """

    def __init__(
        self,
        stages: Sequence[Any],
        config: Optional[CSPMConfig] = None,
    ) -> None:
        if not stages:
            raise MiningError("a pipeline needs at least one stage")
        self.config = config if config is not None else CSPMConfig()
        self._stages: List[PipelineStage] = [
            self._coerce_stage(stage) for stage in stages
        ]

    @staticmethod
    def _coerce_stage(stage: Any) -> PipelineStage:
        if isinstance(stage, type):
            raise MiningError(
                f"pass a stage instance, not the class {stage.__name__}"
            )
        if isinstance(stage, PipelineStage):
            return stage
        if callable(stage) and not hasattr(stage, "run"):
            return FunctionStage(stage)
        if hasattr(stage, "run") and hasattr(stage, "name"):
            return stage
        raise MiningError(
            f"stage {stage!r} is neither a PipelineStage nor a callable"
        )

    @classmethod
    def default(cls, config: Optional[CSPMConfig] = None) -> "MiningPipeline":
        """The paper's four-stage pipeline (Algorithm 1/3)."""
        return cls(
            [EncodeCoresets(), BuildInvertedDB(), Search(), RankAndFilter()],
            config=config,
        )

    # ------------------------------------------------------------------
    # Introspection and composition
    # ------------------------------------------------------------------

    @property
    def stages(self) -> List[PipelineStage]:
        return list(self._stages)

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self._stages]

    def _index_of(self, name: str) -> int:
        for index, stage in enumerate(self._stages):
            if stage.name == name:
                return index
        raise MiningError(
            f"no stage named {name!r}; have {self.stage_names()}"
        )

    def with_stage(
        self,
        stage: Any,
        before: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "MiningPipeline":
        """A new pipeline with ``stage`` inserted.

        ``before``/``after`` name an existing stage; with neither, the
        stage is appended (it then runs after the result is built —
        useful for result taps).

        A stage that mutates ``context.inverted_db`` between
        ``BuildInvertedDB`` and ``Search`` must finish with
        ``context.recompute_initial_dl()`` — the search seeds its trace
        DL accounting from ``context.initial_dl``.
        """
        if before is not None and after is not None:
            raise MiningError("pass at most one of before/after")
        stages = list(self._stages)
        if before is not None:
            stages.insert(self._index_of(before), stage)
        elif after is not None:
            stages.insert(self._index_of(after) + 1, stage)
        else:
            stages.append(stage)
        return MiningPipeline(stages, config=self.config)

    def with_config(self, config: CSPMConfig) -> "MiningPipeline":
        """The same stages driven by a different config."""
        return MiningPipeline(list(self._stages), config=config)

    def __repr__(self) -> str:
        return (
            f"MiningPipeline({' -> '.join(self.stage_names())}, "
            f"config=CSPMConfig({self.config.describe()}))"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        graph: AttributedGraph,
        config: Optional[CSPMConfig] = None,
    ) -> CSPMResult:
        """Execute every stage on ``graph`` and return the built result."""
        context = self.run_context(graph, config=config)
        if context.result is None:
            raise MiningError(
                "pipeline finished without producing a result "
                "(is a RankAndFilter stage missing?)"
            )
        return context.result

    def run_context(
        self,
        graph: AttributedGraph,
        config: Optional[CSPMConfig] = None,
    ) -> PipelineContext:
        """Like :meth:`run` but returns the full context (for taps)."""
        if graph.num_vertices == 0:
            raise MiningError("cannot mine an empty graph")
        if not graph.attribute_values():
            raise MiningError("graph has no attribute values")
        context = PipelineContext(
            graph=graph,
            config=config if config is not None else self.config,
        )
        # The config-selected observation session wraps the stage loop;
        # with no knobs set, inherit whatever session the caller
        # already activated (the perf suite, a service layer) so spans
        # land in one timeline either way.
        obs = Observation.from_config(context.config)
        if not obs.enabled:
            obs = current()
        context.obs = obs
        with activate(obs):
            for stage in self._stages:
                stage.run(context)
        return context
