"""Fusing CSPM a-star scores with model probabilities (paper, Fig. 7).

The completion model outputs a probability per (node, value); the
CSPM scoring module (Algorithm 5) outputs an a-star-based score per
(node, value).  Both matrices are normalised separately and multiplied
elementwise to obtain the final ranking — exactly the pipeline shown
in Fig. 7.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.completion.task import CompletionData
from repro.core.scoring import AStarScorer


def normalize_scores(scores: np.ndarray) -> np.ndarray:
    """Row-wise min-max normalisation to [eps, 1].

    ``-inf`` entries (values the scorer has never seen as core values)
    map to 0.  A small floor keeps the multiplication from zeroing out
    a value solely because one source is indifferent; constant rows
    normalise to a uniform 0.5.
    """
    scores = np.asarray(scores, dtype=float)
    normalized = np.zeros_like(scores)
    eps = 1e-6
    for row in range(scores.shape[0]):
        values = scores[row]
        finite = np.isfinite(values)
        if not finite.any():
            continue
        low = values[finite].min()
        high = values[finite].max()
        if high - low < 1e-12:
            normalized[row, finite] = 0.5
        else:
            normalized[row, finite] = eps + (1.0 - eps) * (
                (values[finite] - low) / (high - low)
            )
    return normalized


def cspm_score_matrix(
    scorer: AStarScorer,
    data: CompletionData,
    rows: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Algorithm 5 scores for every (node, value), ``-inf`` when unseen.

    Neighbour values are looked up in the *observed* graph so the
    scorer never touches hidden attributes.
    """
    if rows is None:
        rows = np.arange(data.num_nodes)
    matrix = np.full((data.num_nodes, data.num_values), -np.inf)
    graph = data.observed_graph
    for row in rows:
        vertex = data.vertex_order[row]
        matrix[row] = scorer.score_array(data.value_order, graph, vertex)
    return matrix


def fuse_scores(
    model_scores: np.ndarray, cspm_scores: np.ndarray
) -> np.ndarray:
    """Normalise both matrices and multiply them elementwise (Fig. 7).

    Rows where CSPM is silent (no finite score) fall back to the model
    alone.
    """
    model_norm = normalize_scores(model_scores)
    cspm_norm = normalize_scores(cspm_scores)
    fused = model_norm * cspm_norm
    silent = ~np.isfinite(cspm_scores).any(axis=1)
    fused[silent] = model_norm[silent]
    return fused
