"""Node attribute completion (paper, Section VI-C / Table IV).

Pipeline: hide the attributes of a test fraction of nodes, train a
completion model on the rest, optionally fuse the model's probability
matrix with CSPM's a-star scores (Fig. 7), and evaluate Recall@K and
NDCG@K on the hidden nodes.
"""

from repro.completion.fusion import cspm_score_matrix, fuse_scores, normalize_scores
from repro.completion.metrics import ndcg_at_k, recall_at_k
from repro.completion.task import CompletionData, make_completion_data

__all__ = [
    "CompletionData",
    "cspm_score_matrix",
    "fuse_scores",
    "make_completion_data",
    "ndcg_at_k",
    "normalize_scores",
    "recall_at_k",
]
