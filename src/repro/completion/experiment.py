"""The full Table IV experiment driver.

For each baseline model, runs the completion task twice — plain and
fused with CSPM scores (Fig. 7) — and reports Recall@K / NDCG@K on the
attribute-missing nodes, plus the average improvement row the paper
prints at the bottom of each dataset block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.completion.fusion import cspm_score_matrix, fuse_scores
from repro.completion.metrics import evaluate_all
from repro.completion.task import make_completion_data
from repro.config import CSPMConfig
from repro.core.miner import CSPM
from repro.core.scoring import AStarScorer
from repro.graphs.attributed_graph import AttributedGraph
from repro.nn.models import make_model
from repro.nn.models.base import model_names


@dataclass
class CompletionReport:
    """Per-model metrics with and without CSPM fusion."""

    dataset: str
    ks: Sequence[int]
    plain: Dict[str, Dict[str, float]] = field(default_factory=dict)
    fused: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def improvement(self) -> Dict[str, float]:
        """Average relative improvement (%) per metric, over models."""
        metrics = {}
        for key in self._metric_keys():
            deltas = []
            for model in self.plain:
                base = self.plain[model][key]
                boosted = self.fused[model][key]
                if base > 0:
                    deltas.append(100.0 * (boosted - base) / base)
            metrics[key] = float(np.mean(deltas)) if deltas else 0.0
        return metrics

    def _metric_keys(self) -> List[str]:
        keys = []
        for k in self.ks:
            keys.append(f"Recall@{k}")
        for k in self.ks:
            keys.append(f"NDCG@{k}")
        return keys

    def as_table(self) -> str:
        """A Table IV style text block."""
        keys = self._metric_keys()
        header = f"{'Method':<22}" + "".join(f"{key:>12}" for key in keys)
        lines = [f"Dataset: {self.dataset}", header, "-" * len(header)]
        for model in self.plain:
            row = self.plain[model]
            lines.append(
                f"{model:<22}" + "".join(f"{row[key]:>12.4f}" for key in keys)
            )
            boosted = self.fused[model]
            lines.append(
                f"{'CSPM+' + model:<22}"
                + "".join(f"{boosted[key]:>12.4f}" for key in keys)
            )
        improvement = self.improvement()
        lines.append(
            f"{'Avg.improvement(%)':<22}"
            + "".join(f"{improvement[key]:>+12.2f}" for key in keys)
        )
        return "\n".join(lines)


def run_completion_experiment(
    graph: AttributedGraph,
    dataset_name: str,
    ks: Sequence[int] = (10, 20, 50),
    models: Optional[Sequence[str]] = None,
    test_fraction: float = 0.4,
    seed: int = 0,
    model_kwargs: Optional[Dict[str, dict]] = None,
    cspm_config: Optional[CSPMConfig] = None,
) -> CompletionReport:
    """Run all baselines +- CSPM on one dataset (one Table IV block).

    ``cspm_config`` parameterises the mining run used for score fusion
    (default: the paper's CSPM-Partial settings).
    """
    data = make_completion_data(graph, test_fraction=test_fraction, seed=seed)
    report = CompletionReport(dataset=dataset_name, ks=tuple(ks))
    names = list(models) if models is not None else model_names()
    model_kwargs = model_kwargs or {}

    # Mine a-stars on the observed (attribute-missing) graph only.
    cspm_result = CSPM(config=cspm_config).fit(data.observed_graph)
    scorer = AStarScorer(cspm_result)
    test_rows = data.test_rows()
    cspm_scores = cspm_score_matrix(scorer, data, rows=test_rows)

    targets_test = data.targets[test_rows]
    for name in names:
        model = make_model(name, seed=seed, **model_kwargs.get(name, {}))
        model.fit(data.adjacency, data.features, data.train_mask)
        scores = model.predict()[test_rows]
        report.plain[name] = evaluate_all(scores, targets_test, ks)
        fused = fuse_scores(scores, cspm_scores[test_rows])
        report.fused[name] = evaluate_all(fused, targets_test, ks)
    return report
