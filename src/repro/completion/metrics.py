"""Ranking metrics for attribute completion: Recall@K and NDCG@K.

Both follow the SAT-paper evaluation the Table IV experiment adopts:
for each attribute-missing node the model ranks all attribute values;
the top-K ranked values are compared against the node's true set.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError


def _top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest scores, ties broken by index."""
    k = min(k, scores.shape[-1])
    order = np.argsort(-scores, axis=-1, kind="stable")
    return order[..., :k]


def recall_at_k(scores: np.ndarray, targets: np.ndarray, k: int) -> float:
    """Mean over rows of ``|top-K hits| / |true values|``.

    Rows without any true value are skipped.
    """
    scores, targets = _validate(scores, targets, k)
    top = _top_k_indices(scores, k)
    recalls = []
    for row in range(scores.shape[0]):
        truth = targets[row] > 0
        total = truth.sum()
        if total == 0:
            continue
        hits = truth[top[row]].sum()
        recalls.append(hits / total)
    if not recalls:
        raise ModelError("no row has a non-empty target set")
    return float(np.mean(recalls))


def ndcg_at_k(scores: np.ndarray, targets: np.ndarray, k: int) -> float:
    """Mean NDCG@K with binary relevance.

    ``DCG = sum_i rel_i / log2(i + 2)`` over the top-K ranking,
    normalised by the ideal DCG of the row's true-value count.
    """
    scores, targets = _validate(scores, targets, k)
    top = _top_k_indices(scores, k)
    discounts = 1.0 / np.log2(np.arange(k) + 2.0)
    ndcgs = []
    for row in range(scores.shape[0]):
        truth = targets[row] > 0
        total = int(truth.sum())
        if total == 0:
            continue
        gains = truth[top[row]].astype(float)
        dcg = float((gains * discounts[: len(gains)]).sum())
        ideal = float(discounts[: min(total, k)].sum())
        ndcgs.append(dcg / ideal)
    if not ndcgs:
        raise ModelError("no row has a non-empty target set")
    return float(np.mean(ndcgs))


def _validate(scores: np.ndarray, targets: np.ndarray, k: int):
    scores = np.asarray(scores, dtype=float)
    targets = np.asarray(targets)
    if scores.shape != targets.shape:
        raise ModelError("scores and targets must have the same shape")
    if scores.ndim != 2:
        raise ModelError("scores must be (num_rows, num_values)")
    if k < 1:
        raise ModelError("k must be >= 1")
    return scores, targets


def evaluate_all(
    scores: np.ndarray, targets: np.ndarray, ks: Sequence[int]
) -> dict:
    """``{"Recall@k": ..., "NDCG@k": ...}`` for every k."""
    metrics = {}
    for k in ks:
        metrics[f"Recall@{k}"] = recall_at_k(scores, targets, k)
        metrics[f"NDCG@{k}"] = ndcg_at_k(scores, targets, k)
    return metrics
