"""The attribute-missing completion task setup.

Follows the protocol of the SAT paper the evaluation section adopts:
a fraction of nodes becomes *attribute-missing* (their whole attribute
vector is hidden); models observe the graph structure plus the
attribute vectors of the remaining nodes and must rank the hidden
values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List

import numpy as np

from repro.errors import DatasetError
from repro.graphs.attributed_graph import AttributedGraph

Value = Hashable
Vertex = Hashable


@dataclass
class CompletionData:
    """Dense matrices + masks for one completion split.

    ``features`` equals ``targets`` on train rows and is all-zero on
    test rows; ``observed_graph`` is the attributed graph with test
    attributes removed (what CSPM is allowed to mine).
    """

    adjacency: np.ndarray
    features: np.ndarray
    targets: np.ndarray
    train_mask: np.ndarray
    test_mask: np.ndarray
    vertex_order: List[Vertex]
    value_order: List[Value]
    observed_graph: AttributedGraph = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_values(self) -> int:
        return len(self.value_order)

    def test_rows(self) -> np.ndarray:
        return np.where(self.test_mask)[0]


def make_completion_data(
    graph: AttributedGraph,
    test_fraction: float = 0.4,
    seed: int = 0,
    min_attributes: int = 1,
) -> CompletionData:
    """Split ``graph`` into an attribute-missing completion instance.

    Only vertices with at least ``min_attributes`` values are eligible
    for the test set (a node with nothing to predict is useless for
    evaluation).
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError("test_fraction must be in (0, 1)")
    vertex_order = sorted(graph.vertices(), key=repr)
    value_order = sorted(graph.attribute_values(), key=repr)
    if not value_order:
        raise DatasetError("graph has no attribute values")
    vertex_index = {v: i for i, v in enumerate(vertex_order)}
    value_index = {a: i for i, a in enumerate(value_order)}
    n, d = len(vertex_order), len(value_order)

    adjacency = np.zeros((n, n))
    for u, v in graph.edges():
        adjacency[vertex_index[u], vertex_index[v]] = 1.0
        adjacency[vertex_index[v], vertex_index[u]] = 1.0

    targets = np.zeros((n, d))
    for vertex in vertex_order:
        row = vertex_index[vertex]
        for value in graph.attributes_of(vertex):
            targets[row, value_index[value]] = 1.0

    rng = np.random.default_rng(seed)
    eligible = [
        i
        for i, vertex in enumerate(vertex_order)
        if len(graph.attributes_of(vertex)) >= min_attributes
    ]
    if not eligible:
        raise DatasetError("no vertex has enough attributes to hide")
    num_test = max(1, int(round(test_fraction * len(eligible))))
    if num_test >= len(eligible):
        raise DatasetError("test_fraction leaves no training vertices")
    test_rows = rng.choice(eligible, size=num_test, replace=False)
    test_mask = np.zeros(n, dtype=bool)
    test_mask[test_rows] = True
    train_mask = ~test_mask

    features = targets.copy()
    features[test_mask] = 0.0

    observed_graph = graph.copy()
    for row in test_rows:
        observed_graph.set_attributes(vertex_order[row], ())

    return CompletionData(
        adjacency=adjacency,
        features=features,
        targets=targets,
        train_mask=train_mask,
        test_mask=test_mask,
        vertex_order=vertex_order,
        value_order=value_order,
        observed_graph=observed_graph,
    )
