"""The attribute-star (a-star) pattern type.

An a-star ``S = (Sc, SL)`` (paper, Section IV-A) consists of a *coreset*
``Sc`` of attribute values expected on a core vertex, and a *leafset*
``SL`` of values expected to appear on (any of) its direct neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, Iterable, Mapping, Tuple

from repro.graphs.attributed_graph import AttributedGraph

Value = Hashable


def _sorted_values(values: Iterable[Value]) -> Tuple[Value, ...]:
    return tuple(sorted(values, key=repr))


@dataclass(frozen=True)
class AStar:
    """An attribute-star with its MDL bookkeeping.

    Attributes
    ----------
    coreset / leafset:
        The core values ``Sc`` and leaf values ``SL``.
    frequency:
        ``fL`` — the number of core positions covered by this pattern in
        the final inverted database.
    coreset_frequency:
        ``fc`` — the total frequency of the coreset across the inverted
        database at termination.
    code_length:
        ``L(Code_c) + L(Code_L)`` in bits (Eq. 4).  Shorter codes mean
        more informative patterns; results are ranked ascending.
    """

    coreset: FrozenSet[Value]
    leafset: FrozenSet[Value]
    frequency: int = 0
    coreset_frequency: int = 0
    code_length: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "coreset", frozenset(self.coreset))
        object.__setattr__(self, "leafset", frozenset(self.leafset))

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def matches_at(self, graph: AttributedGraph, vertex) -> bool:
        """Whether this a-star matches the star rooted at ``vertex``.

        Following the paper's matching definition: every core value must
        appear on the core vertex, and every leaf value on at least one
        of its neighbours.
        """
        if not self.coreset <= graph.attributes_of(vertex):
            return False
        remaining = set(self.leafset)
        for neighbour in graph.neighbors(vertex):
            remaining -= graph.attributes_of(neighbour)
            if not remaining:
                return True
        return not remaining

    def occurrences(self, graph: AttributedGraph) -> FrozenSet:
        """All vertices whose star this a-star matches."""
        return frozenset(
            vertex for vertex in graph.vertices() if self.matches_at(graph, vertex)
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable representation (sets as sorted lists)."""
        return {
            "coreset": list(_sorted_values(self.coreset)),
            "leafset": list(_sorted_values(self.leafset)),
            "frequency": self.frequency,
            "coreset_frequency": self.coreset_frequency,
            "code_length": self.code_length,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "AStar":
        """Rebuild an a-star from :meth:`to_dict` output."""
        return cls(
            coreset=frozenset(document["coreset"]),
            leafset=frozenset(document["leafset"]),
            frequency=document.get("frequency", 0),
            coreset_frequency=document.get("coreset_frequency", 0),
            code_length=document.get("code_length", 0.0),
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    @property
    def confidence(self) -> float:
        """``fL / fc`` — the conditional usage ratio behind Eq. 6."""
        if self.coreset_frequency <= 0:
            return 0.0
        return self.frequency / self.coreset_frequency

    def __str__(self) -> str:
        core = "{" + ", ".join(map(str, _sorted_values(self.coreset))) + "}"
        leaf = "{" + ", ".join(map(str, _sorted_values(self.leafset))) + "}"
        return (
            f"({core} -> {leaf})  fL={self.frequency} fc={self.coreset_frequency} "
            f"L={self.code_length:.3f} bits"
        )

    def sort_key(self) -> Tuple:
        """Deterministic ordering: code length, then lexicographic sets."""
        return (
            self.code_length,
            _sorted_values(self.coreset),
            _sorted_values(self.leafset),
        )
