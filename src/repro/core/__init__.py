"""CSPM core: inverted database, MDL accounting, and the two search
procedures (CSPM-Basic, Algorithm 1-2; CSPM-Partial, Algorithm 3-4).

The public entry point is :class:`repro.core.miner.CSPM`; the other
modules expose the machinery for tests, ablations and instrumentation.
"""

from repro.core.astar import AStar
from repro.core.candidates import LeafsetInterner
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.inverted_db import InvertedDatabase, MergeOutcome
from repro.core.masks import MaskBackend, get_backend, resolve_backend
from repro.core.mdl import (
    DescriptionLength,
    conditional_entropy,
    description_length,
    initial_description_length,
)
from repro.core.miner import CSPM, CSPMResult
from repro.core.pairgen import overlap_pairs
from repro.core.scoring import AStarScorer

__all__ = [
    "AStar",
    "AStarScorer",
    "CSPM",
    "CSPMResult",
    "CoreCodeTable",
    "DescriptionLength",
    "InvertedDatabase",
    "LeafsetInterner",
    "MaskBackend",
    "MergeOutcome",
    "StandardCodeTable",
    "conditional_entropy",
    "description_length",
    "get_backend",
    "initial_description_length",
    "overlap_pairs",
    "resolve_backend",
]
