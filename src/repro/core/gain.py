"""Incremental merge gain: Eq. 9-15 of the paper.

The gain of merging two leafsets ``SLx`` and ``SLy`` is

    dL = P1 - P2                                   (Eq. 9)

where, over the common coresets ``C`` with co-occurrence ``xye > 0``:

    P1 = sum_e [ fe*lg(fe) - (fe - xye)*lg(fe - xye) ]        (Eq. 10)
    P2 = sum_e Pe                                             (Eq. 11)
    Pe = xe*lg(xe) + ye*lg(ye)
         - [ (xe-xye)*lg(xe-xye) + (ye-xye)*lg(ye-xye)
             + xye*lg(xye) ]

The single ``Pe`` above (with ``0*lg 0 = 0``) subsumes the paper's
three cases: *partly merged* (Eq. 12), *totally merged* (Eq. 13) and
*one line totally merged* (Eq. 14/15).

On top of the data gain, Section IV-E notes the model-cost side: the
new row's leafset must be materialised in ``CTL`` (priced by the
standard code table) while fully-merged rows disappear.  This is the
``model_gain`` component; the CSPM facade subtracts it by default
(``include_model_cost=True``) and exposes it for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence

from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import xlog2x

LeafKey = FrozenSet[Hashable]

# Interned leafset ids are packed into a single cache key; 2^32 leafsets
# is far beyond anything a big-int-mask database can hold.
_PAIR_SHIFT = 32


@dataclass(frozen=True)
class GainBreakdown:
    """All components of a candidate merge's gain, in bits (saved).

    ``data_leaf_gain``
        Eq. 9 — the reduction of the conditional-entropy data cost.
    ``model_gain``
        Reduction of the model (code table) cost; usually negative
        because the new leafset must be stored.
    ``data_core_gain``
        Reduction of the coreset-pointer data cost (each merged
        position emits one coreset code instead of two).  Always >= 0.
    """

    data_leaf_gain: float
    model_gain: float
    data_core_gain: float

    def net(self, include_model_cost: bool = True) -> float:
        """The gain used to rank candidates.

        Follows Algorithm 2 (Eq. 9) with the Section IV-E model-cost
        correction when ``include_model_cost`` is set.
        """
        if include_model_cost:
            return self.data_leaf_gain + self.model_gain
        return self.data_leaf_gain

    @property
    def total(self) -> float:
        """Full DL delta including every tracked component."""
        return self.data_leaf_gain + self.model_gain + self.data_core_gain


ZERO_GAIN = GainBreakdown(0.0, 0.0, 0.0)


class GainEngine:
    """Fast gain evaluation bound to one database and its code tables.

    Semantically identical to :func:`pair_gain` (tests assert this) but
    avoids per-call overhead: ``x*log2(x)`` values are served from a
    lazily-grown lookup table, leafset standard-code costs and coreset
    pointer lengths are cached, row frequencies come from the database's
    incrementally-maintained popcount index (one mask ``and_count`` per
    common coreset instead of three popcounts), and each pair's
    common-coreset list is memoised.  All mask arithmetic goes through
    the database's :mod:`~repro.core.masks` backend, so the engine is
    representation-agnostic and exact on every backend.

    The common-coreset cache is keyed by the packed interned pair id and
    validated by the two leafsets' merge epochs: a leafset's coreset
    membership changes only in merges it participates in, so two epoch
    comparisons decide reuse.  Arguments are canonicalised to interned-id
    order before any arithmetic, making the returned floats independent
    of call orientation — CSPM-Partial's lazy scope relies on this to
    reuse stored breakdowns bit-for-bit.

    The xlogx table grows geometrically on demand, so it ends up sized
    to the largest coreset frequency actually encountered (every
    Eq. 10-15 argument is bounded by some ``fe``) rather than the
    database's total frequency — tiny graphs in ``fit_many`` batches no
    longer each allocate a table proportional to ``total_frequency()``.
    Arguments beyond ``_XLOGX_CAP`` fall back to direct computation
    instead of materialising an extreme-scale table.
    """

    _XLOGX_CAP = 4_000_000

    def __init__(
        self,
        db: InvertedDatabase,
        standard_table: Optional[StandardCodeTable] = None,
        core_table: Optional[CoreCodeTable] = None,
    ) -> None:
        self.db = db
        self.standard_table = standard_table
        self.core_table = core_table
        self._leaf_cost = {}
        self._pointer = {}
        self._xlogx = [0.0, 0.0]
        # packed pair id -> (common coresets, leaf_epoch_x, leaf_epoch_y)
        self._pair_cores: dict = {}
        # Bound mask ops of the database's backend: the hot loop's xye
        # count and the disjoint-union prefilter (repro.core.masks).
        self._and_count = db.mask_backend.and_count
        self._overlaps = db.mask_backend.union_overlaps

    def cache_stats(self) -> Dict[str, int]:
        """Current sizes of the engine's memo structures.

        Observability-only (``gain.cache_size`` gauges at the end of a
        search); reads nothing but ``len``, so calling it can never
        perturb gains.
        """
        return {
            "xlogx_table": len(self._xlogx),
            "pair_cores": len(self._pair_cores),
            "leaf_cost": len(self._leaf_cost),
            "pointer": len(self._pointer),
        }

    def _xl(self, x: int) -> float:
        table = self._xlogx
        if x < len(table):
            return table[x]
        if x > self._XLOGX_CAP:  # pragma: no cover - guard for extreme scales
            return xlog2x(x)
        size = len(table)
        new_size = min(max(x + 1, 2 * size), self._XLOGX_CAP + 1)
        table.extend(i * log2(i) for i in range(size, new_size))
        return table[x]

    def common_cores(
        self, leaf_x: LeafKey, leaf_y: LeafKey, id_x: int, id_y: int
    ) -> Sequence:
        """The pair's common coresets, memoised (``id_x <= id_y``).

        The cached list preserves the iteration order of the smaller
        coreset set at build time, so repeated evaluations sum the gain
        terms in the same order and return identical floats.
        """
        key = (id_x << _PAIR_SHIFT) | id_y
        db = self.db
        epoch_x = db.leaf_epoch(leaf_x)
        epoch_y = db.leaf_epoch(leaf_y)
        cached = self._pair_cores.get(key)
        if cached is not None and cached[1] == epoch_x and cached[2] == epoch_y:
            return cached[0]
        cores_x = db._leaf_to_cores.get(leaf_x)
        cores_y = db._leaf_to_cores.get(leaf_y)
        if not cores_x or not cores_y:
            common: List = []
        else:
            if len(cores_x) > len(cores_y):
                cores_x, cores_y = cores_y, cores_x
            common = [core for core in cores_x if core in cores_y]
        self._pair_cores[key] = (common, epoch_x, epoch_y)
        return common

    def stale_since(
        self, leaf_x: LeafKey, leaf_y: LeafKey, validated_at: int
    ) -> bool:
        """Whether the pair's gain may have changed after ``validated_at``.

        Every gain term is a function of per-coreset state (row masks,
        frequencies, row existence) over the pair's common coresets, so
        the stored value is exact while no common coreset's merge epoch
        passed the validation point.  Endpoint participation in a later
        merge is checked first — O(1), and it also re-validates the
        cached common-coreset list.
        """
        db = self.db
        if (
            db.leaf_epoch(leaf_x) > validated_at
            or db.leaf_epoch(leaf_y) > validated_at
        ):
            return True
        interner = db.interner
        id_x = interner.intern(leaf_x)
        id_y = interner.intern(leaf_y)
        if id_x > id_y:
            leaf_x, leaf_y = leaf_y, leaf_x
            id_x, id_y = id_y, id_x
        core_epoch = db._core_epoch
        for core in self.common_cores(leaf_x, leaf_y, id_x, id_y):
            if core_epoch.get(core, 0) > validated_at:
                return True
        return False

    def leaf_cost(self, leaf: LeafKey) -> float:
        cost = self._leaf_cost.get(leaf)
        if cost is None:
            cost = self.standard_table.set_cost(leaf)
            self._leaf_cost[leaf] = cost
        return cost

    def pointer(self, core) -> float:
        length = self._pointer.get(core)
        if length is None:
            length = self.core_table.code_length(core) if self.core_table else 0.0
            self._pointer[core] = length
        return length

    def gain(self, leaf_x: LeafKey, leaf_y: LeafKey) -> GainBreakdown:
        """The :class:`GainBreakdown` of merging the two leafsets.

        Symmetric up to float identity: the arguments are canonicalised
        to interned-id order, so ``gain(x, y)`` and ``gain(y, x)``
        return the exact same floats.
        """
        db = self.db
        # Prefilter: if the leafsets' position unions are disjoint, no
        # coreset can have a non-empty intersection and the gain is 0.
        union = db._leaf_union
        union_x = union.get(leaf_x)
        union_y = union.get(leaf_y)
        if (
            union_x is None
            or union_y is None
            or not self._overlaps(union_x, union_y)
        ):
            return ZERO_GAIN
        interner = db.interner
        id_x = interner.intern(leaf_x)
        id_y = interner.intern(leaf_y)
        if id_x > id_y:
            leaf_x, leaf_y = leaf_y, leaf_x
            id_x, id_y = id_y, id_x
        common = self.common_cores(leaf_x, leaf_y, id_x, id_y)
        if not common:
            return ZERO_GAIN
        rows = db._rows
        freq = db._core_freq
        row_freq = db._row_freq
        new_leaf = leaf_x | leaf_y
        price_model = self.standard_table is not None
        new_leaf_cost = self.leaf_cost(new_leaf) if price_model else 0.0
        xl = self._xl
        and_count = self._and_count
        p1 = 0.0
        p2 = 0.0
        model_gain = 0.0
        data_core_gain = 0.0
        for core in common:
            xye = and_count(rows[(core, leaf_x)], rows[(core, leaf_y)])
            if not xye:
                continue
            xe = row_freq[(core, leaf_x)]
            ye = row_freq[(core, leaf_y)]
            fe = freq[core]
            p1 += xl(fe) - xl(fe - xye)
            p2 += xl(xe) + xl(ye) - (xl(xe - xye) + xl(ye - xye) + xl(xye))
            pointer = self.pointer(core)
            if price_model:
                if (core, new_leaf) not in rows:
                    model_gain -= new_leaf_cost + pointer
                if xye == xe:
                    model_gain += self.leaf_cost(leaf_x) + pointer
                if xye == ye:
                    model_gain += self.leaf_cost(leaf_y) + pointer
            data_core_gain += xye * pointer
        if p1 == 0.0 and p2 == 0.0 and model_gain == 0.0 and data_core_gain == 0.0:
            return ZERO_GAIN
        return GainBreakdown(
            data_leaf_gain=p1 - p2,
            model_gain=model_gain,
            data_core_gain=data_core_gain,
        )


def pair_gain(
    db: InvertedDatabase,
    leaf_x: LeafKey,
    leaf_y: LeafKey,
    standard_table: Optional[StandardCodeTable] = None,
    core_table: Optional[CoreCodeTable] = None,
) -> GainBreakdown:
    """Gain of merging ``leaf_x`` and ``leaf_y`` without mutating ``db``.

    When ``standard_table`` is omitted the model component is 0 (pure
    Eq. 9 gain).  ``core_table`` prices row pointers and the
    ``data_core_gain`` component.
    """
    new_leaf = leaf_x | leaf_y
    p1 = 0.0
    p2 = 0.0
    model_gain = 0.0
    data_core_gain = 0.0
    new_leaf_cost = (
        standard_table.set_cost(new_leaf) if standard_table is not None else 0.0
    )
    for stat in db.merge_stats(leaf_x, leaf_y):
        if stat.xye == 0:
            continue
        fe, xe, ye, xye = stat.fe, stat.xe, stat.ye, stat.xye
        p1 += xlog2x(fe) - xlog2x(fe - xye)
        p2 += (
            xlog2x(xe)
            + xlog2x(ye)
            - (xlog2x(xe - xye) + xlog2x(ye - xye) + xlog2x(xye))
        )
        if standard_table is not None:
            pointer = (
                core_table.code_length(stat.coreset) if core_table is not None else 0.0
            )
            if db.row_frequency(stat.coreset, new_leaf) == 0:
                model_gain -= new_leaf_cost + pointer
            if xye == xe:
                model_gain += standard_table.set_cost(leaf_x) + pointer
            if xye == ye:
                model_gain += standard_table.set_cost(leaf_y) + pointer
        if core_table is not None:
            data_core_gain += xye * core_table.code_length(stat.coreset)
    return GainBreakdown(
        data_leaf_gain=p1 - p2,
        model_gain=model_gain,
        data_core_gain=data_core_gain,
    )
