"""CSPM-Partial: the partial-update optimisation (Algorithm 3 + 4).

Rather than re-enumerating every leafset pair after each merge,
CSPM-Partial maintains a priority queue of positive-gain candidates
and, after a merge, refreshes only the pairs the merge could have
affected.  Seeding is overlap-driven by default
(:func:`repro.core.pairgen.overlap_pairs`): only pairs sharing a
coreset with overlapping positions are evaluated, since no other pair
can have positive gain; ``pair_source="full"`` restores the seed's
quadratic scan (both enumerate in interned-id order, so the resulting
queue — and hence the merge sequence — is identical).

Three update scopes are provided:

``lazy`` (default used by the facade)
    Pushes the exhaustive scope's partial-update idea one level
    further by exploiting two monotonicity facts:

    * a pair's gain is a sum of per-coreset terms over its common
      coresets, so a stored gain is *exact* until some common coreset
      is touched by a later merge — per-coreset merge epochs
      (:meth:`~repro.core.inverted_db.InvertedDatabase.core_epoch`)
      make that staleness O(1) per coreset to detect.  A clean pair
      reaching the queue head is merged straight from its stored
      breakdown, skipping the revalidation gain computation entirely;
      merges elsewhere can only *lower* a stored gain (the coreset
      frequency ``fe`` shrinks), so stale stored gains remain sound
      upper bounds and revalidation happens only when a dirty pair
      actually surfaces at the head.
    * a gain can *rise* only for pairs involving a merge participant
      (their rows changed) or pairs whose union's code-table entry
      just materialised, and every gain term requires a non-empty
      positional intersection — so a participant pair whose positions
      are disjoint from the rows the merge touched is provably
      unchanged and its refresh is skipped with one mask AND.

    The result is the same merge sequence (and bit-identical DL
    accounting) as ``exhaustive`` — the equivalence suite asserts it —
    with far fewer gain evaluations.

``exhaustive``
    After a merge, the survivors and the new leafset are re-evaluated
    against *all* leafsets sharing a coreset with them (only such pairs
    can ever gain — the Section V observation), plus the pairs whose
    union equals the new leafset (their model cost just dropped).  This
    provably keeps the queue a superset of all positive-gain pairs, so
    the search selects exactly the same merges as CSPM-Basic while
    still touching only an affected neighbourhood per iteration.

``related`` (the paper's Algorithm 4, literally)
    ``rdict`` maps each leafset to the leafsets it currently forms a
    candidate with.  After merging ``p = (x, y)``: totally merged
    leafsets are dropped, the new leafset is evaluated only against
    ``rdict[x] & rdict[y]``, and pairs involving the partly merged
    survivors are re-evaluated.  This is the cheapest variant but can
    miss pairs whose gain *rises* after a merge (a pair involving a
    survivor that was not a candidate before), so its final model may
    differ slightly from CSPM-Basic's.

The ``exhaustive`` and ``related`` scopes revalidate every popped pair;
``lazy`` only the dirty ones.  All canonical ordering (pair
orientation, queue tie-breaks, refresh iteration order) runs on the
database's :class:`~repro.core.candidates.LeafsetInterner` — integer
comparisons instead of the seed's repr-string keys.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.candidates import CandidateQueue, LeafsetInterner, Pair
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.gain import GainEngine
from repro.core.instrumentation import IterationTrace, RunTrace, merged_pair_record
from repro.core.inverted_db import InvertedDatabase, MergeOutcome
from repro.core.mdl import description_length
from repro.core.pairgen import generate_pairs
from repro.errors import MiningError
from repro.obs import current

LeafKey = FrozenSet[Hashable]
GAIN_EPS = 1e-9
UPDATE_SCOPES = ("lazy", "exhaustive", "related")


class _PartialState:
    """Queue + rdict bookkeeping shared by the update steps."""

    def __init__(self, interner: LeafsetInterner) -> None:
        self.interner = interner
        self.queue = CandidateQueue(interner)
        self.rdict: Dict[LeafKey, Set[LeafKey]] = {}

    def add_candidate(
        self, leaf_x: LeafKey, leaf_y: LeafKey, gain: float, payload=None
    ) -> None:
        self.queue.set(self.interner.canonical_pair(leaf_x, leaf_y), gain, payload)
        self.rdict.setdefault(leaf_x, set()).add(leaf_y)
        self.rdict.setdefault(leaf_y, set()).add(leaf_x)

    def add_candidates(
        self, entries: List[Tuple[LeafKey, LeafKey, float, object]]
    ) -> None:
        """Bulk :meth:`add_candidate`: one queue batch per refresh."""
        rdict = self.rdict
        canonical = self.interner.canonical_pair
        batch = []
        for leaf_x, leaf_y, gain, payload in entries:
            batch.append((canonical(leaf_x, leaf_y), gain, payload))
            rdict.setdefault(leaf_x, set()).add(leaf_y)
            rdict.setdefault(leaf_y, set()).add(leaf_x)
        self.queue.set_many(batch)

    def drop_candidate(self, leaf_x: LeafKey, leaf_y: LeafKey) -> None:
        self.queue.discard(self.interner.canonical_pair(leaf_x, leaf_y))
        self.unlink(leaf_x, leaf_y)
        self.unlink(leaf_y, leaf_x)

    def drop_leafset(self, leaf: LeafKey) -> None:
        """Remove every candidate involving ``leaf`` (Alg. 4, step 1)."""
        for rel in self.rdict.pop(leaf, set()):
            self.queue.discard(self.interner.canonical_pair(leaf, rel))
            self.unlink(rel, leaf)

    def related(self, leaf: LeafKey) -> Set[LeafKey]:
        return set(self.rdict.get(leaf, ()))

    def unlink(self, leaf: LeafKey, rel: LeafKey) -> None:
        bucket = self.rdict.get(leaf)
        if bucket is not None:
            bucket.discard(rel)
            if not bucket:
                del self.rdict[leaf]


def run_partial(
    db: InvertedDatabase,
    standard_table: StandardCodeTable,
    core_table: CoreCodeTable,
    include_model_cost: bool = True,
    max_iterations: Optional[int] = None,
    update_scope: str = "lazy",
    initial_dl_bits: Optional[float] = None,
    pair_source: str = "overlap",
    recorder=None,
) -> RunTrace:
    """Run CSPM-Partial to convergence, mutating ``db`` in place.

    ``recorder`` (duck-typed, see
    :class:`repro.core.search_shard.ComponentRecorder`) captures every
    queue operation and queue-head decision the run makes, which is
    what lets the component-sharded search replay a worker's run
    through the stitched global queue bit-exactly.  ``None`` (the
    default) records nothing and adds no overhead beyond the ``is
    None`` checks.
    """
    if update_scope not in UPDATE_SCOPES:
        raise MiningError(
            f"update_scope must be one of {UPDATE_SCOPES}, got {update_scope!r}"
        )
    trace = RunTrace(algorithm=f"cspm-partial/{update_scope}")
    if initial_dl_bits is None:
        initial_dl_bits = description_length(db, standard_table, core_table).total_bits
    dl = initial_dl_bits
    trace.initial_dl_bits = dl
    engine = GainEngine(db, standard_table, core_table)
    interner = db.interner
    lazy = update_scope == "lazy"

    def net_gain(leaf_x: LeafKey, leaf_y: LeafKey):
        breakdown = engine.gain(leaf_x, leaf_y)
        return breakdown, breakdown.net(include_model_cost)

    state = _PartialState(interner)
    if recorder is not None:
        state.queue = recorder.make_queue(interner)
    initial_gains = 0
    seed_epoch = db.merge_epoch
    for leaf_x, leaf_y in generate_pairs(db, pair_source):
        breakdown, gain = net_gain(leaf_x, leaf_y)
        initial_gains += 1
        if gain > GAIN_EPS:
            state.add_candidate(
                leaf_x,
                leaf_y,
                gain,
                payload=(breakdown, seed_epoch) if lazy else None,
            )
    trace.initial_candidate_gains = initial_gains
    obs = current()

    iteration = 0
    pending_gains = 0
    while max_iterations is None or iteration < max_iterations:
        popped = state.queue.pop_entry()
        if popped is None:
            break
        (leaf_x, leaf_y), stored_gain, payload = popped
        clean = False
        if (
            lazy
            and payload is not None
            and not engine.stale_since(leaf_x, leaf_y, payload[1])
        ):
            # Clean head: no common coreset was merged since this gain
            # was computed, so the stored breakdown is *exact* — and
            # every other entry is at most its stored (upper-bound)
            # gain, so the head is the true maximum.  Merge directly.
            breakdown = payload[0]
            gain = stored_gain
            clean = True
            trace.refreshes_skipped += 1
        else:
            breakdown, gain = net_gain(leaf_x, leaf_y)
            pending_gains += 1
            if lazy:
                trace.dirty_revalidations += 1
            if gain <= GAIN_EPS:
                if recorder is not None:
                    recorder.on_drop(leaf_x, leaf_y)
                state.drop_candidate(leaf_x, leaf_y)
                continue
            # Revalidation: merge the popped pair only while it is still the
            # exact maximum under the queue's (gain, pair-key) order.  Stored
            # gains are upper bounds (merges elsewhere only shrink ``fe``),
            # so if the fresh gain fell below the next stored gain — or ties
            # it with a larger pair key — push the fresh value back and let
            # the true maximum surface.  The strict comparison (no epsilon
            # slack) is what keeps the exhaustive and lazy scopes' merge
            # sequence identical to CSPM-Basic's even when candidates tie.
            next_best = state.queue.peek()
            if next_best is not None:
                next_pair, next_gain = next_best
                pair = interner.canonical_pair(leaf_x, leaf_y)
                if gain < next_gain or (
                    gain == next_gain
                    and interner.pair_key(pair) > interner.pair_key(next_pair)
                ):
                    if recorder is not None:
                        recorder.on_push(leaf_x, leaf_y)
                    state.queue.set(
                        pair,
                        gain,
                        (breakdown, db.merge_epoch) if lazy else None,
                    )
                    continue

        if recorder is not None:
            recorder.on_merge(leaf_x, leaf_y, gain, breakdown, clean)
        num_leafsets = db.num_leafsets
        possible = num_leafsets * (num_leafsets - 1) // 2
        related_x = state.related(leaf_x)
        related_y = state.related(leaf_y)
        outcome = db.merge(leaf_x, leaf_y)
        dl -= breakdown.total
        trace.record_merge_components(breakdown)
        iteration += 1
        state.unlink(leaf_x, leaf_y)
        state.unlink(leaf_y, leaf_x)

        gains_computed = pending_gains
        pending_gains = 0
        for leaf in outcome.removed_leafsets:
            state.drop_leafset(leaf)
        if update_scope == "related":
            refresh_gains = _update_related(
                db, state, outcome, related_x, related_y, net_gain
            )
        elif update_scope == "exhaustive":
            refresh_gains = _update_exhaustive(db, state, outcome, net_gain)
        else:
            refresh_gains = _update_lazy(db, state, outcome, net_gain, trace)
        gains_computed += refresh_gains
        if recorder is not None:
            recorder.on_refresh_gains(refresh_gains)

        trace.iterations.append(
            IterationTrace(
                iteration=iteration,
                gains_computed=gains_computed,
                possible_pairs=possible,
                num_leafsets=num_leafsets,
                merged_pair=merged_pair_record(leaf_x, leaf_y),
                gain=gain,
                total_dl_bits=dl,
            )
        )
        obs.progress.heartbeat(
            "search", merges=iteration, queue=len(state.queue)
        )
    trace.final_dl_bits = dl
    trace.peak_queue_size = state.queue.peak_size
    if obs.metrics.enabled:
        for stat, size in engine.cache_stats().items():
            obs.metrics.gauge("gain.cache_size").set_max(size, cache=stat)
    return trace


def _update_related(
    db: InvertedDatabase,
    state: _PartialState,
    outcome: MergeOutcome,
    related_x: Set[LeafKey],
    related_y: Set[LeafKey],
    net_gain,
) -> int:
    """Algorithm 4 literally: rdict-scoped updates.  Returns #gains."""
    gains = 0
    interner = state.interner
    new_leaf = outcome.new_leafset
    # (2) Add pairs with the new leafset, scoped to rdict[x] & rdict[y].
    if db.has_leafset(new_leaf):
        for rel in interner.order(related_x & related_y):
            if rel == new_leaf or not db.has_leafset(rel):
                continue
            _breakdown, gain = net_gain(rel, new_leaf)
            gains += 1
            if gain > GAIN_EPS:
                state.add_candidate(rel, new_leaf, gain)
    # (3) Update influenced pairs of the partly merged survivors.
    refreshed = set()
    for leaf in interner.order(outcome.partly_merged_leafsets):
        for rel in interner.order(state.related(leaf)):
            pair = interner.canonical_pair(leaf, rel)
            if pair in refreshed:
                continue
            refreshed.add(pair)
            _breakdown, gain = net_gain(leaf, rel)
            gains += 1
            if gain > GAIN_EPS:
                state.queue.set(pair, gain)
            else:
                state.drop_candidate(leaf, rel)
    return gains


def _refresh_pool(db: InvertedDatabase, outcome: MergeOutcome):
    """The merge's focus leafsets and touched-coreset neighbourhood."""
    focus = set(outcome.partly_merged_leafsets)
    if db.has_leafset(outcome.new_leafset):
        focus.add(outcome.new_leafset)
    rel_pool: Set[LeafKey] = set()
    for core in outcome.touched_coresets:
        rel_pool |= db.leafsets_of(core)
    return focus, rel_pool


def _subset_union_pairs(
    interner: LeafsetInterner, rel_pool: Set[LeafKey], focus, new_leaf: LeafKey
):
    """Pairs of strict subsets of ``new_leaf`` whose union equals it.

    The union's code-table entry now exists, so their model cost
    dropped and their gain may have turned positive.  The pool is
    bounded to the touched-coreset neighbourhood: the model term only
    changes under a common coreset where the ``new_leaf`` row appeared
    — a touched coreset — so both endpoints of an affected pair must
    live under one.
    """
    subsets = interner.order(
        leaf for leaf in rel_pool if leaf < new_leaf and leaf not in focus
    )
    for i, leaf in enumerate(subsets):
        for rel in subsets[i + 1 :]:
            if (leaf | rel) == new_leaf:
                yield leaf, rel


def _update_exhaustive(
    db: InvertedDatabase,
    state: _PartialState,
    outcome: MergeOutcome,
    net_gain,
) -> int:
    """Re-evaluate every pair the merge could have improved.

    A pair's gain changed only if the merge touched a coreset common
    to the pair: the merged rows shrank (pairs involving the two
    survivors), a new row appeared (pairs involving the new leafset),
    or only ``fe`` shrank — which can only *lower* a gain and is
    handled by lazy revalidation on pop.  So it suffices to re-evaluate
    the survivors and the new leafset against the leafsets present
    under the touched coresets, plus pairs whose union equals the new
    leafset (their model cost just dropped).  Returns the number of
    gain computations.
    """
    gains = 0
    interner = state.interner
    new_leaf = outcome.new_leafset
    focus, rel_pool = _refresh_pool(db, outcome)
    rel_ordered = interner.order(rel_pool)
    refreshed = set()
    for leaf in interner.order(focus):
        if not db.has_leafset(leaf):
            continue
        for rel in rel_ordered:
            if rel == leaf or not db.has_leafset(rel):
                continue
            pair = interner.canonical_pair(leaf, rel)
            if pair in refreshed:
                continue
            refreshed.add(pair)
            _breakdown, gain = net_gain(leaf, rel)
            gains += 1
            if gain > GAIN_EPS:
                state.add_candidate(leaf, rel, gain)
            elif pair in state.queue:
                state.drop_candidate(leaf, rel)
    if db.has_leafset(new_leaf):
        for leaf, rel in _subset_union_pairs(interner, rel_pool, focus, new_leaf):
            pair = interner.canonical_pair(leaf, rel)
            if pair in refreshed:
                continue
            refreshed.add(pair)
            _breakdown, gain = net_gain(leaf, rel)
            gains += 1
            if gain > GAIN_EPS:
                state.add_candidate(leaf, rel, gain)
            else:
                state.drop_candidate(leaf, rel)
    return gains


def _update_lazy(
    db: InvertedDatabase,
    state: _PartialState,
    outcome: MergeOutcome,
    net_gain,
    trace: RunTrace,
) -> int:
    """The bound-driven refresh: recompute only pairs that can rise.

    Walks the same neighbourhood as :func:`_update_exhaustive` but
    skips the pairs whose gain provably did not change for the better.
    The union-level tests are answered in bulk (one
    :meth:`~repro.core.masks.base.MaskBackend.overlaps_many` call per
    focus leafset over all its untested partners), survivors face a
    per-coreset confirmation, and queue insertions are applied as one
    batch per focus leafset:

    * current union masks disjoint — every per-coreset intersection is
      empty, the gain is exactly zero; a queued entry is dropped.
    * the related leafset's positions are disjoint from the rows the
      merge touched (:attr:`MergeOutcome.touched_row_unions`) — every
      gain term that existed before the merge still has the same
      per-coreset state, so the gain is unchanged; a queued entry keeps
      its stored value (still a sound upper bound from its own
      validation epoch), an absent pair stays provably non-positive.
    * the per-coreset refinement of the same test
      (:attr:`MergeOutcome.touched_core_rows`): every gain term is
      gated on a non-empty *same-coreset* intersection, so a pair whose
      partner rows are disjoint from the focus leafset's role rows at
      every touched coreset is unchanged even when the whole-union
      masks collide across coresets (each vertex keeps one global bit,
      so the union test conflates coresets).

    Pairs not involving a merge participant are never refreshed at all:
    their gain can only fall (only ``fe`` shrank), so their stored
    gains remain upper bounds and the queue-head revalidation in
    :func:`run_partial` settles them if they ever surface.  Returns the
    number of gain computations; every skip — union-level or
    per-coreset — is counted on ``trace``.
    """
    gains = 0
    interner = state.interner
    new_leaf = outcome.new_leafset
    epoch = db.merge_epoch
    union_of = db.leaf_union_mask
    backend = db.mask_backend
    overlaps = backend.union_overlaps
    overlaps_many = backend.overlaps_many
    row_of = db.row_mask
    touched_unions = outcome.touched_row_unions
    touched_rows = outcome.touched_core_rows
    focus, rel_pool = _refresh_pool(db, outcome)
    rel_ordered = interner.order(rel_pool)
    queue = state.queue
    refreshed = set()
    for leaf in interner.order(focus):
        if not db.has_leafset(leaf):
            continue
        touched_mask = touched_unions.get(leaf)
        role_rows = touched_rows.get(leaf, ())
        leaf_union = union_of(leaf)
        # Gather this focus leafset's untested partners, then answer
        # both union-level skip tests for the whole batch at once.
        rels: List[LeafKey] = []
        pairs: List[Pair] = []
        for rel in rel_ordered:
            if rel == leaf or not db.has_leafset(rel):
                continue
            pair = interner.canonical_pair(leaf, rel)
            if pair in refreshed:
                continue
            refreshed.add(pair)
            rels.append(rel)
            pairs.append(pair)
        if not rels:
            continue
        rel_unions = [union_of(rel) for rel in rels]
        alive = overlaps_many(leaf_union, rel_unions)
        touched = (
            overlaps_many(touched_mask, rel_unions)
            if touched_mask is not None
            else None
        )
        additions: List[Tuple[LeafKey, LeafKey, float, object]] = []
        for index, rel in enumerate(rels):
            if not alive[index]:
                if pairs[index] in queue:
                    state.drop_candidate(leaf, rel)
                trace.refreshes_skipped += 1
                continue
            if touched is None or not touched[index]:
                trace.refreshes_skipped += 1
                continue
            for core, role_mask in role_rows:
                rel_row = row_of(core, rel)
                if rel_row is not None and overlaps(role_mask, rel_row):
                    break
            else:
                trace.refreshes_skipped += 1
                continue
            breakdown, gain = net_gain(leaf, rel)
            gains += 1
            if gain > GAIN_EPS:
                additions.append((leaf, rel, gain, (breakdown, epoch)))
            elif pairs[index] in queue:
                state.drop_candidate(leaf, rel)
        if additions:
            state.add_candidates(additions)
    if db.has_leafset(new_leaf):
        for leaf, rel in _subset_union_pairs(interner, rel_pool, focus, new_leaf):
            pair = interner.canonical_pair(leaf, rel)
            if pair in refreshed:
                continue
            refreshed.add(pair)
            if not overlaps(union_of(leaf), union_of(rel)):
                if pair in queue:
                    state.drop_candidate(leaf, rel)
                trace.refreshes_skipped += 1
                continue
            breakdown, gain = net_gain(leaf, rel)
            gains += 1
            if gain > GAIN_EPS:
                state.add_candidate(leaf, rel, gain, payload=(breakdown, epoch))
            elif pair in queue:
                state.drop_candidate(leaf, rel)
    return gains
