"""CSPM-Partial: the partial-update optimisation (Algorithm 3 + 4).

Rather than re-enumerating every leafset pair after each merge,
CSPM-Partial maintains a priority queue of positive-gain candidates
and, after a merge, refreshes only the pairs the merge could have
affected.  Seeding is overlap-driven by default
(:func:`repro.core.pairgen.overlap_pairs`): only pairs sharing a
coreset with overlapping positions are evaluated, since no other pair
can have positive gain; ``pair_source="full"`` restores the seed's
quadratic scan (both enumerate in interned-id order, so the resulting
queue — and hence the merge sequence — is identical).

Two update scopes are provided:

``related`` (the paper's Algorithm 4, literally)
    ``rdict`` maps each leafset to the leafsets it currently forms a
    candidate with.  After merging ``p = (x, y)``: totally merged
    leafsets are dropped, the new leafset is evaluated only against
    ``rdict[x] & rdict[y]``, and pairs involving the partly merged
    survivors are re-evaluated.  This is the cheapest variant but can
    miss pairs whose gain *rises* after a merge (a pair involving a
    survivor that was not a candidate before), so its final model may
    differ slightly from CSPM-Basic's.

``exhaustive`` (default used by the facade)
    After a merge, the survivors and the new leafset are re-evaluated
    against *all* leafsets sharing a coreset with them (only such pairs
    can ever gain — the Section V observation), plus the pairs whose
    union equals the new leafset (their model cost just dropped).  This
    provably keeps the queue a superset of all positive-gain pairs, so
    the search selects exactly the same merges as CSPM-Basic while
    still touching only an affected neighbourhood per iteration.

Both scopes revalidate lazily on pop: merges elsewhere can only lower
a stored gain (the coreset frequency ``fe`` shrinks), so the fresh gain
is recomputed and the pair is either merged, pushed back, or dropped.

All canonical ordering (pair orientation, queue tie-breaks, refresh
iteration order) runs on the database's
:class:`~repro.core.candidates.LeafsetInterner` — integer comparisons
instead of the seed's repr-string keys.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional, Set

from repro.core.candidates import CandidateQueue, LeafsetInterner
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.gain import GainEngine
from repro.core.instrumentation import IterationTrace, RunTrace, merged_pair_record
from repro.core.inverted_db import InvertedDatabase, MergeOutcome
from repro.core.mdl import description_length
from repro.core.pairgen import generate_pairs
from repro.errors import MiningError

LeafKey = FrozenSet[Hashable]
GAIN_EPS = 1e-9
UPDATE_SCOPES = ("exhaustive", "related")


class _PartialState:
    """Queue + rdict bookkeeping shared by the update steps."""

    def __init__(self, interner: LeafsetInterner) -> None:
        self.interner = interner
        self.queue = CandidateQueue(interner)
        self.rdict: Dict[LeafKey, Set[LeafKey]] = {}

    def add_candidate(self, leaf_x: LeafKey, leaf_y: LeafKey, gain: float) -> None:
        self.queue.set(self.interner.canonical_pair(leaf_x, leaf_y), gain)
        self.rdict.setdefault(leaf_x, set()).add(leaf_y)
        self.rdict.setdefault(leaf_y, set()).add(leaf_x)

    def drop_candidate(self, leaf_x: LeafKey, leaf_y: LeafKey) -> None:
        self.queue.discard(self.interner.canonical_pair(leaf_x, leaf_y))
        self.unlink(leaf_x, leaf_y)
        self.unlink(leaf_y, leaf_x)

    def drop_leafset(self, leaf: LeafKey) -> None:
        """Remove every candidate involving ``leaf`` (Alg. 4, step 1)."""
        for rel in self.rdict.pop(leaf, set()):
            self.queue.discard(self.interner.canonical_pair(leaf, rel))
            self.unlink(rel, leaf)

    def related(self, leaf: LeafKey) -> Set[LeafKey]:
        return set(self.rdict.get(leaf, ()))

    def unlink(self, leaf: LeafKey, rel: LeafKey) -> None:
        bucket = self.rdict.get(leaf)
        if bucket is not None:
            bucket.discard(rel)
            if not bucket:
                del self.rdict[leaf]


def run_partial(
    db: InvertedDatabase,
    standard_table: StandardCodeTable,
    core_table: CoreCodeTable,
    include_model_cost: bool = True,
    max_iterations: Optional[int] = None,
    update_scope: str = "exhaustive",
    initial_dl_bits: Optional[float] = None,
    pair_source: str = "overlap",
) -> RunTrace:
    """Run CSPM-Partial to convergence, mutating ``db`` in place."""
    if update_scope not in UPDATE_SCOPES:
        raise MiningError(
            f"update_scope must be one of {UPDATE_SCOPES}, got {update_scope!r}"
        )
    trace = RunTrace(algorithm=f"cspm-partial/{update_scope}")
    if initial_dl_bits is None:
        initial_dl_bits = description_length(db, standard_table, core_table).total_bits
    dl = initial_dl_bits
    trace.initial_dl_bits = dl
    engine = GainEngine(db, standard_table, core_table)
    interner = db.interner

    def net_gain(leaf_x: LeafKey, leaf_y: LeafKey):
        breakdown = engine.gain(leaf_x, leaf_y)
        return breakdown, breakdown.net(include_model_cost)

    state = _PartialState(interner)
    initial_gains = 0
    for leaf_x, leaf_y in generate_pairs(db, pair_source):
        _breakdown, gain = net_gain(leaf_x, leaf_y)
        initial_gains += 1
        if gain > GAIN_EPS:
            state.add_candidate(leaf_x, leaf_y, gain)
    trace.initial_candidate_gains = initial_gains

    iteration = 0
    pending_gains = 0
    while max_iterations is None or iteration < max_iterations:
        popped = state.queue.pop()
        if popped is None:
            break
        (leaf_x, leaf_y), _stored_gain = popped
        breakdown, gain = net_gain(leaf_x, leaf_y)
        pending_gains += 1
        if gain <= GAIN_EPS:
            state.drop_candidate(leaf_x, leaf_y)
            continue
        # Revalidation: merge the popped pair only while it is still the
        # exact maximum under the queue's (gain, pair-key) order.  Stored
        # gains are upper bounds (merges elsewhere only shrink ``fe``),
        # so if the fresh gain fell below the next stored gain — or ties
        # it with a larger pair key — push the fresh value back and let
        # the true maximum surface.  The strict comparison (no epsilon
        # slack) is what keeps the exhaustive scope's merge sequence
        # identical to CSPM-Basic's even when two candidates tie.
        next_best = state.queue.peek()
        if next_best is not None:
            next_pair, next_gain = next_best
            pair = interner.canonical_pair(leaf_x, leaf_y)
            if gain < next_gain or (
                gain == next_gain
                and interner.pair_key(pair) > interner.pair_key(next_pair)
            ):
                state.queue.set(pair, gain)
                continue

        num_leafsets = len(db.leafsets())
        possible = num_leafsets * (num_leafsets - 1) // 2
        related_x = state.related(leaf_x)
        related_y = state.related(leaf_y)
        outcome = db.merge(leaf_x, leaf_y)
        dl -= breakdown.total
        iteration += 1
        state.unlink(leaf_x, leaf_y)
        state.unlink(leaf_y, leaf_x)

        gains_computed = pending_gains
        pending_gains = 0
        for leaf in outcome.removed_leafsets:
            state.drop_leafset(leaf)
        if update_scope == "related":
            gains_computed += _update_related(
                db, state, outcome, related_x, related_y, net_gain
            )
        else:
            gains_computed += _update_exhaustive(db, state, outcome, net_gain)

        trace.iterations.append(
            IterationTrace(
                iteration=iteration,
                gains_computed=gains_computed,
                possible_pairs=possible,
                num_leafsets=num_leafsets,
                merged_pair=merged_pair_record(leaf_x, leaf_y),
                gain=gain,
                total_dl_bits=dl,
            )
        )
    trace.final_dl_bits = dl
    trace.peak_queue_size = state.queue.peak_size
    return trace


def _update_related(
    db: InvertedDatabase,
    state: _PartialState,
    outcome: MergeOutcome,
    related_x: Set[LeafKey],
    related_y: Set[LeafKey],
    net_gain,
) -> int:
    """Algorithm 4 literally: rdict-scoped updates.  Returns #gains."""
    gains = 0
    interner = state.interner
    new_leaf = outcome.new_leafset
    # (2) Add pairs with the new leafset, scoped to rdict[x] & rdict[y].
    if db.has_leafset(new_leaf):
        for rel in interner.order(related_x & related_y):
            if rel == new_leaf or not db.has_leafset(rel):
                continue
            _breakdown, gain = net_gain(rel, new_leaf)
            gains += 1
            if gain > GAIN_EPS:
                state.add_candidate(rel, new_leaf, gain)
    # (3) Update influenced pairs of the partly merged survivors.
    refreshed = set()
    for leaf in interner.order(outcome.partly_merged_leafsets):
        for rel in interner.order(state.related(leaf)):
            pair = interner.canonical_pair(leaf, rel)
            if pair in refreshed:
                continue
            refreshed.add(pair)
            _breakdown, gain = net_gain(leaf, rel)
            gains += 1
            if gain > GAIN_EPS:
                state.queue.set(pair, gain)
            else:
                state.drop_candidate(leaf, rel)
    return gains


def _update_exhaustive(
    db: InvertedDatabase,
    state: _PartialState,
    outcome: MergeOutcome,
    net_gain,
) -> int:
    """Re-evaluate every pair the merge could have improved.

    A pair's gain changed only if the merge touched a coreset common
    to the pair: the merged rows shrank (pairs involving the two
    survivors), a new row appeared (pairs involving the new leafset),
    or only ``fe`` shrank — which can only *lower* a gain and is
    handled by lazy revalidation on pop.  So it suffices to re-evaluate
    the survivors and the new leafset against the leafsets present
    under the touched coresets, plus pairs whose union equals the new
    leafset (their model cost just dropped).  Returns the number of
    gain computations.
    """
    gains = 0
    interner = state.interner
    new_leaf = outcome.new_leafset
    focus = set(outcome.partly_merged_leafsets)
    if db.has_leafset(new_leaf):
        focus.add(new_leaf)
    rel_pool: set = set()
    for core in outcome.touched_coresets:
        rel_pool |= db.leafsets_of(core)
    rel_ordered = interner.order(rel_pool)
    refreshed = set()
    for leaf in interner.order(focus):
        if not db.has_leafset(leaf):
            continue
        for rel in rel_ordered:
            if rel == leaf or not db.has_leafset(rel):
                continue
            pair = interner.canonical_pair(leaf, rel)
            if pair in refreshed:
                continue
            refreshed.add(pair)
            _breakdown, gain = net_gain(leaf, rel)
            gains += 1
            if gain > GAIN_EPS:
                state.add_candidate(leaf, rel, gain)
            elif pair in state.queue:
                state.drop_candidate(leaf, rel)
    # Pairs of strict subsets whose union is exactly the new leafset:
    # the union's code-table entry now exists, so their model cost
    # dropped and their gain may have turned positive.
    if db.has_leafset(new_leaf):
        subsets = [
            leaf
            for leaf in db.leafsets()
            if leaf < new_leaf and leaf not in focus
        ]
        subsets = interner.order(subsets)
        for i, leaf in enumerate(subsets):
            for rel in subsets[i + 1 :]:
                if (leaf | rel) != new_leaf:
                    continue
                pair = interner.canonical_pair(leaf, rel)
                if pair in refreshed:
                    continue
                refreshed.add(pair)
                _breakdown, gain = net_gain(leaf, rel)
                gains += 1
                if gain > GAIN_EPS:
                    state.add_candidate(leaf, rel, gain)
                else:
                    state.drop_candidate(leaf, rel)
    return gains
