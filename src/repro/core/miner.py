"""The CSPM facade: a parameter-free miner of attribute-stars.

``CSPM().fit(graph)`` runs the full pipeline of Algorithm 1/3:

1. encode coresets (singleton values by default; optionally multi-value
   coresets discovered by SLIM or Krimp on the vertex-attribute
   transactions — Section IV-F, step 1);
2. build the inverted database (step 2);
3. greedily merge leafsets by MDL gain (steps 3-4), with either the
   basic or the partial-update search;
4. return the surviving a-stars ranked by ascending code length.

CSPM is parameter-free in the paper's sense: the knobs below select
*variants* (search strategy, coreset encoder, ablations), not data-
dependent thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterator, List, Optional, Set

from repro.core.astar import AStar
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_basic import run_basic
from repro.core.cspm_partial import run_partial
from repro.core.instrumentation import RunTrace
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import (
    DescriptionLength,
    description_length,
    row_code_length,
)
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph

Value = Hashable
Vertex = Hashable

_METHODS = ("partial", "basic")
_ENCODERS = ("singleton", "slim", "krimp")


@dataclass
class CSPMResult:
    """Output of a CSPM run.

    ``astars`` is ordered by ascending code length — the paper's output
    ordering, where shorter codes mean more informative patterns.
    """

    astars: List[AStar]
    trace: RunTrace
    initial_dl: DescriptionLength
    final_dl: DescriptionLength
    standard_table: StandardCodeTable
    core_table: CoreCodeTable
    inverted_db: InvertedDatabase = field(repr=False)

    def __len__(self) -> int:
        return len(self.astars)

    def __iter__(self) -> Iterator[AStar]:
        return iter(self.astars)

    def top(self, k: int) -> List[AStar]:
        """The ``k`` best-ranked (shortest-code) a-stars."""
        return self.astars[:k]

    def filter(
        self,
        min_leafset_size: int = 1,
        min_frequency: int = 1,
        core_value: Optional[Value] = None,
    ) -> List[AStar]:
        """A filtered view, preserving rank order."""
        selected = []
        for star in self.astars:
            if len(star.leafset) < min_leafset_size:
                continue
            if star.frequency < min_frequency:
                continue
            if core_value is not None and core_value not in star.coreset:
                continue
            selected.append(star)
        return selected

    @property
    def compression_ratio(self) -> float:
        """Final over initial total description length."""
        initial = self.initial_dl.total_bits
        if initial <= 0:
            return 1.0
        return self.final_dl.total_bits / initial

    def summary(self) -> str:
        """A short human-readable report of the run."""
        lines = [
            f"CSPM ({self.trace.algorithm}): {len(self.astars)} a-stars, "
            f"{self.trace.num_iterations} merges",
            f"  DL: {self.initial_dl.total_bits:.1f} -> "
            f"{self.final_dl.total_bits:.1f} bits "
            f"(ratio {self.compression_ratio:.3f})",
            f"  gain computations: {self.trace.total_gain_computations}",
        ]
        return "\n".join(lines)


class CSPM:
    """Compressing Star Pattern Miner (paper, Algorithm 1 / 3).

    Parameters
    ----------
    method:
        ``"partial"`` (default, Algorithm 3-4) or ``"basic"``
        (Algorithm 1-2).
    coreset_encoder:
        ``"singleton"`` (default — CTc equals the standard code table,
        Section IV-C), ``"slim"`` or ``"krimp"`` for multi-value
        coresets mined on the vertex-attribute transactions
        (Section IV-F, step 1).
    include_model_cost:
        Whether candidate gains subtract the code-table cost of the new
        leafset (Section IV-E).  ``True`` by default; ablated in the
        benchmarks.
    max_iterations:
        Optional safety cap on the number of merges (``None`` = run to
        convergence, as the paper does).
    partial_update_scope:
        For ``method="partial"``: ``"exhaustive"`` (default; guarantees
        the same merges as CSPM-Basic while updating only an affected
        neighbourhood) or ``"related"`` (the paper's Algorithm 4
        rdict heuristic, cheapest but may miss late candidates).
    """

    def __init__(
        self,
        method: str = "partial",
        coreset_encoder: str = "singleton",
        include_model_cost: bool = True,
        max_iterations: Optional[int] = None,
        partial_update_scope: str = "exhaustive",
    ) -> None:
        if method not in _METHODS:
            raise MiningError(f"method must be one of {_METHODS}, got {method!r}")
        if coreset_encoder not in _ENCODERS:
            raise MiningError(
                f"coreset_encoder must be one of {_ENCODERS}, got {coreset_encoder!r}"
            )
        self.method = method
        self.coreset_encoder = coreset_encoder
        self.include_model_cost = include_model_cost
        self.max_iterations = max_iterations
        self.partial_update_scope = partial_update_scope

    # ------------------------------------------------------------------

    def fit(self, graph: AttributedGraph) -> CSPMResult:
        """Mine a-stars from ``graph`` and return the ranked result."""
        if graph.num_vertices == 0:
            raise MiningError("cannot mine an empty graph")
        if not graph.attribute_values():
            raise MiningError("graph has no attribute values")

        standard_table = StandardCodeTable.from_graph(graph)
        coreset_positions, core_table = self._encode_coresets(graph)
        db = InvertedDatabase.from_graph(graph, coreset_positions)
        initial_dl = description_length(db, standard_table, core_table)

        if self.method == "basic":
            trace = run_basic(
                db,
                standard_table,
                core_table,
                include_model_cost=self.include_model_cost,
                max_iterations=self.max_iterations,
            )
        else:
            trace = run_partial(
                db,
                standard_table,
                core_table,
                include_model_cost=self.include_model_cost,
                max_iterations=self.max_iterations,
                update_scope=self.partial_update_scope,
            )

        final_dl = description_length(db, standard_table, core_table)
        astars = self._collect_astars(db, core_table)
        return CSPMResult(
            astars=astars,
            trace=trace,
            initial_dl=initial_dl,
            final_dl=final_dl,
            standard_table=standard_table,
            core_table=core_table,
            inverted_db=db,
        )

    # ------------------------------------------------------------------

    def _encode_coresets(self, graph: AttributedGraph):
        """Step 1 of Algorithm 1: coreset positions + their code table."""
        if self.coreset_encoder == "singleton":
            positions = {
                frozenset([value]): vertices
                for value, vertices in graph.value_positions().items()
            }
            return positions, CoreCodeTable.singletons_from_graph(graph)
        # Multi-value coresets: mine itemsets over vertex attribute sets
        # and cover each vertex's attribute set with them.
        from repro.itemsets import cover_database, mine_code_table

        vertices = [v for v in graph.vertices() if graph.attributes_of(v)]
        transactions = [graph.attributes_of(v) for v in vertices]
        code_table = mine_code_table(transactions, algorithm=self.coreset_encoder)
        covers = cover_database(code_table, transactions)
        positions: Dict[FrozenSet[Value], Set[Vertex]] = {}
        usage: Dict[FrozenSet[Value], int] = {}
        for vertex, cover in zip(vertices, covers):
            for itemset in cover:
                key = frozenset(itemset)
                positions.setdefault(key, set()).add(vertex)
                usage[key] = usage.get(key, 0) + 1
        return positions, CoreCodeTable(usage)

    @staticmethod
    def _collect_astars(
        db: InvertedDatabase, core_table: CoreCodeTable
    ) -> List[AStar]:
        astars = []
        for core, leaf, frequency in db.row_items():
            code = core_table.code_length(core) + row_code_length(db, core, leaf)
            astars.append(
                AStar(
                    coreset=core,
                    leafset=leaf,
                    frequency=frequency,
                    coreset_frequency=db.coreset_frequency(core),
                    code_length=code,
                )
            )
        astars.sort(key=AStar.sort_key)
        return astars
