"""The CSPM facade: a parameter-free miner of attribute-stars.

``CSPM().fit(graph)`` runs the default
:class:`~repro.pipeline.MiningPipeline` of Algorithm 1/3:

1. encode coresets (singleton values by default; optionally multi-value
   coresets discovered by SLIM or Krimp on the vertex-attribute
   transactions — Section IV-F, step 1);
2. build the inverted database (step 2);
3. greedily merge leafsets by MDL gain (steps 3-4), with either the
   basic or the partial-update search — the latter defaulting to the
   lazy bound-driven refresh scope (``update_scope="lazy"``), which
   mines the exact same model as CSPM-Basic while revalidating stored
   gains only when a dirty candidate reaches the queue head;
4. return the surviving a-stars ranked by ascending code length.

The facade is configuration-driven: ``CSPM(config=CSPMConfig(...))``
is the canonical spelling, while the legacy keyword form
``CSPM(method="basic", coreset_encoder="slim")`` keeps working as a
thin shim that builds the config for you.  Both run the exact same
pipeline; callers that need custom stages use
:class:`~repro.pipeline.MiningPipeline` directly, and callers with many
graphs use :func:`repro.batch.fit_many`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.config import CSPMConfig
from repro.core.result import CSPMResult
from repro.errors import ConfigError
from repro.graphs.attributed_graph import AttributedGraph

__all__ = ["CSPM", "CSPMResult"]

_UNSET: Any = object()


class CSPM:
    """Compressing Star Pattern Miner (paper, Algorithm 1 / 3).

    Parameters
    ----------
    config:
        A :class:`~repro.config.CSPMConfig`.  When omitted, one is
        built from the keyword arguments below (all of which default to
        the paper's settings).  Keywords passed *alongside* ``config``
        override the corresponding config fields.
    method, coreset_encoder, include_model_cost, max_iterations, \
    partial_update_scope, top_k, min_leafset, mask_backend, \
    construction, construction_workers, search, search_workers, \
    worker_timeout, max_task_retries, on_worker_failure, fault_plan, \
    trace, metrics, progress:
        Legacy/convenience knobs; see :class:`~repro.config.CSPMConfig`
        for their meaning.
    """

    def __init__(
        self,
        method: str = _UNSET,
        coreset_encoder: str = _UNSET,
        include_model_cost: bool = _UNSET,
        max_iterations: Optional[int] = _UNSET,
        partial_update_scope: str = _UNSET,
        top_k: Optional[int] = _UNSET,
        min_leafset: int = _UNSET,
        mask_backend: str = _UNSET,
        construction: str = _UNSET,
        construction_workers: Optional[int] = _UNSET,
        search: str = _UNSET,
        search_workers: Optional[int] = _UNSET,
        worker_timeout: Optional[float] = _UNSET,
        max_task_retries: int = _UNSET,
        on_worker_failure: str = _UNSET,
        fault_plan=_UNSET,
        trace: bool = _UNSET,
        metrics: bool = _UNSET,
        progress: bool = _UNSET,
        config: Optional[CSPMConfig] = None,
    ) -> None:
        overrides = {
            name: value
            for name, value in (
                ("method", method),
                ("coreset_encoder", coreset_encoder),
                ("include_model_cost", include_model_cost),
                ("max_iterations", max_iterations),
                ("partial_update_scope", partial_update_scope),
                ("top_k", top_k),
                ("min_leafset", min_leafset),
                ("mask_backend", mask_backend),
                ("construction", construction),
                ("construction_workers", construction_workers),
                ("search", search),
                ("search_workers", search_workers),
                ("worker_timeout", worker_timeout),
                ("max_task_retries", max_task_retries),
                ("on_worker_failure", on_worker_failure),
                ("fault_plan", fault_plan),
                ("trace", trace),
                ("metrics", metrics),
                ("progress", progress),
            )
            if value is not _UNSET
        }
        if config is None:
            config = CSPMConfig(**overrides)
        else:
            if not isinstance(config, CSPMConfig):
                raise ConfigError(
                    f"config must be a CSPMConfig, got {type(config).__name__}"
                )
            if overrides:
                config = config.replace(**overrides)
        self.config = config

    # Legacy attribute access: the seed exposed the knobs as instance
    # attributes; keep them readable (the config itself is frozen).

    @property
    def method(self) -> str:
        return self.config.method

    @property
    def coreset_encoder(self) -> str:
        return self.config.coreset_encoder

    @property
    def include_model_cost(self) -> bool:
        return self.config.include_model_cost

    @property
    def max_iterations(self) -> Optional[int]:
        return self.config.max_iterations

    @property
    def partial_update_scope(self) -> str:
        return self.config.partial_update_scope

    @property
    def mask_backend(self) -> str:
        return self.config.mask_backend

    @property
    def construction(self) -> str:
        return self.config.construction

    @property
    def construction_workers(self) -> Optional[int]:
        return self.config.construction_workers

    @property
    def search(self) -> str:
        return self.config.search

    @property
    def search_workers(self) -> Optional[int]:
        return self.config.search_workers

    @property
    def worker_timeout(self) -> Optional[float]:
        return self.config.worker_timeout

    @property
    def max_task_retries(self) -> int:
        return self.config.max_task_retries

    @property
    def on_worker_failure(self) -> str:
        return self.config.on_worker_failure

    @property
    def fault_plan(self):
        return self.config.fault_plan

    @property
    def trace(self) -> bool:
        return self.config.trace

    @property
    def metrics(self) -> bool:
        return self.config.metrics

    @property
    def progress(self) -> bool:
        return self.config.progress

    def __repr__(self) -> str:
        return f"CSPM({self.config.describe()})"

    # ------------------------------------------------------------------

    def fit(self, graph: AttributedGraph) -> CSPMResult:
        """Mine a-stars from ``graph`` and return the ranked result."""
        from repro.pipeline import MiningPipeline

        return MiningPipeline.default(self.config).run(graph)
