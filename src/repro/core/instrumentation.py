"""Run instrumentation: per-iteration traces behind Fig. 5.

Both search variants record one :class:`IterationTrace` per merge.
The *gain update ratio* of an iteration is the number of gain values
computed (added or refreshed) divided by the number of possible leafset
pairs at that point — exactly the quantity plotted in the paper's
Fig. 5.

On top of the serialised trace, :class:`RunTrace` carries process-local
perf counters (``peak_queue_size``, ``refreshes_skipped``,
``dirty_revalidations``) and the incremental DL component sums read by
the perf harness (``repro.perf.suite``) and the pipeline.  They are
deliberately *not* part of the serialised schema: the ``mine --json``
golden file pins schema v1 byte-for-byte, and the counters describe the
run's machinery, not its mined output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, List, Mapping, Optional, Tuple


def merged_pair_record(
    leaf_x: FrozenSet[Hashable], leaf_y: FrozenSet[Hashable]
) -> Tuple[Tuple, Tuple]:
    """The serialisable ``merged_pair`` entry for a trace iteration.

    Each leafset becomes a sorted tuple of value reprs and the pair is
    itself repr-sorted, so the recorded orientation is stable across
    processes and independent of the in-memory (interned-id) pair
    order — exactly the representation the golden file pins.
    """
    key_x = tuple(sorted(map(repr, leaf_x)))
    key_y = tuple(sorted(map(repr, leaf_y)))
    return (key_x, key_y) if key_x <= key_y else (key_y, key_x)


@dataclass(frozen=True)
class IterationTrace:
    """What one search iteration did."""

    iteration: int
    gains_computed: int
    possible_pairs: int
    num_leafsets: int
    merged_pair: Optional[Tuple[Tuple, Tuple]]
    gain: float
    total_dl_bits: float

    @property
    def update_ratio(self) -> float:
        """Fraction of possible pair gains touched this iteration."""
        if self.possible_pairs <= 0:
            return 0.0
        return min(1.0, self.gains_computed / self.possible_pairs)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable representation (tuples become lists)."""
        merged = self.merged_pair
        return {
            "iteration": self.iteration,
            "gains_computed": self.gains_computed,
            "possible_pairs": self.possible_pairs,
            "num_leafsets": self.num_leafsets,
            "merged_pair": None if merged is None else [list(merged[0]), list(merged[1])],
            "gain": self.gain,
            "total_dl_bits": self.total_dl_bits,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "IterationTrace":
        """Rebuild an iteration trace from :meth:`to_dict` output."""
        merged = document.get("merged_pair")
        return cls(
            iteration=document["iteration"],
            gains_computed=document["gains_computed"],
            possible_pairs=document["possible_pairs"],
            num_leafsets=document["num_leafsets"],
            merged_pair=None
            if merged is None
            else (tuple(merged[0]), tuple(merged[1])),
            gain=document["gain"],
            total_dl_bits=document["total_dl_bits"],
        )


@dataclass
class RunTrace:
    """The full trace of one CSPM run."""

    algorithm: str
    initial_dl_bits: float = 0.0
    final_dl_bits: float = 0.0
    initial_candidate_gains: int = 0
    iterations: List[IterationTrace] = field(default_factory=list)
    # Process-local perf counters (not serialised; see module docstring).
    peak_queue_size: int = 0
    # Lazy-refresh counters (zero for every other update scope):
    # ``refreshes_skipped`` counts gain evaluations avoided — clean
    # queue-head pops merged from their stored breakdown plus post-merge
    # refreshes proven unnecessary by the union-mask tests;
    # ``dirty_revalidations`` counts queue-head pops that had to
    # recompute because a common coreset was merged since validation.
    refreshes_skipped: int = 0
    dirty_revalidations: int = 0
    # Incremental DL component sums (bits saved per component over all
    # accepted merges), from which the pipeline derives the final
    # description length without a full recompute pass.
    data_leaf_gain_bits: float = 0.0
    model_gain_bits: float = 0.0
    data_core_gain_bits: float = 0.0

    def record_merge_components(self, breakdown) -> None:
        """Accumulate a merged pair's :class:`~repro.core.gain.GainBreakdown`."""
        self.data_leaf_gain_bits += breakdown.data_leaf_gain
        self.model_gain_bits += breakdown.model_gain
        self.data_core_gain_bits += breakdown.data_core_gain

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_gain_computations(self) -> int:
        return self.initial_candidate_gains + sum(
            trace.gains_computed for trace in self.iterations
        )

    def update_ratios(self) -> List[float]:
        """Per-iteration update ratios — the Fig. 5 series."""
        return [trace.update_ratio for trace in self.iterations]

    @property
    def compression_ratio(self) -> float:
        """Final / initial total DL (< 1 when compression succeeded)."""
        if self.initial_dl_bits <= 0:
            return 1.0
        return self.final_dl_bits / self.initial_dl_bits

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable representation of the full trace."""
        return {
            "algorithm": self.algorithm,
            "initial_dl_bits": self.initial_dl_bits,
            "final_dl_bits": self.final_dl_bits,
            "initial_candidate_gains": self.initial_candidate_gains,
            "iterations": [trace.to_dict() for trace in self.iterations],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "RunTrace":
        """Rebuild a run trace from :meth:`to_dict` output."""
        return cls(
            algorithm=document["algorithm"],
            initial_dl_bits=document.get("initial_dl_bits", 0.0),
            final_dl_bits=document.get("final_dl_bits", 0.0),
            initial_candidate_gains=document.get("initial_candidate_gains", 0),
            iterations=[
                IterationTrace.from_dict(entry)
                for entry in document.get("iterations", [])
            ],
        )
