"""Run instrumentation: per-iteration traces behind Fig. 5.

Both search variants record one :class:`IterationTrace` per merge.
The *gain update ratio* of an iteration is the number of gain values
computed (added or refreshed) divided by the number of possible leafset
pairs at that point — exactly the quantity plotted in the paper's
Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class IterationTrace:
    """What one search iteration did."""

    iteration: int
    gains_computed: int
    possible_pairs: int
    num_leafsets: int
    merged_pair: Optional[Tuple[Tuple, Tuple]]
    gain: float
    total_dl_bits: float

    @property
    def update_ratio(self) -> float:
        """Fraction of possible pair gains touched this iteration."""
        if self.possible_pairs <= 0:
            return 0.0
        return min(1.0, self.gains_computed / self.possible_pairs)


@dataclass
class RunTrace:
    """The full trace of one CSPM run."""

    algorithm: str
    initial_dl_bits: float = 0.0
    final_dl_bits: float = 0.0
    initial_candidate_gains: int = 0
    iterations: List[IterationTrace] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_gain_computations(self) -> int:
        return self.initial_candidate_gains + sum(
            trace.gains_computed for trace in self.iterations
        )

    def update_ratios(self) -> List[float]:
        """Per-iteration update ratios — the Fig. 5 series."""
        return [trace.update_ratio for trace in self.iterations]

    @property
    def compression_ratio(self) -> float:
        """Final / initial total DL (< 1 when compression succeeded)."""
        if self.initial_dl_bits <= 0:
            return 1.0
        return self.final_dl_bits / self.initial_dl_bits
