"""Mining a-stars in dynamic attributed graphs (paper, future work 2).

The paper's conclusion lists extending CSPM to dynamic attributed
graphs.  This module provides the natural construction the alarm
application already relies on: a dynamic attributed graph is a sequence
of snapshots over a shared vertex universe; CSPM runs on their disjoint
union, and each mined a-star is then scored for *temporal stability* —
the fraction of snapshots in which it occurs.  Stable patterns describe
persistent structure; bursty ones localise to few snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.core.astar import AStar
from repro.core.miner import CSPM, CSPMResult
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph

Vertex = Hashable


def disjoint_union(snapshots: Sequence[AttributedGraph]) -> AttributedGraph:
    """One graph whose vertices are ``(snapshot_index, vertex)``."""
    if not snapshots:
        raise MiningError("need at least one snapshot")
    union = AttributedGraph()
    for index, snapshot in enumerate(snapshots):
        for vertex in snapshot.vertices():
            tagged = (index, vertex)
            union.add_vertex(tagged)
            union.set_attributes(tagged, snapshot.attributes_of(vertex))
        for u, v in snapshot.edges():
            union.add_edge((index, u), (index, v))
    return union


@dataclass(frozen=True)
class TemporalAStar:
    """An a-star with its per-snapshot occurrence profile."""

    astar: AStar
    snapshot_counts: Tuple[int, ...]

    @property
    def stability(self) -> float:
        """Fraction of snapshots where the pattern occurs at least once."""
        if not self.snapshot_counts:
            return 0.0
        present = sum(1 for count in self.snapshot_counts if count > 0)
        return present / len(self.snapshot_counts)

    @property
    def total_occurrences(self) -> int:
        return sum(self.snapshot_counts)

    def __str__(self) -> str:
        return (
            f"{self.astar}  stability={self.stability:.2f} "
            f"occurrences={self.total_occurrences}"
        )


@dataclass
class DynamicMiningResult:
    """Output of :func:`mine_dynamic`."""

    result: CSPMResult
    temporal: List[TemporalAStar]
    num_snapshots: int

    def stable(self, min_stability: float = 0.5) -> List[TemporalAStar]:
        """Patterns occurring in at least ``min_stability`` of snapshots,
        rank order preserved."""
        return [t for t in self.temporal if t.stability >= min_stability]

    def bursty(self, max_stability: float = 0.25) -> List[TemporalAStar]:
        """Patterns concentrated in few snapshots."""
        return [
            t
            for t in self.temporal
            if 0.0 < t.stability <= max_stability
        ]


def mine_dynamic(
    snapshots: Sequence[AttributedGraph],
    miner: CSPM = None,
    top_k: int = None,
) -> DynamicMiningResult:
    """Mine a dynamic attributed graph and profile pattern stability.

    Parameters
    ----------
    snapshots:
        The snapshot sequence (shared vertex ids are not required —
        each snapshot is embedded disjointly).
    miner:
        A configured :class:`CSPM` (default: ``CSPM()``).
    top_k:
        Limit the (potentially expensive) occurrence profiling to the
        ``top_k`` best-ranked patterns.
    """
    union = disjoint_union(snapshots)
    result = (miner or CSPM()).fit(union)
    selected = result.astars if top_k is None else result.top(top_k)

    # Occurrence profile: count cover positions per snapshot directly
    # from the final inverted database (positions are tagged vertices).
    position_index: Dict[AStar, Tuple[int, ...]] = {}
    counts_by_row: Dict[tuple, List[int]] = {}
    for core, leaf, positions in result.inverted_db.rows():
        counts = [0] * len(snapshots)
        for snapshot_index, _vertex in positions:
            counts[snapshot_index] += 1
        counts_by_row[(core, leaf)] = counts

    temporal = []
    for star in selected:
        counts = counts_by_row.get((star.coreset, star.leafset))
        if counts is None:
            continue
        temporal.append(
            TemporalAStar(astar=star, snapshot_counts=tuple(counts))
        )
    del position_index
    return DynamicMiningResult(
        result=result, temporal=temporal, num_snapshots=len(snapshots)
    )
