"""The inverted database representation (paper, Section IV-B).

The inverted database ``I`` is a three-column table whose rows are
``(SL, Sc, positions)``: a leafset, the coreset it is attached to, and
the set of core vertices at which this a-star is currently used in the
cover.  Initially every row is a one-leaf-value a-star; CSPM mines by
repeatedly *merging* two leafsets, which moves the common positions of
each shared coreset into a new ``SLx | SLy`` row.

Positions are stored as integer bitmasks over a fixed vertex order —
the co-occurrence counts behind Eq. 9-15 are position-set
intersections, and ``(px & py).bit_count()`` on machine words is what
keeps gain computation fast at Pokec scale.

Invariants maintained by this class (checked by :meth:`validate`):

* for a given coreset and vertex, each adjacent leaf value is covered
  by exactly one row (cover uniqueness);
* ``coreset_frequency[Sc] == sum of row frequencies of Sc`` at all
  times (the paper's note that ``sum_i l_ij == c_j``);
* position sets are never empty (empty rows are dropped).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.candidates import LeafsetInterner
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph

Value = Hashable
Vertex = Hashable
LeafKey = FrozenSet[Value]
CoreKey = FrozenSet[Value]
RowKey = Tuple[CoreKey, LeafKey]


@dataclass(frozen=True)
class CoresetMergeStats:
    """Per-coreset statistics of one merge, feeding Eq. 10-15.

    ``fe`` is the coreset frequency before the merge, ``xe``/``ye`` the
    frequencies of the two merged rows, ``xye`` their co-occurrence
    (position-set intersection size).
    """

    coreset: CoreKey
    fe: int
    xe: int
    ye: int
    xye: int

    @property
    def case(self) -> str:
        """Which of the paper's three merge cases applies (or 'none')."""
        if self.xye == 0:
            return "none"
        if self.xye == self.xe and self.xye == self.ye:
            return "total"
        if self.xye == self.xe or self.xye == self.ye:
            return "one-total"
        return "partial"


@dataclass
class MergeOutcome:
    """What a merge did: the new leafset, and per-coreset bookkeeping.

    ``touched_row_unions`` maps each participating leafset (the two
    merged leafsets and the merged result) to the union bitmask of its
    rows under the *touched* coresets — for the survivors the pre-merge
    rows, for the new leafset the post-merge rows (which contain the
    pre-merge ones).  A third leafset's gain against a participant can
    only have changed if its positions intersect this mask (every gain
    term requires a non-empty per-coreset intersection), which is what
    lets the lazy refresh skip provably-unchanged pairs with one AND.
    """

    leaf_x: LeafKey
    leaf_y: LeafKey
    new_leafset: LeafKey
    stats: List[CoresetMergeStats] = field(default_factory=list)
    removed_leafsets: Set[LeafKey] = field(default_factory=set)
    touched_row_unions: Dict[LeafKey, int] = field(default_factory=dict)

    @property
    def touched_coresets(self) -> List[CoreKey]:
        return [s.coreset for s in self.stats if s.xye > 0]

    @property
    def partly_merged_leafsets(self) -> Set[LeafKey]:
        """Leafsets of the pair that survive with reduced frequency."""
        return {self.leaf_x, self.leaf_y} - self.removed_leafsets


class InvertedDatabase:
    """Mutable inverted database over which CSPM searches.

    Rows are keyed by ``(coreset, leafset)`` frozenset pairs.  The
    class also maintains reverse indexes used by candidate generation:
    leafset -> coresets and coreset -> leafsets.
    """

    def __init__(self) -> None:
        self._rows: Dict[RowKey, int] = {}
        self._leaf_to_cores: Dict[LeafKey, Set[CoreKey]] = {}
        self._core_to_leaves: Dict[CoreKey, Set[LeafKey]] = {}
        self._core_freq: Dict[CoreKey, int] = {}
        self._vertex_ids: List[Vertex] = []
        self._vertex_bit: Dict[Vertex, int] = {}
        # Union of a leafset's row positions over all its coresets.
        # Disjoint unions imply zero gain, which lets candidate
        # generation and gain evaluation short-circuit with a single
        # AND (most pairs in community-structured graphs are disjoint).
        self._leaf_union: Dict[LeafKey, int] = {}
        # Stable integer leafset ids: initial leafsets are interned in
        # repr-sorted order at construction, merged leafsets at merge
        # time, so ordering is deterministic and hash-seed-independent
        # while comparisons stay integer ops.
        self._interner = LeafsetInterner()
        # Per-coreset sorted leafset-id lists, the adjacency candidate
        # generation enumerates.  Maintained incrementally: a merge
        # touches only its common coresets, so only those lists change.
        self._core_leaf_ids: Dict[CoreKey, List[int]] = {}
        # Row popcounts, maintained incrementally so gain evaluation
        # reads an int instead of re-counting big-int masks.
        self._row_freq: Dict[RowKey, int] = {}
        # Merge epochs.  ``_merge_index`` counts merges; a coreset's
        # epoch is the index of the last merge that changed its rows or
        # frequency, a leafset's epoch the index of the last merge it
        # participated in (as a source or as the merged result).  A
        # stored gain for a pair is stale exactly when some common
        # coreset's epoch passed the gain's validation point — the O(1)
        # per-coreset lookups behind CSPM-Partial's lazy refresh.
        self._merge_index: int = 0
        self._core_epoch: Dict[CoreKey, int] = {}
        self._leaf_epoch: Dict[LeafKey, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: AttributedGraph,
        coreset_positions: Optional[Mapping[CoreKey, Iterable[Vertex]]] = None,
    ) -> "InvertedDatabase":
        """Build the initial inverted database from an attributed graph.

        Parameters
        ----------
        graph:
            The input attributed graph.
        coreset_positions:
            Optional mapping ``coreset -> vertices`` produced by a
            multi-value coreset encoder (Section IV-F, step 1).  When
            omitted, every attribute value is its own singleton coreset
            at every vertex carrying it.

        Every initial row is ``(Sc, {leaf value})`` with positions the
        vertices where ``Sc`` holds and some neighbour carries the leaf
        value.
        """
        db = cls()
        if coreset_positions is None:
            coreset_positions = {
                frozenset([value]): vertices
                for value, vertices in graph.value_positions().items()
            }
        for coreset, vertices in sorted(
            coreset_positions.items(), key=lambda kv: _key_of(kv[0])
        ):
            core_key = frozenset(coreset)
            if not core_key:
                raise MiningError("empty coreset is not allowed")
            for vertex in sorted(vertices, key=repr):
                for leaf_value in graph.neighbor_values(vertex):
                    db._add_position(core_key, frozenset([leaf_value]), vertex)
        # Intern the initial leafsets in repr-sorted order: first-sight
        # ids then coincide with the repr ordering the seed used, so
        # seeding-time tie-breaks are unchanged and independent of the
        # (hash-seed-dependent) set iteration order above.
        db._interner.intern_all(sorted(db._leaf_to_cores, key=_key_of))
        intern = db._interner.intern
        db._core_leaf_ids = {
            core: sorted(intern(leaf) for leaf in leaves)
            for core, leaves in db._core_to_leaves.items()
        }
        return db

    def _bit_of(self, vertex: Vertex) -> int:
        bit = self._vertex_bit.get(vertex)
        if bit is None:
            bit = len(self._vertex_ids)
            self._vertex_bit[vertex] = bit
            self._vertex_ids.append(vertex)
        return bit

    def _add_position(self, core: CoreKey, leaf: LeafKey, vertex: Vertex) -> None:
        key = (core, leaf)
        mask = 1 << self._bit_of(vertex)
        current = self._rows.get(key)
        if current is None:
            self._rows[key] = mask
            self._row_freq[key] = 1
            self._leaf_to_cores.setdefault(leaf, set()).add(core)
            self._core_to_leaves.setdefault(core, set()).add(leaf)
            self._core_freq[core] = self._core_freq.get(core, 0) + 1
            self._leaf_union[leaf] = self._leaf_union.get(leaf, 0) | mask
        elif not (current & mask):
            self._rows[key] = current | mask
            self._row_freq[key] += 1
            self._core_freq[core] += 1
            self._leaf_union[leaf] |= mask

    def _to_vertices(self, bits: int) -> FrozenSet[Vertex]:
        vertices = []
        index = 0
        while bits:
            if bits & 1:
                vertices.append(self._vertex_ids[index])
            bits >>= 1
            index += 1
        return frozenset(vertices)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[Tuple[CoreKey, LeafKey, FrozenSet[Vertex]]]:
        """Iterate ``(coreset, leafset, positions)`` over all rows."""
        for (core, leaf), bits in self._rows.items():
            yield core, leaf, self._to_vertices(bits)

    def row_items(self) -> Iterator[Tuple[CoreKey, LeafKey, int]]:
        """Iterate ``(coreset, leafset, frequency)`` without decoding."""
        for key, frequency in self._row_freq.items():
            yield key[0], key[1], frequency

    @property
    def interner(self) -> LeafsetInterner:
        """The database's leafset-id registry (ordering authority)."""
        return self._interner

    @property
    def merge_epoch(self) -> int:
        """The number of merges performed so far (the current epoch)."""
        return self._merge_index

    def core_epoch(self, core: CoreKey) -> int:
        """Epoch of the last merge that touched ``core`` (0 = never)."""
        return self._core_epoch.get(core, 0)

    def leaf_epoch(self, leaf: LeafKey) -> int:
        """Epoch of the last merge ``leaf`` participated in (0 = never).

        A leafset's rows — and hence its coreset membership — change
        only in merges it participates in, so this single int validates
        any per-leafset derived data (e.g. the gain engine's cached
        common-coreset lists).
        """
        return self._leaf_epoch.get(leaf, 0)

    def leafsets(self) -> List[LeafKey]:
        """All distinct leafsets currently present."""
        return list(self._leaf_to_cores)

    def coreset_leafset_index(self) -> Mapping[CoreKey, Set[LeafKey]]:
        """The live coreset -> leafsets adjacency (do not mutate).

        Maintained incrementally across merges; this is what
        :func:`repro.core.pairgen.overlap_pairs` enumerates instead of
        the quadratic all-pairs scan.
        """
        return self._core_to_leaves

    def coreset_leaf_ids(self) -> Mapping[CoreKey, List[int]]:
        """Per-coreset sorted interned leafset ids (do not mutate).

        The id-level view of :meth:`coreset_leafset_index`, kept sorted
        incrementally so candidate generation never re-sorts adjacency
        lists.
        """
        return self._core_leaf_ids

    def coresets(self) -> List[CoreKey]:
        """All coresets with at least one row."""
        return [core for core, freq in self._core_freq.items() if freq > 0]

    def coresets_of(self, leaf: LeafKey) -> FrozenSet[CoreKey]:
        """Coresets that have a row with leafset ``leaf``."""
        return frozenset(self._leaf_to_cores.get(leaf, ()))

    def leafsets_of(self, core: CoreKey) -> FrozenSet[LeafKey]:
        """Leafsets that have a row with coreset ``core``."""
        return frozenset(self._core_to_leaves.get(core, ()))

    def related_leafsets(self, leaf: LeafKey) -> FrozenSet[LeafKey]:
        """All other leafsets sharing at least one coreset with ``leaf``.

        Only such leafsets can ever have a positive merge gain with
        ``leaf`` (the observation behind CSPM-Partial, Section V).
        """
        related: Set[LeafKey] = set()
        for core in self._leaf_to_cores.get(leaf, ()):
            related |= self._core_to_leaves[core]
        related.discard(leaf)
        return frozenset(related)

    def positions(self, core: CoreKey, leaf: LeafKey) -> FrozenSet[Vertex]:
        """Positions of row ``(core, leaf)`` (empty if absent)."""
        return self._to_vertices(self._rows.get((core, leaf), 0))

    def row_frequency(self, core: CoreKey, leaf: LeafKey) -> int:
        """``fL`` of the row (0 if the row does not exist)."""
        return self._row_freq.get((core, leaf), 0)

    def coreset_frequency(self, core: CoreKey) -> int:
        """``fc``: total row frequency of ``core`` (== sum_i l_ic)."""
        return self._core_freq.get(core, 0)

    def total_frequency(self) -> int:
        """``s``: the sum of all row frequencies (Eq. 7)."""
        return sum(self._core_freq.values())

    def has_leafset(self, leaf: LeafKey) -> bool:
        """Whether any row currently uses leafset ``leaf``."""
        return leaf in self._leaf_to_cores

    def common_coresets(self, leaf_x: LeafKey, leaf_y: LeafKey) -> List[CoreKey]:
        """Coresets having rows for both leafsets (the paper's ``C``)."""
        cores_x = self._leaf_to_cores.get(leaf_x)
        cores_y = self._leaf_to_cores.get(leaf_y)
        if not cores_x or not cores_y:
            return []
        if len(cores_x) > len(cores_y):
            cores_x, cores_y = cores_y, cores_x
        return [core for core in cores_x if core in cores_y]

    # ------------------------------------------------------------------
    # Merge mechanics
    # ------------------------------------------------------------------

    def merge_stats(self, leaf_x: LeafKey, leaf_y: LeafKey) -> List[CoresetMergeStats]:
        """Per-coreset ``(fe, xe, ye, xye)`` without mutating the DB."""
        stats = []
        rows = self._rows
        freq = self._core_freq
        for core in self.common_coresets(leaf_x, leaf_y):
            px = rows[(core, leaf_x)]
            py = rows[(core, leaf_y)]
            stats.append(
                CoresetMergeStats(
                    coreset=core,
                    fe=freq[core],
                    xe=px.bit_count(),
                    ye=py.bit_count(),
                    xye=(px & py).bit_count(),
                )
            )
        return stats

    def merge(self, leaf_x: LeafKey, leaf_y: LeafKey) -> MergeOutcome:
        """Merge two leafsets globally across all common coresets.

        For every common coreset ``e`` with a non-empty position
        intersection, the intersection moves into the row
        ``(e, leaf_x | leaf_y)`` and is removed from both source rows;
        emptied rows are dropped.  Returns the :class:`MergeOutcome`
        describing what happened.
        """
        if leaf_x == leaf_y:
            raise MiningError("cannot merge a leafset with itself")
        if leaf_x not in self._leaf_to_cores or leaf_y not in self._leaf_to_cores:
            raise MiningError("both leafsets must exist in the database")
        new_leaf = leaf_x | leaf_y
        # Register the merged leafset now: merge order is deterministic,
        # so first-sight ids stay deterministic too.
        new_id = self._interner.intern(new_leaf)
        intern = self._interner.intern
        self._merge_index += 1
        epoch = self._merge_index
        outcome = MergeOutcome(leaf_x=leaf_x, leaf_y=leaf_y, new_leafset=new_leaf)
        union_x = 0
        union_y = 0
        union_new = 0
        row_freq = self._row_freq
        for core in sorted(self.common_coresets(leaf_x, leaf_y), key=_key_of):
            px = self._rows[(core, leaf_x)]
            py = self._rows[(core, leaf_y)]
            inter = px & py
            count = inter.bit_count()
            outcome.stats.append(
                CoresetMergeStats(
                    coreset=core,
                    fe=self._core_freq[core],
                    xe=row_freq[(core, leaf_x)],
                    ye=row_freq[(core, leaf_y)],
                    xye=count,
                )
            )
            if not count:
                continue
            self._core_epoch[core] = epoch
            union_x |= px
            union_y |= py
            target_key = (core, new_leaf)
            target = self._rows.get(target_key)
            if target is None:
                self._rows[target_key] = inter
                row_freq[target_key] = count
                union_new |= inter
                self._leaf_to_cores.setdefault(new_leaf, set()).add(core)
                self._core_to_leaves.setdefault(core, set()).add(new_leaf)
                insort(self._core_leaf_ids[core], new_id)
            else:
                # Disjointness holds because per (coreset, vertex) each
                # leaf value is covered by exactly one row.
                self._rows[target_key] = target | inter
                row_freq[target_key] += count
                union_new |= target | inter
            # Each merged position replaces two row usages by one.
            self._core_freq[core] -= count
            for leaf, remaining in ((leaf_x, px & ~inter), (leaf_y, py & ~inter)):
                if remaining:
                    self._rows[(core, leaf)] = remaining
                    row_freq[(core, leaf)] -= count
                else:
                    del self._rows[(core, leaf)]
                    del row_freq[(core, leaf)]
                    self._core_to_leaves[core].discard(leaf)
                    self._core_leaf_ids[core].remove(intern(leaf))
                    if not self._core_to_leaves[core]:
                        del self._core_to_leaves[core]
                        del self._core_leaf_ids[core]
                    cores = self._leaf_to_cores[leaf]
                    cores.discard(core)
                    if not cores:
                        del self._leaf_to_cores[leaf]
                        del self._leaf_union[leaf]
                        outcome.removed_leafsets.add(leaf)
        if union_x or union_y:
            outcome.touched_row_unions = {
                leaf_x: union_x,
                leaf_y: union_y,
                new_leaf: union_new,
            }
            self._leaf_epoch[leaf_x] = epoch
            self._leaf_epoch[leaf_y] = epoch
            self._leaf_epoch[new_leaf] = epoch
        # Refresh the union masks of the leafsets the merge touched.
        for leaf in (leaf_x, leaf_y, new_leaf):
            cores = self._leaf_to_cores.get(leaf)
            if cores:
                union = 0
                for core in cores:
                    union |= self._rows[(core, leaf)]
                self._leaf_union[leaf] = union
        return outcome

    def leaf_union_mask(self, leaf: LeafKey) -> int:
        """Union bitmask of the leafset's positions over all coresets."""
        return self._leaf_union.get(leaf, 0)

    # ------------------------------------------------------------------
    # Validation / export
    # ------------------------------------------------------------------

    def validate(self, graph: Optional[AttributedGraph] = None) -> None:
        """Check structural invariants; raise :class:`MiningError` if broken.

        With ``graph`` given, also checks losslessness for singleton
        coresets: the union of rows reconstructs exactly the initial
        (core value, vertex) -> adjacent-leaf-values relation.
        """
        recomputed: Dict[CoreKey, int] = {}
        for (core, leaf), bits in self._rows.items():
            if not bits:
                raise MiningError(f"empty row {(core, leaf)}")
            if core not in self._leaf_to_cores.get(leaf, ()):
                raise MiningError(f"index out of sync for row {(core, leaf)}")
            if self._row_freq.get((core, leaf)) != bits.bit_count():
                raise MiningError(f"stale row frequency for {(core, leaf)}")
            recomputed[core] = recomputed.get(core, 0) + bits.bit_count()
        if set(self._row_freq) != set(self._rows):
            raise MiningError("row frequency index out of sync with rows")
        active = {c: f for c, f in self._core_freq.items() if f > 0}
        if recomputed != active:
            raise MiningError("coreset frequencies out of sync with rows")
        for leaf, cores in self._leaf_to_cores.items():
            for core in cores:
                if (core, leaf) not in self._rows:
                    raise MiningError(f"dangling index entry {(core, leaf)}")
                if leaf not in self._core_to_leaves.get(core, ()):
                    raise MiningError(f"core index missing {(core, leaf)}")
        for core, leaves in self._core_to_leaves.items():
            for leaf in leaves:
                if (core, leaf) not in self._rows:
                    raise MiningError(f"dangling core index entry {(core, leaf)}")
        for leaf, cores in self._leaf_to_cores.items():
            union = 0
            for core in cores:
                union |= self._rows[(core, leaf)]
            if self._leaf_union.get(leaf, 0) != union:
                raise MiningError(f"stale union mask for leafset {set(leaf)}")
        for leaf in self._leaf_to_cores:
            if leaf not in self._interner:
                raise MiningError(f"leafset {set(leaf)} missing from interner")
        if set(self._core_leaf_ids) != set(self._core_to_leaves):
            raise MiningError("coreset id-list index out of sync with adjacency")
        for core, leaves in self._core_to_leaves.items():
            expected_ids = sorted(self._interner.intern(leaf) for leaf in leaves)
            if self._core_leaf_ids[core] != expected_ids:
                raise MiningError(
                    f"stale sorted id list for coreset {set(core)}"
                )
        if graph is not None:
            self._validate_lossless(graph)

    def _validate_lossless(self, graph: AttributedGraph) -> None:
        """Cover uniqueness + exact reconstruction for singleton coresets."""
        covered: Dict[Tuple[CoreKey, Vertex], Set[Value]] = {}
        for core, leaf, positions in self.rows():
            for vertex in positions:
                slot = covered.setdefault((core, vertex), set())
                if slot & leaf:
                    raise MiningError(
                        f"leaf values {slot & leaf} covered twice at "
                        f"vertex {vertex!r} for coreset {set(core)}"
                    )
                slot |= leaf
        for (core, vertex), values in covered.items():
            if len(core) != 1:
                continue
            (core_value,) = core
            if core_value not in graph.attributes_of(vertex):
                raise MiningError(
                    f"row places coreset {set(core)} at vertex {vertex!r} "
                    "which does not carry it"
                )
            expected = graph.neighbor_values(vertex)
            if values != expected:
                raise MiningError(
                    f"reconstruction mismatch at vertex {vertex!r}: "
                    f"covered {values} != neighbourhood {set(expected)}"
                )

    def snapshot(self) -> Dict[RowKey, FrozenSet[Vertex]]:
        """An immutable copy of all rows (for tests and debugging)."""
        return {key: self._to_vertices(bits) for key, bits in self._rows.items()}

    def copy(self) -> "InvertedDatabase":
        """An independent deep copy (merges on it leave self intact)."""
        db = InvertedDatabase()
        db._rows = dict(self._rows)
        db._leaf_to_cores = {
            leaf: set(cores) for leaf, cores in self._leaf_to_cores.items()
        }
        db._core_to_leaves = {
            core: set(leaves) for core, leaves in self._core_to_leaves.items()
        }
        db._core_freq = dict(self._core_freq)
        db._vertex_ids = list(self._vertex_ids)
        db._vertex_bit = dict(self._vertex_bit)
        db._leaf_union = dict(self._leaf_union)
        db._interner = self._interner.copy()
        db._core_leaf_ids = {
            core: list(ids) for core, ids in self._core_leaf_ids.items()
        }
        db._row_freq = dict(self._row_freq)
        db._merge_index = self._merge_index
        db._core_epoch = dict(self._core_epoch)
        db._leaf_epoch = dict(self._leaf_epoch)
        return db

    def __repr__(self) -> str:
        return (
            f"InvertedDatabase(rows={len(self._rows)}, "
            f"leafsets={len(self._leaf_to_cores)}, "
            f"coresets={len(self.coresets())}, s={self.total_frequency()})"
        )


def _key_of(values: FrozenSet) -> Tuple:
    """Deterministic sort key for frozensets of hashables."""
    return tuple(sorted(map(repr, values)))
