"""The inverted database representation (paper, Section IV-B).

The inverted database ``I`` is a three-column table whose rows are
``(SL, Sc, positions)``: a leafset, the coreset it is attached to, and
the set of core vertices at which this a-star is currently used in the
cover.  Initially every row is a one-leaf-value a-star; CSPM mines by
repeatedly *merging* two leafsets, which moves the common positions of
each shared coreset into a new ``SLx | SLy`` row.

Positions are stored as bitmasks over a fixed vertex order — the
co-occurrence counts behind Eq. 9-15 are position-set intersections,
and AND+popcount on machine words is what keeps gain computation fast
at Pokec scale.  The mask *representation* is pluggable
(:mod:`repro.core.masks`): whole-graph Python ints (``bigint``, the
default), sparse dict-of-chunk bitmaps (``chunked``) or numpy-packed
chunks (``numpy``) — all bit-exact interchangeable, selected per
database at construction.  The vertex->bit table is precomputed once
per construction (in first-touch order over repr-sorted coresets, so
community positions land in adjacent bits) and shared by every mask
the database owns; after construction the order is *frozen* (see
:meth:`InvertedDatabase._bit_of`).

Construction itself is **columnar**: phase 1 plans the iteration and
assigns vertex bits, phase 2 collects, per ``(coreset, leafset)`` row,
the full sorted bit list and materialises each coreset's rows with one
bulk ``MaskBackend.make_batch`` call, deriving row/coreset frequencies
from batch lengths instead of per-bit increments.  The per-triple
reference path survives as :meth:`InvertedDatabase._from_graph_triples`
(the equivalence suite's oracle).  Because rows are partitionable by
coreset, ``from_graph(construction="partitioned")`` can also fan
phase 2 out over worker processes (:mod:`repro.core.construction`)
against the shared vertex->bit table, merging sub-databases into the
exact serial result.

Invariants maintained by this class (checked by :meth:`validate`):

* for a given coreset and vertex, each adjacent leaf value is covered
  by exactly one row (cover uniqueness);
* ``coreset_frequency[Sc] == sum of row frequencies of Sc`` at all
  times (the paper's note that ``sum_i l_ij == c_j``);
* position sets are never empty (empty rows are dropped).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.config import CONSTRUCTIONS
from repro.core.candidates import LeafsetInterner, leafset_sort_key
from repro.core.masks import MaskBackend, BigintMaskBackend, bigint_mask_bytes
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph
from repro.obs import current

try:  # Vectorised construction grouping; the pure path covers absence.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

Value = Hashable
Vertex = Hashable
LeafKey = FrozenSet[Value]
CoreKey = FrozenSet[Value]
RowKey = Tuple[CoreKey, LeafKey]
Mask = object


@dataclass(frozen=True)
class CoresetMergeStats:
    """Per-coreset statistics of one merge, feeding Eq. 10-15.

    ``fe`` is the coreset frequency before the merge, ``xe``/``ye`` the
    frequencies of the two merged rows, ``xye`` their co-occurrence
    (position-set intersection size).
    """

    coreset: CoreKey
    fe: int
    xe: int
    ye: int
    xye: int

    @property
    def case(self) -> str:
        """Which of the paper's three merge cases applies (or 'none')."""
        if self.xye == 0:
            return "none"
        if self.xye == self.xe and self.xye == self.ye:
            return "total"
        if self.xye == self.xe or self.xye == self.ye:
            return "one-total"
        return "partial"


@dataclass
class MergeOutcome:
    """What a merge did: the new leafset, and per-coreset bookkeeping.

    ``touched_row_unions`` maps each participating leafset (the two
    merged leafsets and the merged result) to the union bitmask of its
    rows under the *touched* coresets — for the survivors the pre-merge
    rows, for the new leafset the post-merge rows (which contain the
    pre-merge ones).  A third leafset's gain against a participant can
    only have changed if its positions intersect this mask (every gain
    term requires a non-empty per-coreset intersection), which is what
    lets the lazy refresh skip provably-unchanged pairs with one AND.
    The masks are values of the owning database's mask backend.

    ``touched_core_rows`` is the per-coreset refinement of the same
    information: for each participating leafset, the list of
    ``(coreset, row mask)`` pairs over the touched coresets — the
    survivors' *pre-merge* rows (which contain their post-merge
    remainders), the new leafset's *post-merge* rows.  A pair's gain
    can only have changed if some touched coreset's role row intersects
    the partner's row *at that same coreset*, which is strictly sharper
    than the whole-union test.  Masks are references into the merge's
    own working values — never mutated, safe to hold.
    """

    leaf_x: LeafKey
    leaf_y: LeafKey
    new_leafset: LeafKey
    stats: List[CoresetMergeStats] = field(default_factory=list)
    removed_leafsets: Set[LeafKey] = field(default_factory=set)
    touched_row_unions: Dict[LeafKey, Mask] = field(default_factory=dict)
    touched_core_rows: Dict[LeafKey, List[Tuple[CoreKey, Mask]]] = field(
        default_factory=dict
    )

    @property
    def touched_coresets(self) -> List[CoreKey]:
        return [s.coreset for s in self.stats if s.xye > 0]

    @property
    def partly_merged_leafsets(self) -> Set[LeafKey]:
        """Leafsets of the pair that survive with reduced frequency."""
        return {self.leaf_x, self.leaf_y} - self.removed_leafsets


class InvertedDatabase:
    """Mutable inverted database over which CSPM searches.

    Rows are keyed by ``(coreset, leafset)`` frozenset pairs.  The
    class also maintains reverse indexes used by candidate generation:
    leafset -> coresets and coreset -> leafsets.
    """

    def __init__(self, mask_backend: Optional[MaskBackend] = None) -> None:
        # The position-mask representation strategy.  Backends are
        # stateless; masks held in ``_rows``/``_leaf_union`` are values
        # interpreted through this object only.  After construction all
        # mask operations are pure, so ``copy`` shares mask values.
        self._masks: MaskBackend = (
            mask_backend if mask_backend is not None else BigintMaskBackend()
        )
        self._rows: Dict[RowKey, Mask] = {}
        # Values are insertion-ordered coreset "sets" (dict keys -> None):
        # gain terms accumulate over this iteration order, so it must be
        # deterministic and survive copies — plain sets would make the
        # floats depend on the hash seed and the table's history.
        self._leaf_to_cores: Dict[LeafKey, Dict[CoreKey, None]] = {}
        self._core_to_leaves: Dict[CoreKey, Set[LeafKey]] = {}
        self._core_freq: Dict[CoreKey, int] = {}
        self._vertex_ids: List[Vertex] = []
        self._vertex_bit: Dict[Vertex, int] = {}
        # Union of a leafset's row positions over all its coresets.
        # Disjoint unions imply zero gain, which lets candidate
        # generation and gain evaluation short-circuit with a single
        # AND (most pairs in community-structured graphs are disjoint).
        self._leaf_union: Dict[LeafKey, Mask] = {}
        # Row keys in (sorted-coreset, sorted-leafset) order, recorded
        # while ``from_graph`` finalises each coreset — the exact order
        # ``mdl._sorted_rows`` would produce, captured for free so the
        # initial description length needs no global re-sort.  Valid
        # only for the freshly-built database; dropped on first merge.
        self._initial_row_order: Optional[List[RowKey]] = None
        # Stable integer leafset ids: initial leafsets are interned in
        # repr-sorted order at construction, merged leafsets at merge
        # time, so ordering is deterministic and hash-seed-independent
        # while comparisons stay integer ops.
        self._interner = LeafsetInterner()
        # Per-coreset sorted leafset-id lists, the adjacency candidate
        # generation enumerates.  Maintained incrementally: a merge
        # touches only its common coresets, so only those lists change.
        self._core_leaf_ids: Dict[CoreKey, List[int]] = {}
        # Row popcounts, maintained incrementally so gain evaluation
        # reads an int instead of re-counting big-int masks.
        self._row_freq: Dict[RowKey, int] = {}
        # Merge epochs.  ``_merge_index`` counts merges; a coreset's
        # epoch is the index of the last merge that changed its rows or
        # frequency, a leafset's epoch the index of the last merge it
        # participated in (as a source or as the merged result).  A
        # stored gain for a pair is stale exactly when some common
        # coreset's epoch passed the gain's validation point — the O(1)
        # per-coreset lookups behind CSPM-Partial's lazy refresh.
        self._merge_index: int = 0
        self._core_epoch: Dict[CoreKey, int] = {}
        self._leaf_epoch: Dict[LeafKey, int] = {}
        # ``from_graph`` freezes the vertex order once construction
        # finishes: batch-built masks trust the precomputed table, so
        # implicit lazy extension afterwards would desynchronise them.
        self._vertex_order_frozen: bool = False
        # Failure telemetry of a supervised partitioned build (a
        # ``repro.runtime.supervisor.SiteReport``); ``None`` for serial
        # or degenerate single-partition builds.  Parent-side only.
        self.construction_report = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: AttributedGraph,
        coreset_positions: Optional[Mapping[CoreKey, Iterable[Vertex]]] = None,
        mask_backend: Optional[MaskBackend] = None,
        construction: str = "serial",
        construction_workers: Optional[int] = None,
        runtime_policy=None,
    ) -> "InvertedDatabase":
        """Build the initial inverted database from an attributed graph.

        Parameters
        ----------
        graph:
            The input attributed graph.
        coreset_positions:
            Optional mapping ``coreset -> vertices`` produced by a
            multi-value coreset encoder (Section IV-F, step 1).  When
            omitted, every attribute value is its own singleton coreset
            at every vertex carrying it.
        mask_backend:
            The position-mask representation (:mod:`repro.core.masks`);
            defaults to whole-graph bigint masks.
        construction:
            ``"serial"`` (default) builds rows in-process with the
            columnar batch builder; ``"partitioned"`` shards the
            coreset space over worker processes
            (:mod:`repro.core.construction`) and merges the
            sub-databases — the result is identical either way.
        construction_workers:
            Worker-process count for ``"partitioned"`` (``None`` =
            one per CPU, capped by the partition count).
        runtime_policy:
            Optional :class:`repro.runtime.supervisor.RuntimePolicy`
            for the partitioned path's supervised pool (timeouts,
            retries, degrade-to-serial, fault injection); the site's
            failure telemetry lands on ``db.construction_report``.
            Ignored under serial construction.

        Every initial row is ``(Sc, {leaf value})`` with positions the
        vertices where ``Sc`` holds and some neighbour carries the leaf
        value.
        """
        if construction not in CONSTRUCTIONS:
            raise MiningError(
                f"construction must be one of {CONSTRUCTIONS}, "
                f"got {construction!r}"
            )
        db = cls(mask_backend=mask_backend)
        if coreset_positions is None:
            coreset_positions = {
                frozenset([value]): vertices
                for value, vertices in graph.value_positions().items()
            }
        obs = current()
        if construction == "partitioned":
            # Workers need the whole phase-1 product up front: the
            # frozen vertex->bit table and the neighbour-value map are
            # shared state every partition builds against.
            with obs.span("build.plan", construction=construction):
                plan, neighbor_values = db._plan_construction(
                    graph, coreset_positions
                )
            from repro.core.construction import build_partitioned

            with obs.span(
                "build.rows",
                construction=construction,
                coresets=len(plan),
            ):
                db.construction_report = build_partitioned(
                    db,
                    plan,
                    neighbor_values,
                    workers=construction_workers,
                    policy=runtime_policy,
                )
        else:
            # Serial construction fuses phase 1's per-vertex work into
            # the row loop: neighbour values are computed and the bit
            # assigned on each vertex's first encounter, which happens
            # in exactly the order the separate planning pass would
            # have used (plan order, members in order, values-carrying
            # vertices only).
            with obs.span("build.plan", construction=construction):
                plan = db._plan_coresets(coreset_positions)
            with obs.span(
                "build.rows",
                construction=construction,
                coresets=len(plan),
            ):
                db._build_rows(
                    plan, graph.neighbor_values, graph.attribute_values()
                )
        db._finalise_construction()
        return db

    @classmethod
    def _from_graph_triples(
        cls,
        graph: AttributedGraph,
        coreset_positions: Optional[Mapping[CoreKey, Iterable[Vertex]]] = None,
        mask_backend: Optional[MaskBackend] = None,
    ) -> "InvertedDatabase":
        """The pre-columnar reference builder: one ``_add_position``
        call per ``(coreset, vertex, leaf-value)`` triple.

        Kept verbatim as the oracle the construction-equivalence suite
        compares the batched and partitioned paths against; production
        code always goes through :meth:`from_graph`.
        """
        db = cls(mask_backend=mask_backend)
        if coreset_positions is None:
            coreset_positions = {
                frozenset([value]): vertices
                for value, vertices in graph.value_positions().items()
            }
        plan, neighbor_values = db._plan_construction(graph, coreset_positions)
        row_order: List[RowKey] = []
        for core_key, members in plan.items():
            for vertex in members:
                for leaf_value in neighbor_values[vertex]:
                    db._add_position(core_key, frozenset([leaf_value]), vertex)
            leaves = db._core_to_leaves.get(core_key)
            if leaves:
                row_order.extend(
                    (core_key, leaf) for leaf in sorted(leaves, key=_key_of)
                )
        db._initial_row_order = row_order
        db._finalise_construction()
        return db

    def _plan_coresets(
        self, coreset_positions: Mapping[CoreKey, Iterable[Vertex]]
    ) -> Dict[CoreKey, List[Vertex]]:
        """The (coreset, sorted members) iteration plan, keys sorted.

        Pure ordering work — no per-vertex graph access; the serial
        builder fuses that into the row loop, the partitioned builder
        adds it in :meth:`_plan_construction`.
        """
        plan: Dict[CoreKey, List[Vertex]] = {}
        for coreset, vertices in sorted(
            coreset_positions.items(), key=lambda kv: _key_of(kv[0])
        ):
            core_key = frozenset(coreset)
            if not core_key:
                raise MiningError("empty coreset is not allowed")
            members = sorted(vertices, key=repr)
            if core_key in plan:
                plan[core_key].extend(members)
            else:
                plan[core_key] = members
        return plan

    def _plan_construction(
        self,
        graph: AttributedGraph,
        coreset_positions: Mapping[CoreKey, Iterable[Vertex]],
    ) -> Tuple[Dict[CoreKey, List[Vertex]], Dict[Vertex, FrozenSet[Value]]]:
        """Phase 1 with the per-vertex tables fully materialised.

        Computes each vertex's neighbour-value set exactly once (a
        vertex with k attribute values is visited k times) and
        precomputes the vertex->bit table in the same first-touch order
        the row loop uses — one shared vertex order for every mask the
        database will ever hold, and the table every construction
        worker builds against.  The serial builder skips this pass and
        assigns bits lazily at first encounter, which produces the
        identical table because the encounters happen in the same
        order.
        """
        plan = self._plan_coresets(coreset_positions)
        neighbor_values: Dict[Vertex, FrozenSet[Value]] = {}
        vertex_bit = self._vertex_bit
        vertex_ids = self._vertex_ids
        for members in plan.values():
            for vertex in members:
                values = neighbor_values.get(vertex)
                if values is None:
                    values = graph.neighbor_values(vertex)
                    neighbor_values[vertex] = values
                if values and vertex not in vertex_bit:
                    vertex_bit[vertex] = len(vertex_ids)
                    vertex_ids.append(vertex)
        return plan, neighbor_values

    def _build_rows(
        self,
        plan: Mapping[CoreKey, List[Vertex]],
        values_of: Callable[[Vertex], FrozenSet[Value]],
        universe: Iterable[Value],
    ) -> None:
        """Phase 2, columnar: collect whole rows, materialise in bulk.

        The grouping pass gathers every row's full sorted bit list
        first; masks are then built with bulk ``make_batch`` calls and
        the frequency bookkeeping (``_row_freq``/``_core_freq``) comes
        from list lengths instead of per-bit increments.  Each
        coreset's rows are final when its iteration ends (no later
        vertex can touch them), so materialising rows in per-coreset
        sorted-leaf order reproduces the global (coreset, leafset) sort
        order without ever sorting all rows at once —
        ``mdl.initial_description_length`` accumulates the Eq. 1-8
        terms over exactly this order.

        ``values_of`` maps a vertex to its neighbour-value set (called
        once per vertex — the serial builder passes the graph method
        directly, workers pass their precomputed table) and
        ``universe`` must cover every value ``values_of`` can return (a
        superset is fine: ordinals are internal, only their relative
        order matters).

        Grouping itself is vectorised when numpy is available (one
        lexsort per block of whole coresets) and falls back to a pure
        dict grouping otherwise; both produce the identical database.
        """
        # Dense leaf ordinals in global ``_key_of`` order (for the
        # singleton leafsets of construction that is repr order of the
        # value): the hot loops then handle small ints instead of
        # frozensets, and row ordering reduces to int comparisons — no
        # key function, no repr recomputation.
        ordered_values = sorted(universe, key=repr)
        ordinal_of = {value: i for i, value in enumerate(ordered_values)}
        leaf_by_ordinal = [frozenset((value,)) for value in ordered_values]
        if _np is not None:
            self._build_rows_sorted(
                plan, values_of, ordinal_of, leaf_by_ordinal
            )
        else:  # pragma: no cover - exercised via the forced-fallback tests
            self._build_rows_pure(
                plan, values_of, ordinal_of, leaf_by_ordinal
            )

    def _vertex_info(
        self,
        vertex: Vertex,
        values_of: Callable[[Vertex], FrozenSet[Value]],
        ordinal_of: Dict[Value, int],
    ) -> Tuple:
        """First-encounter record: ``(bit, ordinals, [bit]*k)`` or ``()``.

        Lazy bit assignment happens here for the serial builder; the
        encounters run in plan order over per-coreset member order, so
        the table comes out exactly as ``_plan_construction`` would
        precompute it (workers arrive with the table prefilled and
        never take the assignment branch).
        """
        values = values_of(vertex)
        if not values:
            return ()
        bit = self._vertex_bit.get(vertex)
        if bit is None:
            bit = len(self._vertex_ids)
            self._vertex_bit[vertex] = bit
            self._vertex_ids.append(vertex)
        ordinals = [ordinal_of[value] for value in values]
        return (bit, ordinals, [bit] * len(ordinals))

    @staticmethod
    def _dedupe_members(members: List[Vertex]) -> List[Vertex]:
        """Drop duplicate vertices, preserving order (rare path).

        Two ``coreset_positions`` keys can collapse to one frozenset
        (and an iterable may repeat a vertex); row bit lists must stay
        duplicate-free for batch lengths to be frequencies.
        """
        if len(members) > 1 and len(members) != len(set(members)):
            seen: Set[Vertex] = set()
            return [v for v in members if not (v in seen or seen.add(v))]
        return members

    #: Triples buffered between vectorised grouping flushes.  Blocks
    #: end on coreset boundaries, so the cap bounds transient memory
    #: (three int64 arrays plus the decoded bit list) without ever
    #: splitting a coreset across flushes.
    _GROUP_BLOCK_TRIPLES = 2_000_000

    def _build_rows_sorted(
        self,
        plan: Mapping[CoreKey, List[Vertex]],
        values_of: Callable[[Vertex], FrozenSet[Value]],
        ordinal_of: Dict[Value, int],
        leaf_by_ordinal: List[LeafKey],
    ) -> None:
        """Vectorised grouping: flat (core, leaf, bit) triple columns,
        one lexsort per block, rows read off the group boundaries.

        The collect loop does three C-level ``extend`` calls per
        (coreset, vertex) pair instead of one dict probe per triple;
        the sort then delivers every row's bit list already ascending
        and in global (coreset, leafset) order, so row keys, counts and
        the construction-order record all fall out of one pass.
        """
        from itertools import repeat

        masks = self._masks
        rows = self._rows
        row_freq = self._row_freq
        leaf_to_cores = self._leaf_to_cores
        core_to_leaves = self._core_to_leaves
        core_freq = self._core_freq
        make_batch = masks.make_batch
        rows_update = rows.update
        row_freq_update = row_freq.update
        vertex_rowinfo: Dict[Vertex, Tuple] = {}
        leaf_masks: Dict[int, List[Mask]] = {}
        row_order: List[RowKey] = []
        row_order_extend = row_order.extend
        core_keys: List[CoreKey] = []
        cores_flat: List[int] = []
        ords_flat: List[int] = []
        bits_flat: List[int] = []
        cores_extend = cores_flat.extend
        ords_extend = ords_flat.extend
        bits_extend = bits_flat.extend

        def flush() -> None:
            count = len(cores_flat)
            if not count:
                return
            cores_a = _np.array(cores_flat, dtype=_np.int64)
            ords_a = _np.array(ords_flat, dtype=_np.int64)
            bits_a = _np.array(bits_flat, dtype=_np.int64)
            del cores_flat[:], ords_flat[:], bits_flat[:]
            # One radix sort on a packed (core, leaf, bit) key beats
            # three lexsort passes when the key fits a machine word;
            # the widths come from the actual block maxima.
            bit_width = int(bits_a.max()) .bit_length()
            ord_width = int(ords_a.max()).bit_length()
            core_width = int(cores_a.max()).bit_length()
            if bit_width + ord_width + core_width <= 62:
                packed = (
                    (cores_a << (ord_width + bit_width))
                    | (ords_a << bit_width)
                    | bits_a
                )
                order = _np.argsort(packed, kind="stable")
            else:  # pragma: no cover - >2^62 key space
                order = _np.lexsort((bits_a, ords_a, cores_a))
            cores_a = cores_a[order]
            ords_a = ords_a[order]
            bits_a = bits_a[order]
            row_change = _np.empty(count, dtype=bool)
            row_change[0] = True
            _np.not_equal(ords_a[1:], ords_a[:-1], out=row_change[1:])
            row_change[1:] |= cores_a[1:] != cores_a[:-1]
            starts = _np.flatnonzero(row_change)
            counts_a = _np.diff(_np.append(starts, count))
            bits_list = bits_a.tolist()
            bounds = starts.tolist()
            bounds.append(count)
            num_rows = len(bounds) - 1
            bit_lists = [
                bits_list[bounds[i] : bounds[i + 1]] for i in range(num_rows)
            ]
            built = make_batch(bit_lists)
            row_cores_a = cores_a[starts]
            row_ords_a = ords_a[starts]
            # Row keys, masks, frequencies and the construction-order
            # record all land through C-level bulk calls.
            keys = list(
                zip(
                    map(core_keys.__getitem__, row_cores_a.tolist()),
                    map(leaf_by_ordinal.__getitem__, row_ords_a.tolist()),
                )
            )
            rows_update(zip(keys, built))
            row_freq_update(zip(keys, counts_a.tolist()))
            row_order_extend(keys)
            # Per-coreset totals and leaf sets: a coreset's rows are
            # consecutive after the sort, so one reduceat per block.
            core_row_change = _np.empty(num_rows, dtype=bool)
            core_row_change[0] = True
            _np.not_equal(
                row_cores_a[1:], row_cores_a[:-1], out=core_row_change[1:]
            )
            core_row_starts = _np.flatnonzero(core_row_change)
            core_sums = _np.add.reduceat(counts_a, core_row_starts)
            core_bounds = core_row_starts.tolist()
            core_bounds.append(num_rows)
            for index, total in enumerate(core_sums.tolist()):
                start = core_bounds[index]
                end = core_bounds[index + 1]
                core_key = keys[start][0]
                leaves = {key[1] for key in keys[start:end]}
                have = core_to_leaves.get(core_key)
                if have is None:
                    core_to_leaves[core_key] = leaves
                else:
                    have.update(leaves)
                core_freq[core_key] = core_freq.get(core_key, 0) + total
            # Per-leafset coreset sets and row-mask lists (for the
            # batched unions): group rows by ordinal with one stable
            # argsort per block.
            leaf_order = _np.argsort(row_ords_a, kind="stable")
            sorted_ords = row_ords_a[leaf_order]
            leaf_change = _np.empty(num_rows, dtype=bool)
            leaf_change[0] = True
            _np.not_equal(sorted_ords[1:], sorted_ords[:-1], out=leaf_change[1:])
            leaf_bounds = _np.flatnonzero(leaf_change).tolist()
            leaf_bounds.append(num_rows)
            leaf_order_list = leaf_order.tolist()
            sorted_ords_list = sorted_ords.tolist()
            for group in range(len(leaf_bounds) - 1):
                start = leaf_bounds[group]
                end = leaf_bounds[group + 1]
                ordinal = sorted_ords_list[start]
                leaf = leaf_by_ordinal[ordinal]
                row_indexes = leaf_order_list[start:end]
                row_masks = [built[i] for i in row_indexes]
                cores = dict.fromkeys(keys[i][0] for i in row_indexes)
                have = leaf_to_cores.get(leaf)
                if have is None:
                    leaf_to_cores[leaf] = cores
                    leaf_masks[ordinal] = row_masks
                else:
                    have.update(cores)
                    leaf_masks[ordinal].extend(row_masks)

        block_cap = self._GROUP_BLOCK_TRIPLES
        for core_key, members in plan.items():
            members = self._dedupe_members(members)
            core_index = len(core_keys)
            core_keys.append(core_key)
            before = len(ords_flat)
            for vertex in members:
                info = vertex_rowinfo.get(vertex)
                if info is None:
                    info = vertex_rowinfo[vertex] = self._vertex_info(
                        vertex, values_of, ordinal_of
                    )
                if not info:
                    continue
                ords_extend(info[1])
                bits_extend(info[2])
            added = len(ords_flat) - before
            if added:
                cores_extend(repeat(core_index, added))
                if len(cores_flat) >= block_cap:
                    flush()
        flush()
        self._materialise_unions(leaf_masks, leaf_by_ordinal)
        self._initial_row_order = row_order

    def _build_rows_pure(
        self,
        plan: Mapping[CoreKey, List[Vertex]],
        values_of: Callable[[Vertex], FrozenSet[Value]],
        ordinal_of: Dict[Value, int],
        leaf_by_ordinal: List[LeafKey],
    ) -> None:
        """Dict-grouping fallback (no numpy): per-coreset bit-list
        dicts keyed by leaf ordinal, bulk-materialised per coreset.

        Produces the identical database to the vectorised path — the
        construction-equivalence tests force this branch to prove it.
        """
        masks = self._masks
        rows = self._rows
        row_freq = self._row_freq
        leaf_to_cores = self._leaf_to_cores
        core_to_leaves = self._core_to_leaves
        core_freq = self._core_freq
        make_batch = masks.make_batch
        rows_update = rows.update
        row_freq_update = row_freq.update
        vertex_rowinfo: Dict[Vertex, Tuple] = {}
        leaf_masks: Dict[int, List[Mask]] = {}
        row_order: List[RowKey] = []
        row_order_extend = row_order.extend
        for core_key, members in plan.items():
            members = self._dedupe_members(members)
            row_bits: Dict[int, List[int]] = {}
            get_row = row_bits.get
            for vertex in members:
                info = vertex_rowinfo.get(vertex)
                if info is None:
                    info = vertex_rowinfo[vertex] = self._vertex_info(
                        vertex, values_of, ordinal_of
                    )
                if not info:
                    continue
                bit = info[0]
                for ordinal in info[1]:
                    bits = get_row(ordinal)
                    if bits is None:
                        row_bits[ordinal] = [bit]
                    else:
                        bits.append(bit)
            if not row_bits:
                continue
            ordered = sorted(row_bits)
            bit_lists = [row_bits[ordinal] for ordinal in ordered]
            for bits in bit_lists:
                # Bits are first-touch ordered globally but members are
                # iterated per coreset, so lists are only mostly sorted.
                bits.sort()
            built = make_batch(bit_lists)
            # Materialisation runs in sorted-ordinal order, so the keys
            # list doubles as the construction-order row record; the
            # per-row stores collapse into C-level bulk updates.
            keys = [
                (core_key, leaf_by_ordinal[ordinal]) for ordinal in ordered
            ]
            counts = list(map(len, bit_lists))
            rows_update(zip(keys, built))
            row_freq_update(zip(keys, counts))
            core_freq[core_key] = sum(counts)
            row_order_extend(keys)
            leaves = [key[1] for key in keys]
            have = core_to_leaves.get(core_key)
            if have is None:
                core_to_leaves[core_key] = set(leaves)
            else:
                have.update(leaves)
            for ordinal, leaf, mask in zip(ordered, leaves, built):
                cores = leaf_to_cores.get(leaf)
                if cores is None:
                    leaf_to_cores[leaf] = {core_key: None}
                    leaf_masks[ordinal] = [mask]
                else:
                    cores[core_key] = None
                    leaf_masks[ordinal].append(mask)
        self._materialise_unions(leaf_masks, leaf_by_ordinal)
        self._initial_row_order = row_order

    def _materialise_unions(
        self,
        leaf_masks: Dict[int, List[Mask]],
        leaf_by_ordinal: List[LeafKey],
    ) -> None:
        """Set every per-leafset union mask from its row masks.

        A union is the OR of the leafset's rows over all coresets; a
        single-row leafset shares the row's mask value outright, which
        is safe because every post-construction mask operation is pure
        (``copy`` relies on the same discipline).
        """
        masks = self._masks
        or_ = masks.or_
        leaf_union = self._leaf_union
        for ordinal, row_masks in leaf_masks.items():
            union = row_masks[0]
            for mask in row_masks[1:]:
                union = or_(union, mask)
            leaf_union[leaf_by_ordinal[ordinal]] = union

    def _finalise_construction(self) -> None:
        """Shared epilogue of every construction path.

        Interns the initial leafsets in repr-sorted order — first-sight
        ids then coincide with the repr ordering the seed used, so
        seeding-time tie-breaks are unchanged and independent of the
        (hash-seed-dependent) set iteration order — builds the
        per-coreset sorted id lists, and freezes the vertex order.
        """
        ordered = sorted(self._leaf_to_cores, key=_key_of)
        self._interner.intern_all(ordered)
        intern = self._interner.intern
        id_of = {leaf: intern(leaf) for leaf in ordered}
        self._core_leaf_ids = {
            core: sorted(id_of[leaf] for leaf in leaves)
            for core, leaves in self._core_to_leaves.items()
        }
        self._vertex_order_frozen = True

    def _bit_of(self, vertex: Vertex) -> int:
        """The vertex's bit index under the shared vertex order.

        ``from_graph`` precomputes the full table and then *freezes*
        it: batch-built masks trust precomputed bit lists, so an
        unknown vertex on a frozen database raises
        :class:`MiningError` instead of silently extending the order
        (which would let masks and table diverge).  Direct
        ``_add_position`` callers on a hand-built database (one that
        never went through ``from_graph``) still get lazy first-touch
        assignment.
        """
        bit = self._vertex_bit.get(vertex)
        if bit is None:
            if self._vertex_order_frozen:
                raise MiningError(
                    f"unknown vertex {vertex!r}: the vertex order is frozen "
                    "after from_graph (every mask shares one vertex->bit "
                    "table); build a new database instead of appending "
                    "positions"
                )
            bit = len(self._vertex_ids)
            self._vertex_bit[vertex] = bit
            self._vertex_ids.append(vertex)
        return bit

    def _add_position(self, core: CoreKey, leaf: LeafKey, vertex: Vertex) -> None:
        key = (core, leaf)
        bit = self._bit_of(vertex)
        masks = self._masks
        current = self._rows.get(key)
        if current is None:
            self._rows[key] = masks.make((bit,))
            self._row_freq[key] = 1
            self._leaf_to_cores.setdefault(leaf, {})[core] = None
            self._core_to_leaves.setdefault(core, set()).add(leaf)
            self._core_freq[core] = self._core_freq.get(core, 0) + 1
            union = self._leaf_union.get(leaf)
            self._leaf_union[leaf] = (
                masks.make((bit,)) if union is None else masks.set_bit(union, bit)
            )
        elif not masks.has_bit(current, bit):
            self._rows[key] = masks.set_bit(current, bit)
            self._row_freq[key] += 1
            self._core_freq[core] += 1
            self._leaf_union[leaf] = masks.set_bit(self._leaf_union[leaf], bit)

    def _to_vertices(self, mask: Mask) -> FrozenSet[Vertex]:
        ids = self._vertex_ids
        return frozenset(ids[bit] for bit in self._masks.iter_bits(mask))

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[Tuple[CoreKey, LeafKey, FrozenSet[Vertex]]]:
        """Iterate ``(coreset, leafset, positions)`` over all rows."""
        for (core, leaf), bits in self._rows.items():
            yield core, leaf, self._to_vertices(bits)

    def row_items(self) -> Iterator[Tuple[CoreKey, LeafKey, int]]:
        """Iterate ``(coreset, leafset, frequency)`` without decoding."""
        for key, frequency in self._row_freq.items():
            yield key[0], key[1], frequency

    @property
    def mask_backend(self) -> MaskBackend:
        """The position-mask representation this database was built on."""
        return self._masks

    @property
    def num_position_bits(self) -> int:
        """Width of the vertex order (bits a whole-graph mask spans)."""
        return len(self._vertex_ids)

    @property
    def num_leafsets(self) -> int:
        """Number of distinct live leafsets (O(1))."""
        return len(self._leaf_to_cores)

    def vertex_bit_table(self) -> Mapping[Vertex, int]:
        """The shared vertex -> bit index table (do not mutate).

        Precomputed once per construction; every mask the database owns
        is expressed over this one order, so backends (and any external
        mask consumer) can translate vertices to bits without touching
        backend internals.
        """
        return self._vertex_bit

    def initial_row_order(self) -> Optional[List[RowKey]]:
        """Row keys in global (coreset, leafset) sorted order, or ``None``.

        Available only on a freshly-built database (``from_graph``
        records it as each coreset finalises; the first merge drops
        it).  ``mdl.initial_description_length`` walks this instead of
        re-sorting every row.
        """
        return self._initial_row_order

    def mask_memory_bytes(self) -> int:
        """Estimated bytes held by all row and union masks right now."""
        mask_bytes = self._masks.mask_bytes
        total = 0
        for mask in self._rows.values():
            total += mask_bytes(mask)
        for mask in self._leaf_union.values():
            total += mask_bytes(mask)
        return total

    def bigint_mask_bytes_estimate(self) -> int:
        """What these same masks would cost on the bigint backend.

        The reference the perf suite's mask-memory reduction ratio is
        measured against.  Each mask is priced at its actual bit span
        (a Python int only pays up to its highest set bit), so this is
        exactly the total ``BigintMaskBackend.mask_bytes`` would report
        for an identical database — not an ``O(|V|)``-per-mask
        overstatement.
        """
        span_of = self._masks.bit_span
        total = 0
        for mask in self._rows.values():
            total += bigint_mask_bytes(max(1, span_of(mask)))
        for mask in self._leaf_union.values():
            total += bigint_mask_bytes(max(1, span_of(mask)))
        return total

    @property
    def interner(self) -> LeafsetInterner:
        """The database's leafset-id registry (ordering authority)."""
        return self._interner

    @property
    def merge_epoch(self) -> int:
        """The number of merges performed so far (the current epoch)."""
        return self._merge_index

    def core_epoch(self, core: CoreKey) -> int:
        """Epoch of the last merge that touched ``core`` (0 = never)."""
        return self._core_epoch.get(core, 0)

    def leaf_epoch(self, leaf: LeafKey) -> int:
        """Epoch of the last merge ``leaf`` participated in (0 = never).

        A leafset's rows — and hence its coreset membership — change
        only in merges it participates in, so this single int validates
        any per-leafset derived data (e.g. the gain engine's cached
        common-coreset lists).
        """
        return self._leaf_epoch.get(leaf, 0)

    def leafsets(self) -> List[LeafKey]:
        """All distinct leafsets currently present."""
        return list(self._leaf_to_cores)

    def coreset_leafset_index(self) -> Mapping[CoreKey, Set[LeafKey]]:
        """The live coreset -> leafsets adjacency (do not mutate).

        Maintained incrementally across merges; this is what
        :func:`repro.core.pairgen.overlap_pairs` enumerates instead of
        the quadratic all-pairs scan.
        """
        return self._core_to_leaves

    def coreset_leaf_ids(self) -> Mapping[CoreKey, List[int]]:
        """Per-coreset sorted interned leafset ids (do not mutate).

        The id-level view of :meth:`coreset_leafset_index`, kept sorted
        incrementally so candidate generation never re-sorts adjacency
        lists.
        """
        return self._core_leaf_ids

    def coresets(self) -> List[CoreKey]:
        """All coresets with at least one row."""
        return [core for core, freq in self._core_freq.items() if freq > 0]

    def coresets_of(self, leaf: LeafKey) -> FrozenSet[CoreKey]:
        """Coresets that have a row with leafset ``leaf``."""
        return frozenset(self._leaf_to_cores.get(leaf, ()))

    def leafsets_of(self, core: CoreKey) -> FrozenSet[LeafKey]:
        """Leafsets that have a row with coreset ``core``."""
        return frozenset(self._core_to_leaves.get(core, ()))

    def related_leafsets(self, leaf: LeafKey) -> FrozenSet[LeafKey]:
        """All other leafsets sharing at least one coreset with ``leaf``.

        Only such leafsets can ever have a positive merge gain with
        ``leaf`` (the observation behind CSPM-Partial, Section V).
        """
        related: Set[LeafKey] = set()
        for core in self._leaf_to_cores.get(leaf, ()):
            related |= self._core_to_leaves[core]
        related.discard(leaf)
        return frozenset(related)

    def positions(self, core: CoreKey, leaf: LeafKey) -> FrozenSet[Vertex]:
        """Positions of row ``(core, leaf)`` (empty if absent)."""
        return self._to_vertices(self._rows.get((core, leaf), 0))

    def row_frequency(self, core: CoreKey, leaf: LeafKey) -> int:
        """``fL`` of the row (0 if the row does not exist)."""
        return self._row_freq.get((core, leaf), 0)

    def row_mask(self, core: CoreKey, leaf: LeafKey) -> Optional[Mask]:
        """The row's raw position mask, or ``None`` when absent.

        A backend value of :attr:`mask_backend` — read-only, like every
        mask the database hands out.  The lazy refresh's per-coreset
        touched test reads partner rows through this instead of
        decoding positions.
        """
        return self._rows.get((core, leaf))

    def coreset_frequency(self, core: CoreKey) -> int:
        """``fc``: total row frequency of ``core`` (== sum_i l_ic)."""
        return self._core_freq.get(core, 0)

    def total_frequency(self) -> int:
        """``s``: the sum of all row frequencies (Eq. 7)."""
        return sum(self._core_freq.values())

    def has_leafset(self, leaf: LeafKey) -> bool:
        """Whether any row currently uses leafset ``leaf``."""
        return leaf in self._leaf_to_cores

    def common_coresets(self, leaf_x: LeafKey, leaf_y: LeafKey) -> List[CoreKey]:
        """Coresets having rows for both leafsets (the paper's ``C``)."""
        cores_x = self._leaf_to_cores.get(leaf_x)
        cores_y = self._leaf_to_cores.get(leaf_y)
        if not cores_x or not cores_y:
            return []
        if len(cores_x) > len(cores_y):
            cores_x, cores_y = cores_y, cores_x
        return [core for core in cores_x if core in cores_y]

    # ------------------------------------------------------------------
    # Merge mechanics
    # ------------------------------------------------------------------

    def merge_stats(self, leaf_x: LeafKey, leaf_y: LeafKey) -> List[CoresetMergeStats]:
        """Per-coreset ``(fe, xe, ye, xye)`` without mutating the DB."""
        stats = []
        rows = self._rows
        freq = self._core_freq
        masks = self._masks
        for core in self.common_coresets(leaf_x, leaf_y):
            px = rows[(core, leaf_x)]
            py = rows[(core, leaf_y)]
            stats.append(
                CoresetMergeStats(
                    coreset=core,
                    fe=freq[core],
                    xe=masks.popcount(px),
                    ye=masks.popcount(py),
                    xye=masks.and_count(px, py),
                )
            )
        return stats

    def merge(self, leaf_x: LeafKey, leaf_y: LeafKey) -> MergeOutcome:
        """Merge two leafsets globally across all common coresets.

        For every common coreset ``e`` with a non-empty position
        intersection, the intersection moves into the row
        ``(e, leaf_x | leaf_y)`` and is removed from both source rows;
        emptied rows are dropped.  Returns the :class:`MergeOutcome`
        describing what happened.
        """
        if leaf_x == leaf_y:
            raise MiningError("cannot merge a leafset with itself")
        if leaf_x not in self._leaf_to_cores or leaf_y not in self._leaf_to_cores:
            raise MiningError("both leafsets must exist in the database")
        new_leaf = leaf_x | leaf_y
        # Register the merged leafset now: merge order is deterministic,
        # so first-sight ids stay deterministic too.
        new_id = self._interner.intern(new_leaf)
        intern = self._interner.intern
        self._merge_index += 1
        epoch = self._merge_index
        # The construction-order row list is only valid pre-merge.
        self._initial_row_order = None
        outcome = MergeOutcome(leaf_x=leaf_x, leaf_y=leaf_y, new_leafset=new_leaf)
        masks = self._masks
        union_x = masks.empty()
        union_y = masks.empty()
        union_new = masks.empty()
        touched = False
        row_freq = self._row_freq
        core_rows_x: List[Tuple[CoreKey, Mask]] = []
        core_rows_y: List[Tuple[CoreKey, Mask]] = []
        core_rows_new: List[Tuple[CoreKey, Mask]] = []
        for core in sorted(self.common_coresets(leaf_x, leaf_y), key=_key_of):
            px = self._rows[(core, leaf_x)]
            py = self._rows[(core, leaf_y)]
            inter = masks.and_(px, py)
            count = masks.popcount(inter)
            outcome.stats.append(
                CoresetMergeStats(
                    coreset=core,
                    fe=self._core_freq[core],
                    xe=row_freq[(core, leaf_x)],
                    ye=row_freq[(core, leaf_y)],
                    xye=count,
                )
            )
            if not count:
                continue
            touched = True
            self._core_epoch[core] = epoch
            union_x = masks.or_(union_x, px)
            union_y = masks.or_(union_y, py)
            core_rows_x.append((core, px))
            core_rows_y.append((core, py))
            target_key = (core, new_leaf)
            target = self._rows.get(target_key)
            if target is None:
                self._rows[target_key] = inter
                row_freq[target_key] = count
                union_new = masks.or_(union_new, inter)
                core_rows_new.append((core, inter))
                self._leaf_to_cores.setdefault(new_leaf, {})[core] = None
                self._core_to_leaves.setdefault(core, set()).add(new_leaf)
                insort(self._core_leaf_ids[core], new_id)
            else:
                # Disjointness holds because per (coreset, vertex) each
                # leaf value is covered by exactly one row.
                merged = masks.or_(target, inter)
                self._rows[target_key] = merged
                row_freq[target_key] += count
                union_new = masks.or_(union_new, merged)
                core_rows_new.append((core, merged))
            # Each merged position replaces two row usages by one.
            self._core_freq[core] -= count
            for leaf, remaining in (
                (leaf_x, masks.andnot(px, inter)),
                (leaf_y, masks.andnot(py, inter)),
            ):
                if not masks.is_empty(remaining):
                    self._rows[(core, leaf)] = remaining
                    row_freq[(core, leaf)] -= count
                else:
                    del self._rows[(core, leaf)]
                    del row_freq[(core, leaf)]
                    self._core_to_leaves[core].discard(leaf)
                    self._core_leaf_ids[core].remove(intern(leaf))
                    if not self._core_to_leaves[core]:
                        del self._core_to_leaves[core]
                        del self._core_leaf_ids[core]
                    cores = self._leaf_to_cores[leaf]
                    cores.pop(core, None)
                    if not cores:
                        del self._leaf_to_cores[leaf]
                        del self._leaf_union[leaf]
                        outcome.removed_leafsets.add(leaf)
        if touched:
            outcome.touched_row_unions = {
                leaf_x: union_x,
                leaf_y: union_y,
                new_leaf: union_new,
            }
            outcome.touched_core_rows = {
                leaf_x: core_rows_x,
                leaf_y: core_rows_y,
                new_leaf: core_rows_new,
            }
            self._leaf_epoch[leaf_x] = epoch
            self._leaf_epoch[leaf_y] = epoch
            self._leaf_epoch[new_leaf] = epoch
        # Refresh the union masks of the leafsets the merge touched.
        for leaf in (leaf_x, leaf_y, new_leaf):
            cores = self._leaf_to_cores.get(leaf)
            if cores:
                union = masks.empty()
                for core in cores:
                    union = masks.or_(union, self._rows[(core, leaf)])
                self._leaf_union[leaf] = union
        return outcome

    def leaf_union_mask(self, leaf: LeafKey) -> Mask:
        """Union bitmask of the leafset's positions over all coresets.

        An empty mask (of the database's backend) when the leafset has
        no rows.
        """
        found = self._leaf_union.get(leaf)
        return found if found is not None else self._masks.empty()

    # ------------------------------------------------------------------
    # Validation / export
    # ------------------------------------------------------------------

    def validate(self, graph: Optional[AttributedGraph] = None) -> None:
        """Check structural invariants; raise :class:`MiningError` if broken.

        With ``graph`` given, also checks losslessness for singleton
        coresets: the union of rows reconstructs exactly the initial
        (core value, vertex) -> adjacent-leaf-values relation.
        """
        masks = self._masks
        recomputed: Dict[CoreKey, int] = {}
        for (core, leaf), bits in self._rows.items():
            if masks.is_empty(bits):
                raise MiningError(f"empty row {(core, leaf)}")
            if core not in self._leaf_to_cores.get(leaf, ()):
                raise MiningError(f"index out of sync for row {(core, leaf)}")
            count = masks.popcount(bits)
            if self._row_freq.get((core, leaf)) != count:
                raise MiningError(f"stale row frequency for {(core, leaf)}")
            recomputed[core] = recomputed.get(core, 0) + count
        if set(self._row_freq) != set(self._rows):
            raise MiningError("row frequency index out of sync with rows")
        active = {c: f for c, f in self._core_freq.items() if f > 0}
        if recomputed != active:
            raise MiningError("coreset frequencies out of sync with rows")
        for leaf, cores in self._leaf_to_cores.items():
            for core in cores:
                if (core, leaf) not in self._rows:
                    raise MiningError(f"dangling index entry {(core, leaf)}")
                if leaf not in self._core_to_leaves.get(core, ()):
                    raise MiningError(f"core index missing {(core, leaf)}")
        for core, leaves in self._core_to_leaves.items():
            for leaf in leaves:
                if (core, leaf) not in self._rows:
                    raise MiningError(f"dangling core index entry {(core, leaf)}")
        for leaf, cores in self._leaf_to_cores.items():
            union = masks.empty()
            for core in cores:
                union = masks.or_(union, self._rows[(core, leaf)])
            if not masks.equals(self.leaf_union_mask(leaf), union):
                raise MiningError(f"stale union mask for leafset {set(leaf)}")
        if self._initial_row_order is not None:
            if sorted(self._initial_row_order, key=_row_key_of) != sorted(
                self._rows, key=_row_key_of
            ) or self._initial_row_order != sorted(
                self._initial_row_order, key=_row_key_of
            ):
                raise MiningError("stale initial row order")
        for leaf in self._leaf_to_cores:
            if leaf not in self._interner:
                raise MiningError(f"leafset {set(leaf)} missing from interner")
        if set(self._core_leaf_ids) != set(self._core_to_leaves):
            raise MiningError("coreset id-list index out of sync with adjacency")
        for core, leaves in self._core_to_leaves.items():
            expected_ids = sorted(self._interner.intern(leaf) for leaf in leaves)
            if self._core_leaf_ids[core] != expected_ids:
                raise MiningError(
                    f"stale sorted id list for coreset {set(core)}"
                )
        if graph is not None:
            self._validate_lossless(graph)

    def _validate_lossless(self, graph: AttributedGraph) -> None:
        """Cover uniqueness + exact reconstruction for singleton coresets."""
        covered: Dict[Tuple[CoreKey, Vertex], Set[Value]] = {}
        for core, leaf, positions in self.rows():
            for vertex in positions:
                slot = covered.setdefault((core, vertex), set())
                if slot & leaf:
                    raise MiningError(
                        f"leaf values {slot & leaf} covered twice at "
                        f"vertex {vertex!r} for coreset {set(core)}"
                    )
                slot |= leaf
        for (core, vertex), values in covered.items():
            if len(core) != 1:
                continue
            (core_value,) = core
            if core_value not in graph.attributes_of(vertex):
                raise MiningError(
                    f"row places coreset {set(core)} at vertex {vertex!r} "
                    "which does not carry it"
                )
            expected = graph.neighbor_values(vertex)
            if values != expected:
                raise MiningError(
                    f"reconstruction mismatch at vertex {vertex!r}: "
                    f"covered {values} != neighbourhood {set(expected)}"
                )

    def snapshot(self) -> Dict[RowKey, FrozenSet[Vertex]]:
        """An immutable copy of all rows (for tests and debugging)."""
        return {key: self._to_vertices(bits) for key, bits in self._rows.items()}

    def copy(self) -> "InvertedDatabase":
        """An independent deep copy (merges on it leave self intact).

        Mask values are shared, not duplicated: every post-construction
        mask operation is pure (see :mod:`repro.core.masks.base`), so
        merging on either copy replaces masks instead of mutating them.
        """
        db = InvertedDatabase(mask_backend=self._masks)
        db._rows = dict(self._rows)
        db._leaf_to_cores = {
            leaf: dict(cores) for leaf, cores in self._leaf_to_cores.items()
        }
        db._core_to_leaves = {
            core: set(leaves) for core, leaves in self._core_to_leaves.items()
        }
        db._core_freq = dict(self._core_freq)
        db._vertex_ids = list(self._vertex_ids)
        db._vertex_bit = dict(self._vertex_bit)
        db._leaf_union = dict(self._leaf_union)
        db._interner = self._interner.copy()
        db._core_leaf_ids = {
            core: list(ids) for core, ids in self._core_leaf_ids.items()
        }
        db._row_freq = dict(self._row_freq)
        db._merge_index = self._merge_index
        db._core_epoch = dict(self._core_epoch)
        db._leaf_epoch = dict(self._leaf_epoch)
        db._vertex_order_frozen = self._vertex_order_frozen
        db._initial_row_order = (
            list(self._initial_row_order)
            if self._initial_row_order is not None
            else None
        )
        return db

    def restricted_copy(self, leafsets: Iterable[LeafKey]) -> "InvertedDatabase":
        """An independent database holding only ``leafsets`` and their rows.

        The sub-database behind the component-sharded search: given a
        *coreset-closed* leafset set (every coreset reachable from a
        member has all of its leafsets in the set — exactly what a
        connected component of the coreset-sharing graph is), the copy
        behaves identically to the full database restricted to those
        leafsets: same rows, same coreset frequencies, and a fresh
        interner whose first-sight ids are the repr-sorted order of the
        member leafsets — order-isomorphic to the parent's ids
        restricted to the set, so pair tie-breaks agree.  Mask values,
        the vertex->bit table and the vertex order are shared (all
        post-construction mask ops are pure).  Epochs restart at zero.

        Raises :class:`MiningError` when the set is not coreset-closed
        (a merge outside the set could then change these rows' gains).
        """
        keep = set(leafsets)
        db = InvertedDatabase(mask_backend=self._masks)
        db._vertex_ids = self._vertex_ids
        db._vertex_bit = self._vertex_bit
        db._vertex_order_frozen = True
        rows = db._rows
        row_freq = db._row_freq
        cores: Set[CoreKey] = set()
        for leaf in keep:
            leaf_cores = self._leaf_to_cores.get(leaf)
            if leaf_cores is None:
                raise MiningError(
                    f"leafset {set(leaf)} not present in the database"
                )
            db._leaf_to_cores[leaf] = dict(leaf_cores)
            db._leaf_union[leaf] = self._leaf_union[leaf]
            cores.update(leaf_cores)
            for core in leaf_cores:
                key = (core, leaf)
                rows[key] = self._rows[key]
                row_freq[key] = self._row_freq[key]
        for core in cores:
            members = self._core_to_leaves[core]
            if not members <= keep:
                raise MiningError(
                    "restricted_copy requires a coreset-closed leafset set: "
                    f"coreset {set(core)} has leafsets outside it"
                )
            db._core_to_leaves[core] = set(members)
            db._core_freq[core] = self._core_freq[core]
        ordered = sorted(db._leaf_to_cores, key=_key_of)
        db._interner.intern_all(ordered)
        intern = db._interner.intern
        db._core_leaf_ids = {
            core: sorted(intern(leaf) for leaf in leaves)
            for core, leaves in db._core_to_leaves.items()
        }
        return db

    def __repr__(self) -> str:
        return (
            f"InvertedDatabase(rows={len(self._rows)}, "
            f"leafsets={len(self._leaf_to_cores)}, "
            f"coresets={len(self.coresets())}, s={self.total_frequency()})"
        )


# The deterministic frozenset sort key.  This must be *the same
# function* ``mdl._sorted_rows`` sorts by: ``from_graph`` records its
# row order under this key and ``initial_description_length`` promises
# byte-identical floats to the ``_sorted_rows``-ordered recompute, so
# the two orders may never drift apart.
_key_of = leafset_sort_key


def _row_key_of(row: RowKey) -> Tuple[Tuple, Tuple]:
    """Deterministic sort key for ``(coreset, leafset)`` row keys."""
    return (_key_of(row[0]), _key_of(row[1]))
