"""The a-star scoring module for node attribute completion (Algorithm 5).

Given the mined model ``M`` and a node ``v`` with missing attribute
values, every a-star is compared against the attribute values observed
on ``v``'s neighbours: a leafset that matches the neighbourhood well
gets a small weight ``w``, hence a score ``cl = -w * L(Scode)`` close
to zero, and its core values become likely completions for ``v``.

The paper leaves ``similarity`` unspecified; we use leafset containment
``|SL & N| / |SL|`` and map it to the weight ``w = 2 - containment``
(so a perfectly matching leafset halves the penalty of a fully
mismatched one).  The choice is documented in DESIGN.md and covered by
tests that check the required monotonicity: better-matching leafsets
never score worse.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Union

from repro.core.astar import AStar
from repro.core.miner import CSPMResult
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph

Value = Hashable


def leafset_weight(leafset: FrozenSet[Value], neighbour_values: FrozenSet[Value]) -> float:
    """The Algorithm 5 weight ``w``: larger when the leafset mismatches.

    ``w = 2 - |SL & N| / |SL|`` lies in [1, 2]; a full match gives 1,
    a complete mismatch gives 2.
    """
    if not leafset:
        return 2.0
    containment = len(leafset & neighbour_values) / len(leafset)
    return 2.0 - containment


class AStarScorer:
    """Scores candidate attribute values for a node (Algorithm 5)."""

    def __init__(self, model: Union[CSPMResult, Sequence[AStar]]) -> None:
        astars = list(model.astars if isinstance(model, CSPMResult) else model)
        if not astars:
            raise MiningError("the a-star model is empty")
        self._astars: List[AStar] = astars
        values = set()
        for star in astars:
            values |= star.coreset
        self._core_values = frozenset(values)

    @property
    def core_values(self) -> FrozenSet[Value]:
        """All values that can receive a (finite) score."""
        return self._core_values

    def score(
        self,
        graph: AttributedGraph,
        vertex,
        neighbour_values: Optional[Iterable[Value]] = None,
    ) -> Dict[Value, float]:
        """Scores for all candidate attribute values of ``vertex``.

        ``neighbour_values`` overrides the neighbourhood lookup (useful
        when the graph object does not hold the observed attributes).
        Returns a dict value -> score; higher is more likely.  Values
        never seen as core values are absent (score ``-inf`` in the
        paper's formulation).
        """
        if neighbour_values is None:
            observed = graph.neighbor_values(vertex)
        else:
            observed = frozenset(neighbour_values)
        scores: Dict[Value, float] = {}
        for star in self._astars:
            weight = leafset_weight(star.leafset, observed)
            cl = -weight * star.code_length
            for value in star.coreset:
                best = scores.get(value, -math.inf)
                if cl > best:
                    scores[value] = cl
        return scores

    def score_array(
        self,
        value_order: Sequence[Value],
        graph: AttributedGraph,
        vertex,
        neighbour_values: Optional[Iterable[Value]] = None,
    ) -> List[float]:
        """Scores aligned with ``value_order`` (``-inf`` for unseen)."""
        scores = self.score(graph, vertex, neighbour_values)
        return [scores.get(value, -math.inf) for value in value_order]
