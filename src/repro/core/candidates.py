"""Candidate pairs of leafsets and the priority queue over their gains.

A *candidate* is an unordered pair of leafsets with a positive merge
gain (Algorithm 2).  :class:`CandidateQueue` keeps candidates ordered
by descending gain with deterministic tie-breaking, supporting the
update/discard operations needed by CSPM-Partial (Algorithm 4).
"""

from __future__ import annotations

import heapq
import itertools
from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Tuple

LeafKey = FrozenSet[Hashable]
Pair = Tuple[LeafKey, LeafKey]


@lru_cache(maxsize=None)
def leafset_sort_key(leaf: LeafKey) -> Tuple[str, ...]:
    """Deterministic, hash-independent ordering key for a leafset.

    Cached: the same (immutable) leafsets are compared many times
    during candidate maintenance.
    """
    return tuple(sorted(map(repr, leaf)))


def canonical_pair(leaf_x: LeafKey, leaf_y: LeafKey) -> Pair:
    """The unordered pair in canonical (sorted) order."""
    if leafset_sort_key(leaf_x) <= leafset_sort_key(leaf_y):
        return (leaf_x, leaf_y)
    return (leaf_y, leaf_x)


def pair_sort_key(pair: Pair) -> Tuple:
    return (leafset_sort_key(pair[0]), leafset_sort_key(pair[1]))


def enumerate_pairs(leafsets: Iterable[LeafKey]) -> Iterator[Pair]:
    """All unordered pairs, in deterministic order (Alg. 2, line 2)."""
    ordered = sorted(leafsets, key=leafset_sort_key)
    for leaf_x, leaf_y in itertools.combinations(ordered, 2):
        yield (leaf_x, leaf_y)


class CandidateQueue:
    """Max-gain priority queue with lazy deletion.

    Entries are ``(-gain, tiebreak, version, pair)`` in a binary heap;
    a side table maps each pair to its current gain and version so
    stale heap entries are skipped on pop.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, Tuple, int, Pair]] = []
        self._current: Dict[Pair, Tuple[float, int]] = {}
        self._version = 0

    def __len__(self) -> int:
        return len(self._current)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._current

    def gain_of(self, pair: Pair) -> Optional[float]:
        entry = self._current.get(pair)
        return entry[0] if entry else None

    def pairs(self) -> List[Pair]:
        return list(self._current)

    def set(self, pair: Pair, gain: float) -> None:
        """Insert ``pair`` or update its gain."""
        self._version += 1
        self._current[pair] = (gain, self._version)
        heapq.heappush(self._heap, (-gain, pair_sort_key(pair), self._version, pair))

    def discard(self, pair: Pair) -> None:
        """Remove ``pair`` if present (lazy: heap entry becomes stale)."""
        self._current.pop(pair, None)

    def peek(self) -> Optional[Tuple[Pair, float]]:
        """The best live candidate without removing it."""
        self._drop_stale()
        if not self._heap:
            return None
        neg_gain, _key, _version, pair = self._heap[0]
        return pair, -neg_gain

    def pop(self) -> Optional[Tuple[Pair, float]]:
        """Remove and return the best live candidate, or ``None``."""
        self._drop_stale()
        if not self._heap:
            return None
        neg_gain, _key, _version, pair = heapq.heappop(self._heap)
        del self._current[pair]
        return pair, -neg_gain

    def _drop_stale(self) -> None:
        while self._heap:
            neg_gain, _key, version, pair = self._heap[0]
            entry = self._current.get(pair)
            if entry is not None and entry[1] == version:
                return
            heapq.heappop(self._heap)
