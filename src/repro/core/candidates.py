"""Candidate pairs of leafsets and the priority queue over their gains.

A *candidate* is an unordered pair of leafsets with a positive merge
gain (Algorithm 2).  :class:`CandidateQueue` keeps candidates ordered
by descending gain with deterministic tie-breaking, supporting the
update/discard operations needed by CSPM-Partial (Algorithm 4).

Ordering strategy
-----------------
Canonical pair order and queue tie-breaking need a deterministic,
hash-seed-independent total order over leafsets.  The seed derived one
from ``repr`` strings, which made every comparison a tuple-of-strings
comparison and cached the keys in an unbounded module-level
``lru_cache`` (leaking leafsets across runs in long-lived processes).
Ordering is now provided by :class:`LeafsetInterner`, a *per-database*
registry that assigns each leafset a stable integer id at first sight:
comparisons become integer ops and all ordering state dies with the
database that owns it.  The repr-based :func:`leafset_sort_key` remains
(uncached) for serialisation paths that must stay stable across
processes regardless of interning order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Tuple

LeafKey = FrozenSet[Hashable]
Pair = Tuple[LeafKey, LeafKey]


def leafset_sort_key(leaf: LeafKey) -> Tuple[str, ...]:
    """Deterministic, hash-independent (repr-based) key for a leafset.

    Process-independent, so it anchors serialisation order (MDL sums,
    code-table export, trace records).  Hot-path ordering uses
    :class:`LeafsetInterner` ids instead.
    """
    return tuple(sorted(map(repr, leaf)))


class LeafsetInterner:
    """Per-database registry of stable integer leafset ids.

    Ids are assigned at first sight and never change, so any fixed
    intern order yields a deterministic, hash-seed-independent total
    order over leafsets.  :meth:`repro.core.inverted_db.InvertedDatabase`
    interns its initial leafsets in repr-sorted order (matching the
    seed's ordering exactly at seeding time) and each merged leafset at
    merge time, keeping every downstream comparison an integer op.
    """

    __slots__ = ("_ids", "_leafsets")

    def __init__(self) -> None:
        self._ids: Dict[LeafKey, int] = {}
        self._leafsets: List[LeafKey] = []

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, leaf: LeafKey) -> bool:
        return leaf in self._ids

    def intern(self, leaf: LeafKey) -> int:
        """The id of ``leaf``, assigning the next free id at first sight."""
        ids = self._ids
        found = ids.get(leaf)
        if found is None:
            found = len(self._leafsets)
            ids[leaf] = found
            self._leafsets.append(leaf)
        return found

    def intern_all(self, leafsets: Iterable[LeafKey]) -> None:
        """Intern ``leafsets`` in the given order."""
        for leaf in leafsets:
            self.intern(leaf)

    def leafset_of(self, leaf_id: int) -> LeafKey:
        """The leafset registered under ``leaf_id``."""
        return self._leafsets[leaf_id]

    def sort_key(self, leaf: LeafKey) -> int:
        """Integer ordering key (interns unseen leafsets)."""
        return self.intern(leaf)

    def canonical_pair(self, leaf_x: LeafKey, leaf_y: LeafKey) -> Pair:
        """The unordered pair in canonical (ascending-id) order."""
        if self.intern(leaf_x) <= self.intern(leaf_y):
            return (leaf_x, leaf_y)
        return (leaf_y, leaf_x)

    def pair_key(self, pair: Pair) -> Tuple[int, int]:
        """Integer sort key of a canonical pair."""
        return (self.intern(pair[0]), self.intern(pair[1]))

    def order(self, leafsets: Iterable[LeafKey]) -> List[LeafKey]:
        """``leafsets`` sorted by interned id."""
        return sorted(leafsets, key=self.intern)

    def copy(self) -> "LeafsetInterner":
        clone = LeafsetInterner()
        clone._ids = dict(self._ids)
        clone._leafsets = list(self._leafsets)
        return clone

    def __repr__(self) -> str:
        return f"LeafsetInterner({len(self._ids)} leafsets)"


def canonical_pair(leaf_x: LeafKey, leaf_y: LeafKey) -> Pair:
    """The unordered pair in canonical (repr-sorted) order.

    Registry-free fallback; search code paths use
    :meth:`LeafsetInterner.canonical_pair`.
    """
    if leafset_sort_key(leaf_x) <= leafset_sort_key(leaf_y):
        return (leaf_x, leaf_y)
    return (leaf_y, leaf_x)


def pair_sort_key(pair: Pair) -> Tuple:
    return (leafset_sort_key(pair[0]), leafset_sort_key(pair[1]))


def enumerate_pairs(
    leafsets: Iterable[LeafKey],
    interner: Optional[LeafsetInterner] = None,
) -> Iterator[Pair]:
    """All unordered pairs, in deterministic order (Alg. 2, line 2).

    With an ``interner``, ordering (and hence tie-breaking downstream)
    follows interned ids; without one it falls back to repr order.
    This is the quadratic full scan — the sparse-aware generator is
    :func:`repro.core.pairgen.overlap_pairs`.
    """
    key = interner.sort_key if interner is not None else leafset_sort_key
    ordered = sorted(leafsets, key=key)
    for leaf_x, leaf_y in itertools.combinations(ordered, 2):
        yield (leaf_x, leaf_y)


class CandidateQueue:
    """Max-gain priority queue with lazy deletion and entry payloads.

    Entries are ``(-gain, tiebreak, version, pair)`` in a binary heap;
    a side table maps each pair to its current gain, version and an
    opaque payload so stale heap entries are skipped on pop.  With an
    ``interner`` the tiebreak is an ``(id, id)`` integer tuple; without
    one it falls back to repr-based keys.

    The payload carries whatever the caller needs to revalidate an
    entry lazily — CSPM-Partial's lazy scope stores the full gain
    breakdown plus the merge epoch it was computed at, so a pair that
    reaches the queue head with no common coreset touched since then is
    merged without recomputing anything (its stored gain is exact), and
    every other entry remains a sound upper bound until it surfaces.
    ``peak_size`` records the high-water mark of live candidates (read
    by the perf harness).
    """

    def __init__(self, interner: Optional[LeafsetInterner] = None) -> None:
        self._heap: List[Tuple[float, Tuple, int, Pair]] = []
        self._current: Dict[Pair, Tuple[float, int, object]] = {}
        self._version = 0
        self._pair_key = interner.pair_key if interner is not None else pair_sort_key
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self._current)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._current

    def gain_of(self, pair: Pair) -> Optional[float]:
        entry = self._current.get(pair)
        return entry[0] if entry else None

    def payload_of(self, pair: Pair) -> object:
        """The payload stored with ``pair`` (``None`` if absent)."""
        entry = self._current.get(pair)
        return entry[2] if entry else None

    def pairs(self) -> List[Pair]:
        return list(self._current)

    def set(self, pair: Pair, gain: float, payload: object = None) -> None:
        """Insert ``pair`` or update its gain (and payload)."""
        self._version += 1
        self._current[pair] = (gain, self._version, payload)
        heapq.heappush(self._heap, (-gain, self._pair_key(pair), self._version, pair))
        if len(self._current) > self.peak_size:
            self.peak_size = len(self._current)

    def set_many(
        self, entries: Iterable[Tuple[Pair, float, object]]
    ) -> None:
        """Insert or update a batch of ``(pair, gain, payload)`` entries.

        Equivalent to calling :meth:`set` once per entry in order —
        versions, heap content and the peak-size high-water mark come
        out identical — but the refresh loops hand the queue one batch
        per merge instead of one call per pair, keeping per-call
        dispatch out of the hot path.
        """
        heap = self._heap
        current = self._current
        pair_key = self._pair_key
        version = self._version
        push = heapq.heappush
        for pair, gain, payload in entries:
            version += 1
            current[pair] = (gain, version, payload)
            push(heap, (-gain, pair_key(pair), version, pair))
            if len(current) > self.peak_size:
                self.peak_size = len(current)
        self._version = version

    def discard(self, pair: Pair) -> None:
        """Remove ``pair`` if present (lazy: heap entry becomes stale)."""
        self._current.pop(pair, None)

    def peek(self) -> Optional[Tuple[Pair, float]]:
        """The best live candidate without removing it."""
        self._drop_stale()
        if not self._heap:
            return None
        neg_gain, _key, _version, pair = self._heap[0]
        return pair, -neg_gain

    def pop(self) -> Optional[Tuple[Pair, float]]:
        """Remove and return the best live candidate, or ``None``."""
        entry = self.pop_entry()
        if entry is None:
            return None
        return entry[0], entry[1]

    def pop_entry(self) -> Optional[Tuple[Pair, float, object]]:
        """Like :meth:`pop` but also returns the entry's payload."""
        self._drop_stale()
        if not self._heap:
            return None
        neg_gain, _key, _version, pair = heapq.heappop(self._heap)
        payload = self._current.pop(pair)[2]
        return pair, -neg_gain, payload

    def _drop_stale(self) -> None:
        while self._heap:
            neg_gain, _key, version, pair = self._heap[0]
            entry = self._current.get(pair)
            if entry is not None and entry[1] == version:
                return
            heapq.heappop(self._heap)
