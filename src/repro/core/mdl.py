"""MDL accounting: Eq. 1-8 of the paper, as a *reference* implementation.

The search procedures use the incremental gain of
:mod:`repro.core.gain`; this module recomputes description lengths from
scratch so tests can assert that the incremental bookkeeping matches
the definitions exactly.

Cost model
----------

``L(M, I) = L(M) + L(I|M)`` (Eq. 1) with:

* ``L(M) = L(CTc|I) + L(CTL|I)`` (Eq. 2).  Each CTc entry costs the ST
  codes of its core values plus its own code ``Code_c``.  Each CTL row
  costs the ST codes of its leaf values plus the pointer to its coreset
  (``Code_c``).  Following the paper's gain derivation (Section IV-E),
  the code-*column* lengths (``Code_L``) are not charged to the model —
  they are fully determined by ``fL/fc`` and accounted on the data side.
* ``L(I|M)`` is the conditional-entropy data cost of Eq. 8:
  ``sum_j c_j log2 c_j - sum_ij l_ij log2 l_ij`` (the ``Code_L`` part of
  Eq. 3), plus the coreset-code part ``sum_rows fL * Code_c(Sc)``
  reported separately as ``data_core_bits``.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from repro.core.candidates import leafset_sort_key
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.inverted_db import InvertedDatabase


def xlog2x(x: float) -> float:
    """``x * log2(x)`` with the standard convention ``0 * log 0 = 0``."""
    if x <= 0:
        return 0.0
    return x * math.log2(x)


@dataclass(frozen=True)
class DescriptionLength:
    """A breakdown of the total description length, in bits."""

    model_core_bits: float
    model_leaf_bits: float
    data_leaf_bits: float
    data_core_bits: float

    @property
    def model_bits(self) -> float:
        """``L(M)`` (Eq. 2)."""
        return self.model_core_bits + self.model_leaf_bits

    @property
    def data_bits(self) -> float:
        """``L(I|M)`` (Eq. 3)."""
        return self.data_leaf_bits + self.data_core_bits

    @property
    def total_bits(self) -> float:
        """``L(M, I)`` (Eq. 1)."""
        return self.model_bits + self.data_bits

    def to_dict(self) -> Dict[str, Any]:
        """The four component fields, JSON-ready."""
        return asdict(self)

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "DescriptionLength":
        """Rebuild a breakdown from :meth:`to_dict` output."""
        return cls(
            model_core_bits=document["model_core_bits"],
            model_leaf_bits=document["model_leaf_bits"],
            data_leaf_bits=document["data_leaf_bits"],
            data_core_bits=document["data_core_bits"],
        )

    def __str__(self) -> str:
        return (
            f"L(M,I)={self.total_bits:.2f} bits "
            f"[model={self.model_bits:.2f} (core={self.model_core_bits:.2f}, "
            f"leaf={self.model_leaf_bits:.2f}), data={self.data_bits:.2f} "
            f"(leaf={self.data_leaf_bits:.2f}, core={self.data_core_bits:.2f})]"
        )


def _sorted_rows(db: InvertedDatabase):
    """Rows in a hash-seed-independent order.

    Floating-point sums depend on term order, and set/dict iteration
    order varies with ``PYTHONHASHSEED``; sorting here makes every
    *recomputed* description length (``initial_dl``/``final_dl`` and
    the per-a-star code lengths) bit-for-bit reproducible across
    processes — the serialised results and the CLI golden file rely on
    this.  The per-iteration trace bits are accumulated incrementally
    through the unsorted hot gain loop and may still differ in the
    last ulp on large graphs.
    """
    return sorted(
        db.row_items(),
        key=lambda item: (leafset_sort_key(item[0]), leafset_sort_key(item[1])),
    )


def data_leaf_bits(db: InvertedDatabase, rows=None) -> float:
    """Eq. 8: ``sum_j c_j log2 c_j - sum_ij l_ij log2 l_ij``.

    ``rows`` may carry an already-sorted row list (from
    :func:`_sorted_rows`) to avoid re-sorting.
    """
    total = 0.0
    for core in sorted(db.coresets(), key=leafset_sort_key):
        total += xlog2x(db.coreset_frequency(core))
    for _core, _leaf, frequency in rows if rows is not None else _sorted_rows(db):
        total -= xlog2x(frequency)
    return total


def conditional_entropy(db: InvertedDatabase) -> float:
    """``H(Y|X)`` of Eq. 7 over the live inverted database.

    The identity ``L(I|M) == s * H(Y|X)`` (Eq. 8) is covered by tests.
    Rows are summed in the canonical sorted order so the float result
    is identical for any ``PYTHONHASHSEED`` / insertion order (DET001).
    """
    s = db.total_frequency()
    if s == 0:
        return 0.0
    entropy = 0.0
    for core, _leaf, l_ij in _sorted_rows(db):
        c_j = db.coreset_frequency(core)
        entropy -= (l_ij / s) * math.log2(l_ij / c_j)
    return entropy


def description_length(
    db: InvertedDatabase,
    standard_table: StandardCodeTable,
    core_table: Optional[CoreCodeTable] = None,
    rows=None,
) -> DescriptionLength:
    """Recompute the full DL breakdown from scratch (Eq. 1-8).

    Sums run in sorted order so the result is identical for any
    ``PYTHONHASHSEED`` — see :func:`_sorted_rows` and
    :meth:`StandardCodeTable.set_cost`.  ``rows`` may carry the
    ``(core, leaf, frequency)`` triples *already in that canonical
    order* (e.g. from the database's construction-order record) to
    skip the global sort; the summation order — and hence every float —
    is identical either way.
    """
    if rows is None:
        rows = _sorted_rows(db)
    model_core = 0.0
    if core_table is not None:
        for coreset in sorted(core_table.coresets(), key=leafset_sort_key):
            model_core += standard_table.set_cost(coreset)
            model_core += core_table.code_length(coreset)
    model_leaf = 0.0
    data_core = 0.0
    # Per-leafset/per-coreset cost memos: ``set_cost``/``code_length``
    # are pure, so reusing the exact float per distinct key changes
    # nothing while cutting the dominant per-row cost (initial rows
    # share a handful of singleton leafsets).
    leaf_cost: Dict[Any, float] = {}
    pointer_of: Dict[Any, float] = {}
    for core, leaf, frequency in rows:
        cost = leaf_cost.get(leaf)
        if cost is None:
            cost = leaf_cost[leaf] = standard_table.set_cost(leaf)
        model_leaf += cost
        if core_table is not None:
            pointer = pointer_of.get(core)
            if pointer is None:
                pointer = pointer_of[core] = core_table.code_length(core)
            model_leaf += pointer
            data_core += frequency * pointer
    return DescriptionLength(
        model_core_bits=model_core,
        model_leaf_bits=model_leaf,
        data_leaf_bits=data_leaf_bits(db, rows=rows),
        data_core_bits=data_core,
    )


def initial_description_length(
    db: InvertedDatabase,
    standard_table: StandardCodeTable,
    core_table: Optional[CoreCodeTable] = None,
) -> DescriptionLength:
    """The freshly-built database's DL without a global row sort.

    ``InvertedDatabase.from_graph`` records its row keys in canonical
    (coreset, leafset) sorted order as each coreset finalises — the
    same order :func:`_sorted_rows` would produce — so the Eq. 1-8
    terms can be summed straight over that record.  Byte-identical to
    :func:`description_length` (tests assert it); falls back to the
    full recompute when the record is unavailable (e.g. after a
    merge or on a hand-built database).
    """
    order = db.initial_row_order()
    if order is None:
        return description_length(db, standard_table, core_table)
    frequency_of = db.row_frequency
    rows = [(core, leaf, frequency_of(core, leaf)) for core, leaf in order]
    return description_length(db, standard_table, core_table, rows=rows)


def row_code_length(db: InvertedDatabase, core, leaf) -> float:
    """``L(Code_L)`` of a row: ``-log2(fL / fc)`` (Eq. 6)."""
    f_l = db.row_frequency(core, leaf)
    f_c = db.coreset_frequency(core)
    if f_l <= 0 or f_c <= 0:
        raise ValueError("row does not exist")
    return -math.log2(f_l / f_c)


def astar_code_length(
    db: InvertedDatabase, core_table: CoreCodeTable, core, leaf
) -> float:
    """``L(Scode) = L(Code_c) + L(Code_L)`` (Eq. 4)."""
    return core_table.code_length(core) + row_code_length(db, core, leaf)
