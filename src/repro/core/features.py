"""A-star features for graph-level learning (paper, future work 1).

The paper's conclusion proposes using mined a-stars for "other
graph-related learning problems such as graph classification".  This
module implements the straightforward realisation: a shared a-star
vocabulary is mined from (a sample of) the training graphs, and each
graph is embedded as a vector of pattern signals — occurrence counts
weighted by pattern informativeness (inverse code length).

The resulting fixed-width vectors feed any standard classifier; tests
and the benchmarks use them with a tiny logistic-regression head on the
numpy substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.astar import AStar
from repro.core.dynamic import disjoint_union
from repro.core.miner import CSPM
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph


@dataclass
class AStarFeaturizer:
    """Embeds attributed graphs over a mined a-star vocabulary.

    Parameters
    ----------
    vocabulary_size:
        Number of top-ranked a-stars kept as feature dimensions.
    weight_by_code_length:
        Scale each occurrence count by ``1 / (1 + L(S))`` so that more
        informative (shorter-code) patterns carry more weight.
    normalize:
        Divide each graph's vector by its vertex count, making graphs
        of different sizes comparable.
    """

    vocabulary_size: int = 50
    weight_by_code_length: bool = True
    normalize: bool = True
    miner: Optional[CSPM] = None

    def __post_init__(self) -> None:
        self._vocabulary: List[AStar] = []

    @property
    def vocabulary(self) -> List[AStar]:
        return list(self._vocabulary)

    def fit(self, graphs: Sequence[AttributedGraph]) -> "AStarFeaturizer":
        """Mine the shared vocabulary from the given (training) graphs."""
        if not graphs:
            raise MiningError("need at least one graph to fit the vocabulary")
        union = disjoint_union(graphs)
        result = (self.miner or CSPM()).fit(union)
        self._vocabulary = result.top(self.vocabulary_size)
        if not self._vocabulary:
            raise MiningError("mining produced no patterns")
        return self

    def transform(self, graphs: Sequence[AttributedGraph]) -> np.ndarray:
        """``(len(graphs), vocabulary_size)`` feature matrix."""
        if not self._vocabulary:
            raise MiningError("fit() must be called before transform()")
        matrix = np.zeros((len(graphs), len(self._vocabulary)))
        for row, graph in enumerate(graphs):
            for column, star in enumerate(self._vocabulary):
                count = len(star.occurrences(graph))
                if count == 0:
                    continue
                value = float(count)
                if self.weight_by_code_length:
                    value /= 1.0 + star.code_length
                if self.normalize and graph.num_vertices:
                    value /= graph.num_vertices
                matrix[row, column] = value
        return matrix

    def fit_transform(self, graphs: Sequence[AttributedGraph]) -> np.ndarray:
        return self.fit(graphs).transform(graphs)


class LogisticAStarClassifier:
    """Binary graph classifier over a-star features.

    A deliberately small head (logistic regression trained with plain
    gradient descent) — the point is the feature map, not the model.
    """

    def __init__(
        self,
        featurizer: Optional[AStarFeaturizer] = None,
        epochs: int = 300,
        lr: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.featurizer = featurizer or AStarFeaturizer()
        self.epochs = epochs
        self.lr = lr
        self._rng = np.random.default_rng(seed)
        self._weights: Optional[np.ndarray] = None
        self._bias = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(
        self, graphs: Sequence[AttributedGraph], labels: Sequence[int]
    ) -> "LogisticAStarClassifier":
        labels = np.asarray(labels, dtype=float)
        if len(graphs) != len(labels):
            raise MiningError("one label per graph is required")
        if not set(np.unique(labels)) <= {0.0, 1.0}:
            raise MiningError("labels must be binary (0/1)")
        features = self.featurizer.fit_transform(graphs)
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0) + 1e-9
        x = (features - self._mean) / self._std
        n, d = x.shape
        weights = self._rng.normal(0.0, 0.01, size=d)
        bias = 0.0
        for _ in range(self.epochs):
            logits = x @ weights + bias
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            error = probabilities - labels
            weights -= self.lr * (x.T @ error) / n
            bias -= self.lr * error.mean()
        self._weights = weights
        self._bias = bias
        return self

    def predict_proba(self, graphs: Sequence[AttributedGraph]) -> np.ndarray:
        if self._weights is None:
            raise MiningError("fit() must be called before predict_proba()")
        features = self.featurizer.transform(graphs)
        x = (features - self._mean) / self._std
        logits = x @ self._weights + self._bias
        return 1.0 / (1.0 + np.exp(-logits))

    def predict(self, graphs: Sequence[AttributedGraph]) -> np.ndarray:
        return (self.predict_proba(graphs) >= 0.5).astype(int)

    def score(
        self, graphs: Sequence[AttributedGraph], labels: Sequence[int]
    ) -> float:
        """Classification accuracy."""
        predictions = self.predict(graphs)
        labels = np.asarray(labels)
        return float((predictions == labels).mean())
