"""CSPM-Basic: the unoptimised greedy search (Algorithm 1 + 2).

Each iteration recomputes candidate gains, merges the best positive
pair, and repeats until no pair compresses the database further.  This
is deliberately the paper's baseline search loop: its per-iteration
cost is one gain computation per candidate pair, which is what
Table III and Fig. 5 measure against CSPM-Partial.

Candidate generation is overlap-driven by default
(:func:`repro.core.pairgen.overlap_pairs`): only pairs sharing a
coreset with overlapping positions are generated, since no other pair
can have positive gain.  ``pair_source="full"`` restores the seed's
quadratic ``O(|SL|^2)`` all-pairs scan; both sources enumerate in the
same interned-id order, so the merge sequence (including tie-breaks)
is provably identical — the equivalence tests assert it.

Rescan restriction
------------------
The seed re-scanned *every* candidate pair each iteration.  A merge
only changes state at its touched coresets (the common coresets with a
non-empty positional intersection): only those coresets' rows and
frequencies move, and every gain term requires a non-empty same-coreset
intersection, so a pair's gain can change **iff both its leafsets hold
rows under some touched coreset**.  The default ``rescan="restricted"``
keeps a store of exact positive gains, re-evaluates only the pairs
inside the touched coresets' memberships (plus the merge's surviving
participants) after each merge, and selects the winner from the store
with the same (max gain, earliest interned pair) tie-break as the full
enumeration — merges, DL accounting and snapshots are bit-exact with
``rescan="full"``, while per-iteration ``gains_computed`` drops from
*all* candidates to the touched neighbourhood.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.candidates import LeafKey, Pair
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.gain import GainBreakdown, GainEngine
from repro.core.instrumentation import IterationTrace, RunTrace, merged_pair_record
from repro.core.inverted_db import InvertedDatabase, MergeOutcome
from repro.core.mdl import description_length
from repro.core.pairgen import generate_pairs
from repro.errors import MiningError

GAIN_EPS = 1e-9

RESCANS = ("restricted", "full")

_StoreEntry = Tuple[float, GainBreakdown]


class _GainStore:
    """Exact positive gains of all live candidate pairs.

    A plain dict keyed by canonical pair plus a per-leafset index so
    pairs of a removed leafset can be purged without a full sweep.
    Every entry is exact (recomputed whenever it could have changed),
    so the winner scan reproduces the full enumeration's strictly-
    greater-in-ascending-order selection via the (max gain, smallest
    interned pair key) tie-break.
    """

    __slots__ = ("_entries", "_by_leaf", "_pair_key")

    def __init__(self, pair_key) -> None:
        self._entries: Dict[Pair, _StoreEntry] = {}
        self._by_leaf: Dict[LeafKey, Set[Pair]] = {}
        self._pair_key = pair_key

    def set(self, pair: Pair, gain: float, breakdown: GainBreakdown) -> None:
        if pair not in self._entries:
            self._by_leaf.setdefault(pair[0], set()).add(pair)
            self._by_leaf.setdefault(pair[1], set()).add(pair)
        self._entries[pair] = (gain, breakdown)

    def discard(self, pair: Pair) -> None:
        if self._entries.pop(pair, None) is None:
            return
        for leaf in pair:
            bucket = self._by_leaf.get(leaf)
            if bucket is not None:
                bucket.discard(pair)
                if not bucket:
                    del self._by_leaf[leaf]

    def purge_leafset(self, leaf: LeafKey) -> None:
        """Drop every pair involving ``leaf`` (it left the database)."""
        bucket = self._by_leaf.get(leaf)
        if bucket is None:
            return
        for pair in sorted(bucket, key=self._pair_key):
            self.discard(pair)

    def best(self) -> Optional[Tuple[Pair, float, GainBreakdown]]:
        """The (pair, gain, breakdown) winner, or ``None`` when empty.

        Maximum gain; ties resolved towards the smallest interned pair
        key — the pair the ascending enumeration would have seen first,
        which the seed's strict ``>`` comparison kept.
        """
        pair_key = self._pair_key
        best_pair = None
        best_gain = GAIN_EPS
        best_entry = None
        best_key = None
        for pair, entry in self._entries.items():
            gain = entry[0]
            if gain > best_gain:
                best_pair, best_gain, best_entry = pair, gain, entry
                best_key = pair_key(pair)
            elif gain == best_gain and best_pair is not None:
                key = pair_key(pair)
                if key < best_key:
                    best_pair, best_entry, best_key = pair, entry, key
        if best_pair is None:
            return None
        return best_pair, best_gain, best_entry[1]


def _rescan_pairs(db: InvertedDatabase, outcome: MergeOutcome) -> List[Pair]:
    """The pairs whose gain the last merge could have changed.

    For each touched coreset, all pairs within its current membership
    plus the merge's surviving participants (a survivor may have left a
    coreset's membership when its row there was fully absorbed, yet its
    pairs against the remaining members changed).  Non-participant
    memberships are untouched, so current membership plus the survivors
    reconstructs the pre-merge membership exactly; any pair outside
    every touched coreset has a zero per-coreset intersection at every
    coreset that moved, hence a bit-identical gain.
    """
    interner = db.interner
    survivors = [
        leaf for leaf in (outcome.leaf_x, outcome.leaf_y) if db.has_leafset(leaf)
    ]
    pairs: Set[Pair] = set()
    for core in outcome.touched_coresets:
        pool = set(db.leafsets_of(core))
        pool.update(survivors)
        ordered = interner.order(pool)
        for index, leaf_a in enumerate(ordered):
            for leaf_b in ordered[index + 1 :]:
                pairs.add((leaf_a, leaf_b))
    return sorted(pairs, key=interner.pair_key)


def _rescan_store(
    db: InvertedDatabase,
    engine: GainEngine,
    include_model_cost: bool,
    outcome: MergeOutcome,
    store: "_GainStore",
) -> int:
    """Re-evaluate the touched neighbourhood of ``outcome`` into ``store``.

    Each candidate pair from :func:`_rescan_pairs` passes two exact
    prefilters before paying for a gain computation:

    * disjoint union masks — the gain is provably zero (the same test
      :func:`repro.core.pairgen.overlap_pairs` generates by), so a
      stored entry is dropped without recomputing;
    * no touched coreset where both leafsets' rows positionally
      intersect — every gain term that exists is at a coreset the
      merge did not move, so the stored gain is still exact and the
      pair is skipped outright.  Survivors are tested against their
      *pre-merge* rows (:attr:`MergeOutcome.touched_core_rows`) so a
      term the merge erased still counts as a change.

    Returns the number of gain computations performed.
    """
    backend = db.mask_backend
    overlaps = backend.union_overlaps
    union_of = db.leaf_union_mask
    row_of = db.row_mask
    touched = outcome.touched_coresets
    role_rows = {leaf: dict(rows) for leaf, rows in outcome.touched_core_rows.items()}
    gains = 0
    for pair in _rescan_pairs(db, outcome):
        leaf_a, leaf_b = pair
        if not overlaps(union_of(leaf_a), union_of(leaf_b)):
            store.discard(pair)
            continue
        rows_a = role_rows.get(leaf_a)
        rows_b = role_rows.get(leaf_b)
        for core in touched:
            row_a = rows_a.get(core) if rows_a is not None else row_of(core, leaf_a)
            if row_a is None:
                continue
            row_b = rows_b.get(core) if rows_b is not None else row_of(core, leaf_b)
            if row_b is not None and overlaps(row_a, row_b):
                break
        else:
            continue
        breakdown = engine.gain(leaf_a, leaf_b)
        gains += 1
        gain = breakdown.net(include_model_cost)
        if gain > GAIN_EPS:
            store.set(pair, gain, breakdown)
        else:
            store.discard(pair)
    return gains


def run_basic(
    db: InvertedDatabase,
    standard_table: StandardCodeTable,
    core_table: CoreCodeTable,
    include_model_cost: bool = True,
    max_iterations: Optional[int] = None,
    initial_dl_bits: Optional[float] = None,
    pair_source: str = "overlap",
    rescan: str = "restricted",
) -> RunTrace:
    """Run CSPM-Basic to convergence, mutating ``db`` in place.

    ``initial_dl_bits`` may carry an already-computed starting
    description length to skip the from-scratch pass over the fresh
    database.  ``pair_source`` selects the candidate generator
    (``"overlap"`` default, ``"full"`` reference scan).  ``rescan``
    selects the per-iteration re-evaluation strategy:
    ``"restricted"`` (default) re-evaluates only the touched-coreset
    neighbourhood of the last merge, ``"full"`` is the seed's
    re-enumerate-everything reference — merge sequences, DL accounting
    and snapshots are bit-identical, only ``gains_computed`` differs.
    Returns the :class:`RunTrace` with one entry per accepted merge.
    """
    if rescan not in RESCANS:
        raise MiningError(f"rescan must be one of {RESCANS}, got {rescan!r}")
    trace = RunTrace(algorithm="cspm-basic")
    if initial_dl_bits is None:
        initial_dl_bits = description_length(db, standard_table, core_table).total_bits
    dl = initial_dl_bits
    trace.initial_dl_bits = dl
    engine = GainEngine(db, standard_table, core_table)
    store = _GainStore(db.interner.pair_key) if rescan == "restricted" else None
    outcome: Optional[MergeOutcome] = None
    iteration = 0
    while max_iterations is None or iteration < max_iterations:
        n = db.num_leafsets
        possible = n * (n - 1) // 2
        gains_computed = 0
        best_pair = None
        best_gain = GAIN_EPS
        best_breakdown = None
        if store is None:
            for leaf_x, leaf_y in generate_pairs(db, pair_source):
                breakdown = engine.gain(leaf_x, leaf_y)
                gains_computed += 1
                gain = breakdown.net(include_model_cost)
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (leaf_x, leaf_y)
                    best_breakdown = breakdown
        else:
            if outcome is None:
                # First iteration: seed the store from the full
                # enumeration — every later iteration only re-touches
                # the merged neighbourhood.
                for leaf_x, leaf_y in generate_pairs(db, pair_source):
                    breakdown = engine.gain(leaf_x, leaf_y)
                    gains_computed += 1
                    gain = breakdown.net(include_model_cost)
                    if gain > GAIN_EPS:
                        store.set((leaf_x, leaf_y), gain, breakdown)
            else:
                gains_computed = _rescan_store(
                    db, engine, include_model_cost, outcome, store
                )
            winner = store.best()
            if winner is not None:
                best_pair, best_gain, best_breakdown = winner
        if iteration == 0:
            trace.initial_candidate_gains = gains_computed
        if best_pair is None:
            break
        outcome = db.merge(*best_pair)
        if store is not None:
            store.discard(db.interner.canonical_pair(*best_pair))
            for leaf in db.interner.order(outcome.removed_leafsets):
                store.purge_leafset(leaf)
        dl -= best_breakdown.total
        trace.record_merge_components(best_breakdown)
        iteration += 1
        trace.iterations.append(
            IterationTrace(
                iteration=iteration,
                gains_computed=gains_computed,
                possible_pairs=possible,
                num_leafsets=n,
                merged_pair=merged_pair_record(*best_pair),
                gain=best_gain,
                total_dl_bits=dl,
            )
        )
    trace.final_dl_bits = dl
    return trace
