"""CSPM-Basic: the unoptimised greedy search (Algorithm 1 + 2).

Each iteration re-generates the candidate pairs, recomputes every gain
(Algorithm 2), merges the best positive pair, and repeats until no
pair compresses the database further.  This is deliberately the
paper's baseline search loop: its per-iteration cost is one gain
computation per candidate pair, which is what Table III and Fig. 5
measure against CSPM-Partial.

Candidate generation is overlap-driven by default
(:func:`repro.core.pairgen.overlap_pairs`): only pairs sharing a
coreset with overlapping positions are generated, since no other pair
can have positive gain.  ``pair_source="full"`` restores the seed's
quadratic ``O(|SL|^2)`` all-pairs scan; both sources enumerate in the
same interned-id order, so the merge sequence (including tie-breaks)
is provably identical — the equivalence tests assert it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.gain import GainEngine
from repro.core.instrumentation import IterationTrace, RunTrace, merged_pair_record
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import description_length
from repro.core.pairgen import generate_pairs

GAIN_EPS = 1e-9


def run_basic(
    db: InvertedDatabase,
    standard_table: StandardCodeTable,
    core_table: CoreCodeTable,
    include_model_cost: bool = True,
    max_iterations: Optional[int] = None,
    initial_dl_bits: Optional[float] = None,
    pair_source: str = "overlap",
) -> RunTrace:
    """Run CSPM-Basic to convergence, mutating ``db`` in place.

    ``initial_dl_bits`` may carry an already-computed starting
    description length to skip the from-scratch pass over the fresh
    database.  ``pair_source`` selects the candidate generator
    (``"overlap"`` default, ``"full"`` reference scan).  Returns the
    :class:`RunTrace` with one entry per accepted merge.
    """
    trace = RunTrace(algorithm="cspm-basic")
    if initial_dl_bits is None:
        initial_dl_bits = description_length(db, standard_table, core_table).total_bits
    dl = initial_dl_bits
    trace.initial_dl_bits = dl
    engine = GainEngine(db, standard_table, core_table)
    iteration = 0
    while max_iterations is None or iteration < max_iterations:
        n = db.num_leafsets
        possible = n * (n - 1) // 2
        best_pair = None
        best_gain = GAIN_EPS
        best_breakdown = None
        gains_computed = 0
        for leaf_x, leaf_y in generate_pairs(db, pair_source):
            breakdown = engine.gain(leaf_x, leaf_y)
            gains_computed += 1
            gain = breakdown.net(include_model_cost)
            if gain > best_gain:
                best_gain = gain
                best_pair = (leaf_x, leaf_y)
                best_breakdown = breakdown
        if iteration == 0:
            trace.initial_candidate_gains = gains_computed
        if best_pair is None:
            break
        db.merge(*best_pair)
        dl -= best_breakdown.total
        trace.record_merge_components(best_breakdown)
        iteration += 1
        trace.iterations.append(
            IterationTrace(
                iteration=iteration,
                gains_computed=gains_computed,
                possible_pairs=possible,
                num_leafsets=n,
                merged_pair=merged_pair_record(*best_pair),
                gain=best_gain,
                total_dl_bits=dl,
            )
        )
    trace.final_dl_bits = dl
    return trace
