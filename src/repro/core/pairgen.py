"""Overlap-driven candidate pair generation (the Section V observation).

Only leafset pairs whose position sets overlap under a common coreset
can ever have a positive merge gain: the gain formulas (Eq. 9-15) sum
over common coresets with non-empty position intersections, and every
component vanishes when there are none.  The seed nevertheless seeded
both search variants with the full ``O(|SL|^2)`` pair scan and relied
on the gain engine to short-circuit the disjoint pairs — paying a gain
*evaluation* per pair either way.

This module turns the observation into the generator itself.  Two
enumeration strategies produce the identical candidate set:

* **adjacency walk** — enumerate pairs from the per-coreset sorted
  leafset-id lists that :class:`~repro.core.inverted_db.InvertedDatabase`
  maintains incrementally across merges, deduplicating via packed
  integer pair keys, then drop pairs whose leaf-union masks are
  disjoint.  Cost ``~sum_coreset deg(coreset)^2``.
* **mask sweep** — test every leafset pair with a single AND of the
  leaf-union masks.  Cost ``O(|SL|^2)`` cheap word ops.

The two are equivalent because for databases built by
``InvertedDatabase.from_graph`` the per-vertex cover is identical
across every coreset present at a vertex (initial rows list the whole
neighbourhood for each coreset, and a merge moves a vertex in all of
its coresets simultaneously).  Hence overlapping *union* masks at some
vertex ``v`` imply both leafsets have rows containing ``v`` under each
coreset of ``v`` — a common coreset with positionally overlapping rows
— while the converse is immediate.  :func:`overlap_pairs` picks
whichever strategy is cheaper for the current adjacency (sparse
many-community graphs -> walk; small dense value universes -> sweep),
so generation cost is ``~min(sum deg^2, |SL|^2)``.

Pairs are returned in ascending interned-id order, the exact order
:func:`repro.core.candidates.enumerate_pairs` yields under the same
interner, so greedy tie-breaking is identical to the full scan — the
randomized equivalence tests in ``tests/test_pairgen.py`` assert
merge-sequence and DL bit-exactness for both search variants.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, List, Optional

from repro.core.candidates import LeafsetInterner, Pair

LeafKey = FrozenSet[Hashable]

PAIR_SOURCES = ("overlap", "full")


def overlap_pairs(
    db,
    interner: Optional[LeafsetInterner] = None,
) -> List[Pair]:
    """Candidate pairs that can have positive gain, in canonical order.

    Every returned pair shares at least one coreset with overlapping
    positions; every omitted pair provably has zero data gain.  The
    result is sorted by ``(id_x, id_y)`` — the same total order the
    interner-driven full scan uses — so downstream first-strictly-better
    selection breaks ties identically to ``enumerate_pairs``.
    """
    if interner is None:
        interner = db.interner
    union_of = db.leaf_union_mask
    overlaps = db.mask_backend.union_overlaps
    leaf_of = interner.leafset_of

    leafsets = db.leafsets()
    n = len(leafsets)
    if n < 2:
        return []
    dense_cost = n * (n - 1) // 2
    index = db.coreset_leaf_ids()
    sparse_cost = sum(
        len(ids) * (len(ids) - 1) // 2 for ids in index.values() if len(ids) > 1
    )

    out: List[Pair] = []
    if sparse_cost >= dense_cost:
        # Mask sweep: the adjacency holds no sparsity to exploit.
        ordered = sorted((interner.intern(leaf), leaf) for leaf in leafsets)
        masks = [union_of(leaf) for _id, leaf in ordered]
        for i in range(n - 1):
            mask_i = masks[i]
            leaf_i = ordered[i][1]
            for j in range(i + 1, n):
                if overlaps(mask_i, masks[j]):
                    out.append((leaf_i, ordered[j][1]))
        return out

    # Adjacency walk over the incrementally-maintained per-coreset
    # sorted id lists, deduplicating via packed (id_x, id_y) ints.
    shift = len(interner).bit_length()
    seen = set()
    add = seen.add
    for ids in index.values():
        if len(ids) < 2:
            continue
        for i, id_x in enumerate(ids):
            base = id_x << shift
            for id_y in ids[i + 1 :]:
                add(base | id_y)
    mask_of_id = {}
    low = (1 << shift) - 1
    for key in sorted(seen):
        id_x = key >> shift
        id_y = key & low
        mask_x = mask_of_id.get(id_x)
        if mask_x is None:
            mask_x = mask_of_id[id_x] = union_of(leaf_of(id_x))
        mask_y = mask_of_id.get(id_y)
        if mask_y is None:
            mask_y = mask_of_id[id_y] = union_of(leaf_of(id_y))
        if overlaps(mask_x, mask_y):
            out.append((leaf_of(id_x), leaf_of(id_y)))
    return out


def generate_pairs(
    db,
    pair_source: str = "overlap",
    interner: Optional[LeafsetInterner] = None,
):
    """Dispatch between the overlap generator and the full scan.

    ``pair_source`` is ``"overlap"`` (default: sparse-aware generation)
    or ``"full"`` (the quadratic reference scan, kept for equivalence
    testing and perf baselines).  Both enumerate in the same
    interned-id order.
    """
    from repro.core.candidates import enumerate_pairs
    from repro.errors import MiningError

    if pair_source == "overlap":
        return overlap_pairs(db, interner=interner)
    if pair_source == "full":
        return enumerate_pairs(
            db.leafsets(), interner=interner if interner is not None else db.interner
        )
    raise MiningError(
        f"pair_source must be one of {PAIR_SOURCES}, got {pair_source!r}"
    )
