"""The ``bigint`` mask backend: one Python int per mask.

The seed's representation, extracted behind the backend protocol with
zero behavioural change: a mask is a plain non-negative ``int`` over
the whole vertex order, and every operation is a single big-int machine
op.  This stays the default for graphs below the auto-selection
threshold — Python ints beat any chunked layout while ``|V|`` fits in a
few machine words.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.core.masks.base import MaskBackend, int_value_bytes, iter_int_bits


def _int_from_sorted_bits(bits: Sequence[int]) -> int:
    """A whole-graph int with the ascending ``bits`` set.

    Packs the spanned byte range into a ``bytearray`` (one small-int
    byte op per bit) and converts with a single ``int.from_bytes`` plus
    one accumulate shift — O(n + span/8) instead of n big-int
    shift-and-OR round trips, and the span is measured from the lowest
    set bit so a sparse mask far up the vertex order stays cheap.
    """
    if not bits:
        return 0
    base = bits[0] >> 3
    buffer = bytearray((bits[-1] >> 3) - base + 1)
    for bit in bits:
        buffer[(bit >> 3) - base] |= 1 << (bit & 7)
    return int.from_bytes(buffer, "little") << (base << 3)


class BigintMaskBackend(MaskBackend):
    """Whole-graph Python-int bitmasks (the zero-regression default)."""

    name = "bigint"

    def empty(self) -> int:
        return 0

    def make(self, bits: Iterable[int]) -> int:
        mask = 0
        for bit in bits:
            mask |= 1 << bit
        return mask

    def make_batch(self, bit_lists: Sequence[Sequence[int]]) -> List[int]:
        return [_int_from_sorted_bits(bits) for bits in bit_lists]

    def set_bit(self, mask: int, bit: int) -> int:
        return mask | (1 << bit)

    def set_bits_bulk(self, mask: int, bits: Sequence[int]) -> int:
        return mask | _int_from_sorted_bits(bits)

    def has_bit(self, mask: int, bit: int) -> bool:
        return bool((mask >> bit) & 1)

    def is_empty(self, mask: int) -> bool:
        return not mask

    def union_overlaps(self, a: int, b: int) -> bool:
        return bool(a & b)

    def equals(self, a: int, b: int) -> bool:
        return a == b

    def or_(self, a: int, b: int) -> int:
        return a | b

    def and_(self, a: int, b: int) -> int:
        return a & b

    def andnot(self, a: int, b: int) -> int:
        return a & ~b

    def popcount(self, mask: int) -> int:
        return mask.bit_count()

    def and_count(self, a: int, b: int) -> int:
        return (a & b).bit_count()

    def iter_bits(self, mask: int) -> Iterator[int]:
        return iter_int_bits(mask)

    def bit_span(self, mask: int) -> int:
        return mask.bit_length()

    def mask_bytes(self, mask: int) -> int:
        return int_value_bytes(mask)
