"""The ``numpy`` mask backend: chunked bitmaps over ``uint64`` arrays.

Same sparse layout as :mod:`repro.core.masks.chunked` — only non-empty
chunks are stored, keyed by chunk index — but each chunk is a packed
``numpy.uint64`` word array (default 1024 bits = 16 words), so
AND/OR/popcount on a chunk are vectorised word ops instead of big-int
arithmetic.  Popcounts use ``numpy.bitwise_count`` when the installed
numpy provides it (>= 2.0) and fall back to an ``unpackbits`` sum
otherwise.

The wider default chunk amortises numpy's per-array overhead; mining
output stays bit-identical to the other backends because every exposed
quantity is an exact integer count.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

from repro.core.masks.base import MaskBackend, iter_int_bits

NumpyMask = Dict[int, "np.ndarray"]

_DICT_HEADER_BYTES = 64
_SLOT_BYTES = 24
_NDARRAY_HEADER_BYTES = 112

if hasattr(np, "bitwise_count"):

    def _popcount_words(words: "np.ndarray") -> int:
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - numpy < 2.0 fallback

    def _popcount_words(words: "np.ndarray") -> int:
        return int(np.unpackbits(words.view(np.uint8)).sum())


class NumpyChunkedMaskBackend(MaskBackend):
    """Sparse chunked bitmasks with numpy ``uint64`` word arrays."""

    name = "numpy"

    def __init__(self, chunk_bits: int = 1024) -> None:
        if chunk_bits < 64 or chunk_bits % 64:
            raise ValueError("chunk_bits must be a positive multiple of 64")
        self.chunk_bits = chunk_bits
        self._words = chunk_bits // 64

    def __repr__(self) -> str:
        return f"{type(self).__name__}(chunk_bits={self.chunk_bits})"

    def empty(self) -> NumpyMask:
        return {}

    def make(self, bits: Iterable[int]) -> NumpyMask:
        mask: NumpyMask = {}
        for bit in bits:
            self.set_bit(mask, bit)
        return mask

    def set_bit(self, mask: NumpyMask, bit: int) -> NumpyMask:
        chunk, offset = divmod(bit, self.chunk_bits)
        words = mask.get(chunk)
        if words is None:
            words = mask[chunk] = np.zeros(self._words, dtype=np.uint64)
        words[offset >> 6] |= np.uint64(1 << (offset & 63))
        return mask

    def _scatter(self, mask: NumpyMask, bits: Sequence[int]) -> NumpyMask:
        """OR the ascending ``bits`` into ``mask`` chunk by chunk.

        One vectorised pass: offsets and word values are computed for
        the whole list, then each consecutive chunk run is scattered
        into its word array with a single ``np.bitwise_or.at``.
        """
        if not len(bits):
            return mask
        array = np.asarray(bits, dtype=np.int64)
        chunks = array // self.chunk_bits
        offsets = array - chunks * self.chunk_bits
        word_index = offsets >> 6
        values = np.left_shift(
            np.ones(len(array), dtype=np.uint64),
            (offsets & 63).astype(np.uint64),
        )
        # Sorted input makes chunk runs consecutive.
        boundaries = np.flatnonzero(np.diff(chunks)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(array)]))
        for start, end in zip(starts, ends):
            chunk = int(chunks[start])
            words = mask.get(chunk)
            if words is None:
                words = mask[chunk] = np.zeros(self._words, dtype=np.uint64)
            np.bitwise_or.at(words, word_index[start:end], values[start:end])
        return mask

    def make_batch(self, bit_lists: Sequence[Sequence[int]]) -> List[NumpyMask]:
        return [self._scatter({}, bits) for bits in bit_lists]

    def set_bits_bulk(self, mask: NumpyMask, bits: Sequence[int]) -> NumpyMask:
        return self._scatter(mask, bits)

    def has_bit(self, mask: NumpyMask, bit: int) -> bool:
        chunk, offset = divmod(bit, self.chunk_bits)
        words = mask.get(chunk)
        if words is None:
            return False
        return bool(int(words[offset >> 6]) >> (offset & 63) & 1)

    def is_empty(self, mask: NumpyMask) -> bool:
        return not mask

    def union_overlaps(self, a: NumpyMask, b: NumpyMask) -> bool:
        if len(a) > len(b):
            a, b = b, a
        get = b.get
        for chunk, words in a.items():
            other = get(chunk)
            if other is not None and (words & other).any():
                return True
        return False

    def equals(self, a: NumpyMask, b: NumpyMask) -> bool:
        if a.keys() != b.keys():
            return False
        for chunk, words in a.items():
            if not np.array_equal(words, b[chunk]):
                return False
        return True

    def overlaps_many(
        self, mask: NumpyMask, others: Sequence[NumpyMask]
    ) -> List[bool]:
        result = [False] * len(others)
        if not mask or not others:
            return result
        # One vectorised AND per probe chunk: stack the word arrays of
        # every partner that stores the chunk (and is still undecided)
        # and answer the whole batch with a single matrix op.
        for chunk, words in mask.items():
            rows = []
            indices = []
            for index, other in enumerate(others):
                if result[index]:
                    continue
                other_words = other.get(chunk)
                if other_words is not None:
                    rows.append(other_words)
                    indices.append(index)
            if not rows:
                continue
            hits = (np.stack(rows) & words).any(axis=1)
            for index, hit in zip(indices, hits.tolist()):
                if hit:
                    result[index] = True
        return result

    def or_(self, a: NumpyMask, b: NumpyMask) -> NumpyMask:
        if len(a) < len(b):
            a, b = b, a
        out = dict(a)
        for chunk, words in b.items():
            have = out.get(chunk)
            out[chunk] = words if have is None else have | words
        return out

    def and_(self, a: NumpyMask, b: NumpyMask) -> NumpyMask:
        if len(a) > len(b):
            a, b = b, a
        get = b.get
        out: NumpyMask = {}
        for chunk, words in a.items():
            other = get(chunk)
            if other is not None:
                inter = words & other
                if inter.any():
                    out[chunk] = inter
        return out

    def andnot(self, a: NumpyMask, b: NumpyMask) -> NumpyMask:
        get = b.get
        out: NumpyMask = {}
        for chunk, words in a.items():
            other = get(chunk)
            if other is not None:
                words = words & ~other
                if not words.any():
                    continue
            out[chunk] = words
        return out

    def popcount(self, mask: NumpyMask) -> int:
        total = 0
        for words in mask.values():
            total += _popcount_words(words)
        return total

    def and_count(self, a: NumpyMask, b: NumpyMask) -> int:
        if len(a) > len(b):
            a, b = b, a
        get = b.get
        total = 0
        for chunk, words in a.items():
            other = get(chunk)
            if other is not None:
                total += _popcount_words(words & other)
        return total

    def iter_bits(self, mask: NumpyMask) -> Iterator[int]:
        chunk_bits = self.chunk_bits
        for chunk in sorted(mask):
            base = chunk * chunk_bits
            for index, word in enumerate(mask[chunk].tolist()):
                if word:
                    yield from iter_int_bits(word, offset=base + index * 64)

    def bit_span(self, mask: NumpyMask) -> int:
        if not mask:
            return 0
        top = max(mask)
        words = mask[top]
        for index in range(self._words - 1, -1, -1):
            word = int(words[index])
            if word:
                return top * self.chunk_bits + index * 64 + word.bit_length()
        return top * self.chunk_bits  # pragma: no cover - chunks are non-empty

    def mask_bytes(self, mask: NumpyMask) -> int:
        per_chunk = _SLOT_BYTES + _NDARRAY_HEADER_BYTES + self._words * 8
        return _DICT_HEADER_BYTES + len(mask) * per_chunk
