"""The ``chunked`` mask backend: sparse dict-of-int-chunk bitmaps.

The vertex order is sharded into fixed-width blocks
(:attr:`ChunkedMaskBackend.chunk_bits`, default 256) and a mask stores
only its *non-empty* chunks in a ``{chunk_index: int}`` dict.  A sparse
row holding ``k`` positions costs ``O(k)`` memory and its AND/popcount
walks the smaller chunk map — independent of ``|V|``, which is what
makes paper-scale graphs (pokec, 1.6M vertices) feasible: a
whole-graph bigint mask costs ~200 KB per row there, a chunked mask of
a 25-vertex community row costs one chunk.

Locality matters: ``InvertedDatabase.from_graph`` assigns vertex bits
in first-touch order over repr-sorted coresets, so the positions of a
community-structured coreset land in adjacent bits and typically share
a single chunk — intersections then touch one dict slot.

All counts are exact, so mining output is bit-identical to the bigint
backend (asserted by the equivalence suite).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

from repro.core.masks.base import MaskBackend, int_value_bytes, iter_int_bits

ChunkMask = Dict[int, int]

# Estimated bookkeeping bytes: a small dict's base cost and the
# per-entry cost of one (small-int key -> chunk int) slot.
_DICT_HEADER_BYTES = 64
_SLOT_BYTES = 24


class ChunkedMaskBackend(MaskBackend):
    """Sparse chunked bitmasks over fixed-width int blocks."""

    name = "chunked"

    def __init__(self, chunk_bits: int = 256) -> None:
        if chunk_bits < 64 or chunk_bits & (chunk_bits - 1):
            raise ValueError("chunk_bits must be a power of two >= 64")
        self.chunk_bits = chunk_bits
        self._shift = chunk_bits.bit_length() - 1
        self._low = chunk_bits - 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}(chunk_bits={self.chunk_bits})"

    def empty(self) -> ChunkMask:
        return {}

    def make(self, bits: Iterable[int]) -> ChunkMask:
        mask: ChunkMask = {}
        shift = self._shift
        low = self._low
        for bit in bits:
            chunk = bit >> shift
            mask[chunk] = mask.get(chunk, 0) | (1 << (bit & low))
        return mask

    def make_batch(self, bit_lists: Sequence[Sequence[int]]) -> List[ChunkMask]:
        # Sorted input means each chunk's bits are consecutive: one
        # dict store per chunk run instead of a get+set per bit.  The
        # dominant construction case — a community row inside a single
        # chunk — skips the per-bit chunk bookkeeping entirely.
        shift = self._shift
        low = self._low
        out: List[ChunkMask] = []
        append = out.append
        for bits in bit_lists:
            if not bits:
                append({})
                continue
            first = bits[0] >> shift
            if bits[-1] >> shift == first:
                word = 0
                for bit in bits:
                    word |= 1 << (bit & low)
                append({first: word})
                continue
            mask: ChunkMask = {}
            current = first
            word = 0
            for bit in bits:
                chunk = bit >> shift
                if chunk != current:
                    mask[current] = word
                    current = chunk
                    word = 0
                word |= 1 << (bit & low)
            mask[current] = word
            append(mask)
        return out

    def set_bit(self, mask: ChunkMask, bit: int) -> ChunkMask:
        chunk = bit >> self._shift
        mask[chunk] = mask.get(chunk, 0) | (1 << (bit & self._low))
        return mask

    def set_bits_bulk(self, mask: ChunkMask, bits: Sequence[int]) -> ChunkMask:
        shift = self._shift
        low = self._low
        index = 0
        count = len(bits)
        while index < count:
            chunk = bits[index] >> shift
            word = 0
            while index < count and bits[index] >> shift == chunk:
                word |= 1 << (bits[index] & low)
                index += 1
            have = mask.get(chunk)
            mask[chunk] = word if have is None else have | word
        return mask

    def has_bit(self, mask: ChunkMask, bit: int) -> bool:
        word = mask.get(bit >> self._shift)
        return word is not None and bool((word >> (bit & self._low)) & 1)

    def is_empty(self, mask: ChunkMask) -> bool:
        return not mask

    def union_overlaps(self, a: ChunkMask, b: ChunkMask) -> bool:
        if len(a) > len(b):
            a, b = b, a
        get = b.get
        for chunk, word in a.items():
            other = get(chunk)
            if other is not None and word & other:
                return True
        return False

    def equals(self, a: ChunkMask, b: ChunkMask) -> bool:
        return a == b

    def or_(self, a: ChunkMask, b: ChunkMask) -> ChunkMask:
        if len(a) < len(b):
            a, b = b, a
        out = dict(a)
        for chunk, word in b.items():
            have = out.get(chunk)
            out[chunk] = word if have is None else have | word
        return out

    def and_(self, a: ChunkMask, b: ChunkMask) -> ChunkMask:
        if len(a) > len(b):
            a, b = b, a
        get = b.get
        out: ChunkMask = {}
        for chunk, word in a.items():
            other = get(chunk)
            if other is not None:
                inter = word & other
                if inter:
                    out[chunk] = inter
        return out

    def andnot(self, a: ChunkMask, b: ChunkMask) -> ChunkMask:
        get = b.get
        out: ChunkMask = {}
        for chunk, word in a.items():
            other = get(chunk)
            if other is not None:
                word = word & ~other
                if not word:
                    continue
            out[chunk] = word
        return out

    def popcount(self, mask: ChunkMask) -> int:
        total = 0
        for word in mask.values():
            total += word.bit_count()
        return total

    def and_count(self, a: ChunkMask, b: ChunkMask) -> int:
        if len(a) > len(b):
            a, b = b, a
        get = b.get
        total = 0
        for chunk, word in a.items():
            other = get(chunk)
            if other is not None:
                total += (word & other).bit_count()
        return total

    def iter_bits(self, mask: ChunkMask) -> Iterator[int]:
        chunk_bits = self.chunk_bits
        for chunk in sorted(mask):
            yield from iter_int_bits(mask[chunk], offset=chunk * chunk_bits)

    def bit_span(self, mask: ChunkMask) -> int:
        if not mask:
            return 0
        top = max(mask)
        return top * self.chunk_bits + mask[top].bit_length()

    def mask_bytes(self, mask: ChunkMask) -> int:
        total = _DICT_HEADER_BYTES
        for word in mask.values():
            total += _SLOT_BYTES + int_value_bytes(word)
        return total
