"""Pluggable position-mask backends for the inverted database.

See :mod:`repro.core.masks.base` for the backend protocol and the
bit-exactness contract.  Three backends ship:

========  ==========================================  =================
name      representation                              best for
========  ==========================================  =================
bigint    one whole-graph Python int per mask         small graphs
chunked   dict of non-empty fixed-width int chunks    paper-scale sparse
numpy     chunked with uint64 word arrays + numpy     wide dense chunks
========  ==========================================  =================

Selection is by name through :func:`get_backend` /
:func:`resolve_backend`; ``"auto"`` picks ``bigint`` below
:data:`AUTO_CHUNKED_MIN_BITS` vertices and ``chunked`` at or above it,
which keeps every existing small-graph workload on the zero-regression
default while paper-scale graphs get sparse masks without any
configuration.
"""

from __future__ import annotations

from typing import Optional

# MASK_BACKENDS lives in repro.config (the knob registry, imported
# here so there is exactly one copy); config imports only repro.errors,
# so this direction is cycle-free, while the reverse would recurse
# through repro.core's package __init__.
from repro.config import MASK_BACKENDS
from repro.core.masks.base import MaskBackend, bigint_mask_bytes
from repro.core.masks.bigint import BigintMaskBackend
from repro.core.masks.chunked import ChunkedMaskBackend
from repro.errors import MiningError

#: ``auto`` switches from bigint to chunked masks at this vertex count:
#: below it a whole-graph int is a few machine words and unbeatable;
#: above it per-row O(|V|) memory starts to dominate (measured in the
#: perf suite's pokec-sparse family).
AUTO_CHUNKED_MIN_BITS = 65536


def get_backend(name: str) -> MaskBackend:
    """Instantiate the backend registered under ``name`` (not "auto")."""
    if name == "bigint":
        return BigintMaskBackend()
    if name == "chunked":
        return ChunkedMaskBackend()
    if name == "numpy":
        try:
            from repro.core.masks.numpy_chunked import NumpyChunkedMaskBackend
        except ImportError as exc:  # pragma: no cover - numpy is baked in
            raise MiningError(
                "mask_backend='numpy' requires numpy to be installed"
            ) from exc
        return NumpyChunkedMaskBackend()
    concrete = [backend for backend in MASK_BACKENDS if backend != "auto"]
    raise MiningError(
        f"unknown mask backend {name!r}; available: {concrete} "
        "(or 'auto' via resolve_backend)"
    )


def resolve_backend(
    name: str = "auto", num_bits_hint: Optional[int] = None
) -> MaskBackend:
    """Resolve a config-level backend name (including ``"auto"``).

    ``num_bits_hint`` is the expected vertex-order width (``|V|`` of
    the graph about to be indexed); ``auto`` uses it to pick bigint for
    small graphs and chunked for paper-scale ones.
    """
    if name == "auto":
        if num_bits_hint is not None and num_bits_hint >= AUTO_CHUNKED_MIN_BITS:
            return ChunkedMaskBackend()
        return BigintMaskBackend()
    return get_backend(name)


__all__ = [
    "AUTO_CHUNKED_MIN_BITS",
    "MASK_BACKENDS",
    "MaskBackend",
    "BigintMaskBackend",
    "ChunkedMaskBackend",
    "bigint_mask_bytes",
    "get_backend",
    "resolve_backend",
]
