"""The position-mask backend protocol.

The inverted database (paper, Section IV-B) stores every row's position
set as a bitmask over a fixed vertex order, and all of Section V's
machinery — gain terms (``xye`` co-occurrence counts), overlap-driven
candidate generation, the lazy refresh's touched-row tests — reduces to
AND/OR/popcount on those masks.  The *representation* of a mask is a
backend choice:

``bigint``
    One Python integer spanning the whole vertex order (the seed's
    representation).  Simplest and fastest on small graphs, but every
    row pays ``O(|V|)`` memory and AND cost regardless of how few
    positions it holds — the scale ceiling named on the ROADMAP.
``chunked``
    The vertex order is sharded into fixed-width blocks; a mask stores
    only its non-empty chunks in a dict.  Sparse rows touch only their
    chunks, so memory and AND cost follow ``O(set bits)`` instead of
    ``O(|V|)``.
``numpy``
    The chunked layout with chunks packed into ``uint64`` arrays and
    popcounts vectorised via numpy.

A backend is a *stateless* strategy object: masks are plain values
(``int`` / ``dict``) interpreted through the backend that made them,
and two databases built with the same backend class can share one
instance.  Mutation discipline: :meth:`MaskBackend.set_bit` (the
construction-time bit setter) may mutate its argument in place and must
be called only on masks the caller exclusively owns; every other
operation is pure, which is what lets ``InvertedDatabase.copy`` share
mask values between copies.

All backends are **bit-exact** interchangeable: every mining-visible
quantity (popcounts, intersection counts, overlap booleans, decoded bit
sets) is an exact integer/boolean, so merge sequences, snapshots and DL
floats are identical across backends — the equivalence suite in
``tests/test_mask_backends.py`` asserts it.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Sequence

Mask = Any

# CPython's int layout: ~28-byte header plus one 4-byte digit per 30
# bits of payload.  This is the per-mask cost a whole-graph bigint
# bitmap pays *regardless of sparsity* — the reference the perf suite's
# mask-memory reduction ratios are measured against.
_INT_HEADER_BYTES = 28
_BITS_PER_DIGIT = 30
_DIGIT_BYTES = 4


def bigint_mask_bytes(num_bits: int) -> int:
    """Estimated bytes of a whole-graph bigint mask over ``num_bits``."""
    digits = max(1, -(-num_bits // _BITS_PER_DIGIT))
    return _INT_HEADER_BYTES + digits * _DIGIT_BYTES


def int_value_bytes(value: int) -> int:
    """Estimated bytes of a Python int holding ``value`` (>= 0)."""
    return bigint_mask_bytes(max(1, value.bit_length())) if value else _INT_HEADER_BYTES


class MaskBackend:
    """Abstract strategy for one position-mask representation.

    Subclasses define the mask value type and implement every
    operation; the database and the search layers only ever talk to
    masks through these methods (plus truth-valued results), never
    through the raw representation.
    """

    #: Registry name (``"bigint"`` / ``"chunked"`` / ``"numpy"``).
    name: str = "abstract"

    # -- construction --------------------------------------------------

    def empty(self) -> Mask:
        """A mask with no bits set."""
        raise NotImplementedError

    def make(self, bits: Iterable[int]) -> Mask:
        """A fresh mask with exactly ``bits`` set."""
        raise NotImplementedError

    def set_bit(self, mask: Mask, bit: int) -> Mask:
        """``mask`` with ``bit`` set — MAY mutate ``mask`` in place.

        Construction-time only: call it solely on masks the caller
        exclusively owns (the database's build loop does), and always
        use the returned value.
        """
        raise NotImplementedError

    def make_batch(self, bit_lists: Sequence[Sequence[int]]) -> List[Mask]:
        """One fresh mask per bit list, materialised in one bulk call.

        Every list must be sorted ascending; duplicates are allowed
        (setting a bit twice is idempotent).  This is the columnar
        builder's phase-2 primitive: the database collects each row's
        full bit list first and materialises all of a coreset's rows
        here, so backends can amortise per-mask setup — the bigint
        backend packs bytes and shifts once, the chunked backends
        group consecutive bits by chunk index instead of re-hashing
        the chunk key per bit.  The default implementation falls back
        to :meth:`make` per list.
        """
        return [self.make(bits) for bits in bit_lists]

    def set_bits_bulk(self, mask: Mask, bits: Sequence[int]) -> Mask:
        """``mask`` with every bit of sorted ``bits`` set — MAY mutate.

        The bulk counterpart of :meth:`set_bit`, under the same
        construction-time ownership discipline: ``bits`` must be
        ascending (duplicates allowed), and callers must use the
        returned value.  The in-place complement of
        :meth:`make_batch` for builders that accumulate into an
        existing mask (custom pipeline stages, external index
        construction); the database's own builder materialises fresh
        masks through ``make_batch`` only.
        """
        for bit in bits:
            mask = self.set_bit(mask, bit)
        return mask

    # -- predicates ----------------------------------------------------

    def has_bit(self, mask: Mask, bit: int) -> bool:
        raise NotImplementedError

    def is_empty(self, mask: Mask) -> bool:
        raise NotImplementedError

    def union_overlaps(self, a: Mask, b: Mask) -> bool:
        """Whether the two masks share at least one set bit.

        The single-AND test behind the Section V observation: overlap
        generation, the gain prefilter and the lazy refresh's
        touched-row skips all reduce to this.
        """
        raise NotImplementedError

    def equals(self, a: Mask, b: Mask) -> bool:
        """Exact equality of the two masks' bit sets."""
        raise NotImplementedError

    def overlaps_many(self, mask: Mask, others: Sequence[Mask]) -> List[bool]:
        """``[union_overlaps(mask, other) for other in others]`` in bulk.

        The lazy refresh's batched skip test: one probe mask (a leaf
        union or a touched-row union) is tested against every candidate
        partner's union in a single call, so backends can amortise the
        per-AND dispatch — the numpy backend stacks the partners into
        word matrices and answers the whole batch with vectorised ANDs.
        A pure read: neither ``mask`` nor any member of ``others`` may
        be mutated.  The default implementation is the scalar loop, so
        results are bit-exact across backends by construction.
        """
        overlaps = self.union_overlaps
        return [overlaps(mask, other) for other in others]

    # -- combination ---------------------------------------------------

    def or_(self, a: Mask, b: Mask) -> Mask:
        """``a | b`` as a value (never mutates either argument)."""
        raise NotImplementedError

    def and_(self, a: Mask, b: Mask) -> Mask:
        """``a & b`` as a value."""
        raise NotImplementedError

    def andnot(self, a: Mask, b: Mask) -> Mask:
        """``a & ~b`` as a value."""
        raise NotImplementedError

    # -- counting / decoding -------------------------------------------

    def popcount(self, mask: Mask) -> int:
        raise NotImplementedError

    def and_count(self, a: Mask, b: Mask) -> int:
        """``popcount(a & b)`` — the hot ``xye`` co-occurrence count."""
        raise NotImplementedError

    def iter_bits(self, mask: Mask) -> Iterator[int]:
        """Set bit indices in ascending order."""
        raise NotImplementedError

    def bit_span(self, mask: Mask) -> int:
        """Index of the highest set bit plus one (0 when empty).

        The width a whole-graph big-int holding this mask would
        actually occupy — what makes the bigint memory reference
        honest instead of an O(|V|)-per-mask overstatement.
        """
        raise NotImplementedError

    # -- accounting ----------------------------------------------------

    def mask_bytes(self, mask: Mask) -> int:
        """Estimated resident bytes of ``mask`` (payload + overhead).

        An analytic estimate (not ``sys.getsizeof`` walks) so the perf
        suite's recorded numbers are machine-independent.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def iter_int_bits(value: int, offset: int = 0) -> Iterator[int]:
    """Ascending set-bit indices of a non-negative int, plus ``offset``."""
    while value:
        low = value & -value
        yield offset + low.bit_length() - 1
        value ^= low
