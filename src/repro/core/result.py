"""The result type of a CSPM run, with JSON-safe serialisation.

:class:`CSPMResult` carries everything a consumer needs after mining:
the ranked a-stars, the run trace (Fig. 5 instrumentation), the
initial/final description lengths, and the code tables.  All of that —
*everything but the raw* :class:`~repro.core.inverted_db.InvertedDatabase`
— round-trips through :meth:`CSPMResult.to_dict` /
:meth:`CSPMResult.from_dict`, so results can be shipped over the wire,
cached on disk, or returned by a service layer.  A deserialised result
has ``inverted_db=None``; ranking, filtering, scoring and reporting all
keep working, only the mutable search state is gone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Mapping, Optional

from repro.config import CSPMConfig
from repro.core.astar import AStar
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.instrumentation import RunTrace
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import DescriptionLength, description_length

Value = Hashable

SCHEMA_VERSION = 1


@dataclass
class CSPMResult:
    """Output of a CSPM run.

    ``astars`` is ordered by ascending code length — the paper's output
    ordering, where shorter codes mean more informative patterns.

    ``inverted_db`` is the live search state; it is ``None`` on results
    rebuilt via :meth:`from_dict` (it is deliberately not serialised).
    ``config`` records the :class:`~repro.config.CSPMConfig` that
    produced the run, when known.

    ``final_dl`` may be constructed as ``None``: the pipeline hands the
    incremental end-of-run total over in the trace
    (:attr:`final_dl_bits`) and defers the *component* breakdown — whose
    serialised floats must be accumulation-order-independent, i.e. come
    from a sorted from-scratch pass — until something actually reads it.
    The first access recomputes it from the live database (falling back
    to the trace's incremental component sums when the database is
    gone) and caches it, so mining no longer pays a full
    ``description_length`` pass per run.
    """

    astars: List[AStar]
    trace: RunTrace
    initial_dl: DescriptionLength
    final_dl: Optional[DescriptionLength]
    standard_table: StandardCodeTable
    core_table: CoreCodeTable
    inverted_db: Optional[InvertedDatabase] = field(default=None, repr=False)
    config: Optional[CSPMConfig] = None
    #: Supervised-runtime failure telemetry (per-site retry counts,
    #: degraded-task lists, the active fault plan), populated only when
    #: a supervised pool actually ran — ``None`` for serial execution,
    #: which keeps schema-v1 documents byte-identical.
    runtime: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        # A None final_dl means "compute on demand": remove the
        # instance attribute so lookups fall through to __getattr__
        # (which only ever fires for missing attributes — no per-access
        # overhead on any other field).
        if self.__dict__.get("final_dl") is None:
            self.__dict__.pop("final_dl", None)

    def __getattr__(self, name):
        if name == "final_dl":
            value = self._compute_final_dl()
            self.__dict__["final_dl"] = value
            return value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _compute_final_dl(self) -> DescriptionLength:
        if self.inverted_db is not None:
            return description_length(
                self.inverted_db, self.standard_table, self.core_table
            )
        trace = self.trace
        initial = self.initial_dl
        return DescriptionLength(
            model_core_bits=initial.model_core_bits,
            model_leaf_bits=initial.model_leaf_bits - trace.model_gain_bits,
            data_leaf_bits=initial.data_leaf_bits - trace.data_leaf_gain_bits,
            data_core_bits=initial.data_core_bits - trace.data_core_gain_bits,
        )

    @property
    def final_dl_bits(self) -> float:
        """End-of-run total DL, tracked incrementally by the search.

        Equal to ``final_dl.total_bits`` up to float accumulation order;
        reading it never triggers the deferred component recompute.
        """
        return self.trace.final_dl_bits

    def __len__(self) -> int:
        return len(self.astars)

    def __iter__(self) -> Iterator[AStar]:
        return iter(self.astars)

    def __repr__(self) -> str:
        return (
            f"<CSPMResult: {len(self.astars)} a-stars, "
            f"{self.trace.num_iterations} merges, "
            f"DL {self.initial_dl.total_bits:.1f} -> "
            f"{self.final_dl_bits:.1f} bits "
            f"(ratio {self.compression_ratio:.3f})>"
        )

    def top(self, k: int) -> List[AStar]:
        """The ``k`` best-ranked (shortest-code) a-stars."""
        return self.astars[:k]

    def filter(
        self,
        min_leafset_size: int = 1,
        min_frequency: int = 1,
        core_value: Optional[Any] = None,
    ) -> List[AStar]:
        """A filtered view, preserving rank order.

        ``core_value`` semantics:

        * a single (hashable) value keeps a-stars whose coreset
          *contains* that value — membership, not equality, so a
          multi-value coreset ``{a, b}`` matches ``core_value="a"``;
        * a ``set``, ``frozenset`` or ``list`` of values keeps a-stars
          whose coreset contains *all* of them (subset match).
        """
        core_required: Optional[frozenset] = None
        if core_value is not None:
            if isinstance(core_value, (set, frozenset, list)):
                core_required = frozenset(core_value)
            else:
                core_required = frozenset([core_value])
        selected = []
        for star in self.astars:
            if len(star.leafset) < min_leafset_size:
                continue
            if star.frequency < min_frequency:
                continue
            if core_required is not None and not core_required <= star.coreset:
                continue
            selected.append(star)
        return selected

    @property
    def compression_ratio(self) -> float:
        """Final over initial total description length (incremental)."""
        initial = self.initial_dl.total_bits
        if initial <= 0:
            return 1.0
        return self.final_dl_bits / initial

    def summary(self) -> str:
        """A short human-readable report of the run."""
        lines = [
            f"CSPM ({self.trace.algorithm}): {len(self.astars)} a-stars, "
            f"{self.trace.num_iterations} merges",
            f"  DL: {self.initial_dl.total_bits:.1f} -> "
            f"{self.final_dl_bits:.1f} bits "
            f"(ratio {self.compression_ratio:.3f})",
            f"  gain computations: {self.trace.total_gain_computations}",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable representation of the run.

        Contains the ranked a-stars, trace, DL accounting, both code
        tables, and the producing config — everything except the raw
        inverted database.  Attribute values must be JSON-compatible
        (strings, numbers) for :meth:`to_json` to succeed.
        """
        document = {
            "schema_version": SCHEMA_VERSION,
            "config": None if self.config is None else self.config.to_dict(),
            "astars": [star.to_dict() for star in self.astars],
            "trace": self.trace.to_dict(),
            "initial_dl": self.initial_dl.to_dict(),
            "final_dl": self.final_dl.to_dict(),
            "standard_table": self.standard_table.to_dict(),
            "core_table": self.core_table.to_dict(),
        }
        if self.runtime is not None:
            document["runtime"] = self.runtime
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "CSPMResult":
        """Rebuild a result from :meth:`to_dict` output.

        The returned result has ``inverted_db=None``.
        """
        config = document.get("config")
        return cls(
            astars=[AStar.from_dict(entry) for entry in document["astars"]],
            trace=RunTrace.from_dict(document["trace"]),
            initial_dl=DescriptionLength.from_dict(document["initial_dl"]),
            final_dl=DescriptionLength.from_dict(document["final_dl"]),
            standard_table=StandardCodeTable.from_dict(
                document["standard_table"]
            ),
            core_table=CoreCodeTable.from_dict(document["core_table"]),
            inverted_db=None,
            config=None if config is None else CSPMConfig.from_dict(config),
            runtime=document.get("runtime"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """:meth:`to_dict` rendered as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CSPMResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
