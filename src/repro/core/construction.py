"""Coreset-partitioned construction of the inverted database.

The inverted database is partitionable by coreset: every row key is
``(coreset, leafset)`` and construction touches a row only from its own
coreset's member loop, so disjoint coreset subsets can be built
completely independently — the lever the ROADMAP names for paper-scale
graphs (sharding the coreset space across processes).

The flow mirrors the serial columnar builder exactly:

1. ``InvertedDatabase._plan_construction`` runs once, in-process: the
   coreset iteration order and the shared vertex->bit table are global
   decisions and stay serial.
2. :func:`partition_plan` slices the planned coreset order into
   *contiguous*, member-count-balanced partitions.  Contiguity is what
   makes the merge trivial and exact: concatenating the partitions'
   construction-order row records reproduces the serial
   ``_initial_row_order`` verbatim.
3. Each worker process (:func:`_build_slice`) runs the same
   ``_build_rows`` columnar phase on its slice against the shared
   vertex->bit table.  The shared input state travels by ``fork``
   inheritance where the platform provides it (Linux: zero pickling of
   the plan/neighbour tables) and through the pool initializer
   otherwise; results come back as compact columns — coresets as
   indexes into the shared plan order, construction-time leafsets as
   their single raw value — so the dominant reverse pickle is ints,
   values and mask payloads, not half a million frozensets.
4. :func:`_merge_partitions` stitches the sub-databases together in
   partition order.  Coresets are disjoint across partitions, so rows
   and coreset frequencies merge by plain assignment; only the
   per-leafset union masks need combining (a leafset can span
   partitions), which is a pure ``or_``.

The merged database is **identical** to the serial build: same rows and
frequencies, same interner order (interning happens after the merge, in
repr-sorted order), same ``_initial_row_order``, same snapshots and
initial description-length floats — the construction-equivalence suite
asserts all of it, and CI re-runs the quick perf suite under
``construction=partitioned`` against the serial counter bounds.

Speed expectations: workers still pay one result pickle, so the
partitioned path wins where phase-2 Python time dominates (paper-scale
graphs, hundreds of thousands of rows) and is *not* the default —
``construction="serial"`` stays the right choice for small graphs.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Tuple

from repro.errors import MiningError
from repro.obs import Observation, activate, current
from repro.runtime.supervisor import RuntimePolicy, SiteReport, run_supervised

Value = Hashable
Vertex = Hashable
LeafKey = FrozenSet[Value]
CoreKey = FrozenSet[Value]
RowKey = Tuple[CoreKey, LeafKey]
Mask = object

PlanItem = Tuple[CoreKey, List[Vertex]]

#: Shared construction state in a worker process: ``(mask backend,
#: planned (coreset, members) items, vertex -> neighbour values,
#: vertex -> bit, leaf-value universe, trace enabled)``.  Set by fork
#: inheritance or the pool initializer.
_WORKER_STATE: Optional[Tuple] = None


def _set_worker_state(state: Optional[Tuple]) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


@dataclass
class PartitionResult:
    """One worker's sub-database, as compact picklable columns.

    Coresets are encoded as indexes into the shared plan order and
    construction-time leafsets (always singletons) as their raw value;
    the merge re-attaches the shared key objects.  ``rows`` preserves
    the worker's insertion order; ``row_order`` is the partition's
    slice of the construction-order row record (already in global
    sorted order because partitions are contiguous slices of the
    sorted coreset iteration).
    """

    rows: List[Tuple[int, Value, Mask, int]]
    row_order: List[Tuple[int, Value]]
    core_freq: List[Tuple[int, int]]
    leaf_unions: List[Tuple[Value, Mask]]
    #: Closed observability spans recorded in the worker (plain str/
    #: float/int tuples) plus the recording pid, shipped home through
    #: the ordinary result path when tracing is on.
    spans: Optional[List[Tuple[str, float, float, int, str]]] = None
    pid: int = 0


def partition_plan(
    plan: Mapping[CoreKey, List[Vertex]], num_partitions: int
) -> List[List[PlanItem]]:
    """Contiguous, member-count-balanced slices of the coreset order.

    Balancing is by planned member count (the per-coreset work is
    linear in members); slices stay contiguous so the concatenated
    per-partition row orders equal the serial construction order.
    """
    items = list(plan.items())
    parts = max(1, min(num_partitions, len(items)))
    if parts == 1:
        return [items]
    partitions: List[List[PlanItem]] = []
    current: List[PlanItem] = []
    weight = 0
    remaining_weight = sum(len(members) for _core, members in items)
    for index, item in enumerate(items):
        current.append(item)
        weight += len(item[1])
        remaining_weight -= len(item[1])
        open_slots = parts - len(partitions) - 1
        remaining_items = len(items) - index - 1
        if open_slots and remaining_items >= open_slots:
            # Close the partition once it holds its fair share of what
            # is left (current partition included).
            if weight * (open_slots + 1) >= weight + remaining_weight:
                partitions.append(current)
                current = []
                weight = 0
    if current:
        partitions.append(current)
    return partitions


def _single_value(leaf: LeafKey) -> Value:
    """The sole member of a construction-time (singleton) leafset."""
    (value,) = leaf
    return value


def _build_slice(bounds: Tuple[int, int]) -> PartitionResult:
    """Worker: columnar phase 2 on one contiguous coreset slice.

    Top-level for pickling; reads the shared state installed by
    :func:`_set_worker_state`.
    """
    import os

    from repro.core.inverted_db import InvertedDatabase

    backend, items, neighbor_values, vertex_bit, universe, traced = (
        _WORKER_STATE
    )
    start, end = bounds
    obs = Observation.for_worker(trace=traced)
    with activate(obs):
        with obs.span("build.partition", coresets=end - start):
            db = InvertedDatabase(mask_backend=backend)
            db._vertex_bit = vertex_bit  # prefilled, read-only during _build_rows
            db._build_rows(
                dict(items[start:end]), neighbor_values.__getitem__, universe
            )
    core_index = {core: index for index, (core, _members) in enumerate(items)}
    row_freq = db._row_freq
    return PartitionResult(
        rows=[
            (core_index[core], _single_value(leaf), mask, row_freq[(core, leaf)])
            for (core, leaf), mask in db._rows.items()
        ],
        row_order=[
            (core_index[core], _single_value(leaf))
            for core, leaf in db._initial_row_order or []
        ],
        core_freq=[
            (core_index[core], total) for core, total in db._core_freq.items()
        ],
        leaf_unions=[
            (_single_value(leaf), mask)
            for leaf, mask in db._leaf_union.items()
        ],
        spans=obs.tracer.export_spans() if traced else None,
        pid=os.getpid(),
    )


def _merge_partitions(
    db, items: List[PlanItem], results: List[PartitionResult]
) -> None:
    """Stitch the workers' sub-databases into ``db``, in order.

    Coresets are disjoint across partitions (rows and coreset
    frequencies assign), leafsets may span them (unions ``or_``).
    """
    masks = db._masks
    rows = db._rows
    row_freq = db._row_freq
    leaf_to_cores = db._leaf_to_cores
    core_to_leaves = db._core_to_leaves
    core_freq = db._core_freq
    leaf_union = db._leaf_union
    or_ = masks.or_
    leaf_key_of: Dict[Value, LeafKey] = {}

    def leaf_of(value: Value) -> LeafKey:
        leaf = leaf_key_of.get(value)
        if leaf is None:
            leaf = leaf_key_of[value] = frozenset((value,))
        return leaf

    row_order: List[RowKey] = []
    for part in results:
        for index, value, mask, frequency in part.rows:
            core = items[index][0]
            leaf = leaf_of(value)
            key = (core, leaf)
            rows[key] = mask
            row_freq[key] = frequency
            leaf_to_cores.setdefault(leaf, {})[core] = None
            core_to_leaves.setdefault(core, set()).add(leaf)
        for index, total in part.core_freq:
            core_freq[items[index][0]] = total
        for value, mask in part.leaf_unions:
            leaf = leaf_of(value)
            have = leaf_union.get(leaf)
            leaf_union[leaf] = mask if have is None else or_(have, mask)
        row_order.extend(
            (items[index][0], leaf_of(value))
            for index, value in part.row_order
        )
    db._initial_row_order = row_order


def build_partitioned(
    db,
    plan: Mapping[CoreKey, List[Vertex]],
    neighbor_values: Mapping[Vertex, FrozenSet[Value]],
    workers: Optional[int] = None,
    policy: Optional[RuntimePolicy] = None,
) -> Optional[SiteReport]:
    """Run columnar phase 2 sharded over worker processes.

    ``db`` must be freshly planned (``_plan_construction`` done, no
    rows yet); on return it holds exactly what the serial
    ``_build_rows`` would have produced.  With one partition (one
    worker requested, or fewer coresets than workers) the serial path
    runs in-process — no pool is spun up for degenerate inputs, and
    the return value is ``None``.

    Pool execution goes through
    :func:`repro.runtime.supervisor.run_supervised` (site
    ``"construction"``, task index = partition index): timeouts,
    retries and fault injection per ``policy``, with exhausted
    partitions rebuilt in-process — the parent keeps
    ``_WORKER_STATE`` installed for exactly that fallback, on fork
    *and* spawn platforms.  Returns the site's failure-telemetry
    report.
    """
    if workers is not None and workers < 1:
        raise MiningError(
            f"construction_workers must be >= 1, got {workers!r}"
        )
    requested = (
        workers if workers is not None else (multiprocessing.cpu_count() or 1)
    )
    partitions = partition_plan(plan, requested)
    universe: set = set()
    for values in neighbor_values.values():
        universe.update(values)
    if len(partitions) <= 1:
        db._build_rows(plan, neighbor_values.__getitem__, universe)
        return None
    items: List[PlanItem] = list(plan.items())
    bounds: List[Tuple[int, int]] = []
    cursor = 0
    for part in partitions:
        bounds.append((cursor, cursor + len(part)))
        cursor += len(part)
    obs = current()
    state = (
        db._masks,
        items,
        neighbor_values,
        db._vertex_bit,
        universe,
        obs.tracer.enabled,
    )
    # The parent installs the worker state unconditionally: fork
    # children inherit it (the plan, the neighbour-value table and the
    # vertex->bit table reach the workers without a single pickle
    # byte), and the supervisor's in-process degraded re-execution
    # reads it on every platform.
    _set_worker_state(state)
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            results, report = run_supervised(
                "construction",
                bounds,
                _build_slice,
                policy,
                max_workers=len(bounds),
                mp_context=multiprocessing.get_context("fork"),
                expect_type=PartitionResult,
            )
        else:  # pragma: no cover - non-fork platforms (Windows/macOS)
            results, report = run_supervised(
                "construction",
                bounds,
                _build_slice,
                policy,
                max_workers=len(bounds),
                initializer=_set_worker_state,
                initargs=(state,),
                expect_type=PartitionResult,
            )
    finally:
        _set_worker_state(None)
    if obs.tracer.enabled:
        harvest = obs.tracer.now()
        for index, part in enumerate(results):
            align = None if part.pid == obs.tracer.pid else harvest
            obs.tracer.adopt(
                part.spans,
                part.pid,
                f"construction[{index}]",
                align_end=align,
            )
    _merge_partitions(db, items, results)
    obs.progress.note("build", partitions=len(results))
    return report
