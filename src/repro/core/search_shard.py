"""Component-sharded CSPM-Partial: mine independent components in
parallel, then replay their runs into one bit-exact serial-equivalent
result.

Why components shard cleanly
----------------------------
Two leafsets can only ever merge (or influence each other's gain) when
they share a coreset: every gain term (Eq. 10-15) is gated on a
non-empty same-coreset positional intersection, and a merge only moves
rows and frequencies under the pair's common coresets.  Connected
components of the "shares a coreset" relation over the construction
leafsets therefore partition the whole search: every coreset is
private to one component, all merged leafsets stay inside their
component, and a cross-component pair's gain is exactly zero forever.
Each component can be mined on a
:meth:`~repro.core.inverted_db.InvertedDatabase.restricted_copy` with
no communication at all.

Why a replay pass is still needed
---------------------------------
Per-iteration instrumentation (``gains_computed`` flushes at each
merge) and the queue-head revalidation of :func:`run_partial` depend on
the *global interleaving* of merges by gain, which no worker can see.
So each worker records its run — every queue operation and every
queue-head decision, in local interned ids — and the parent replays
all recordings through one real global :class:`CandidateQueue`,
performing the merges on the global database in the order the queue
dictates.  Replay is sound because worker floats are bit-identical to
what the serial search would compute (gains only read component-local
rows/frequencies, and all float accumulation orders are deterministic
— see the ordered ``_leaf_to_cores`` invariant), and because local
canonical pair orientation equals global canonical orientation
(construction ids are a repr-sort restriction; merged leafsets are
interned in merge order, which replay preserves per component).

The one divergence replay must synthesise: the serial run revalidates
a dirty queue head against the *global* runner-up, while a worker only
saw its local runner-up.  A locally-merged pair can therefore lose the
global comparison and be pushed back (the reverse cannot happen: a
local push-back implies the fresh gain already lost to a local rival,
and the global head is at least that rival).  While pushed back, no
other pair of that component can surface (the fresh gain still ties or
beats every other stored gain of the component), so the component's
cursor simply stays parked on the merge event until the pair returns —
cleanly under the lazy scope (no common coreset was touched in
between, which also costs one synthetic ``refreshes_skipped``), or via
a fresh revalidation under the other scopes.

Counters stitch as: ``refreshes_skipped``/``dirty_revalidations`` sum
over workers (plus the synthetic clean re-pops), ``gains_computed``
re-flushes a single global pending counter at each replayed merge, and
``initial_candidate_gains`` is recounted by the parent — the serial
seeding also evaluates cross-component overlapping pairs that no
worker ever sees.

The fork/initializer/in-process triad mirrors
:mod:`repro.core.construction` (docs/INVARIANTS.md, family 3): workers
receive the database by fork inheritance where possible, and every
cross-process payload (:class:`ComponentRun`) is plain picklable
columns.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.candidates import CandidateQueue, LeafKey, LeafsetInterner, Pair
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_partial import UPDATE_SCOPES, run_partial
from repro.core.gain import GainBreakdown
from repro.core.instrumentation import IterationTrace, RunTrace, merged_pair_record
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import description_length
from repro.core.pairgen import PAIR_SOURCES, overlap_pairs
from repro.errors import MiningError
from repro.obs import Observation, activate, current
from repro.runtime.supervisor import RuntimePolicy, SiteReport, run_supervised

#: Queue-operation kinds in a :class:`ComponentRun` op log.
OP_SET = 0
OP_DISCARD = 1

#: Queue-head decision kinds in a :class:`ComponentRun` event log.
EV_CLEAN_MERGE = 0
EV_DIRTY_MERGE = 1
EV_PUSH = 2
EV_DROP = 3

#: Shared search state in a worker process: ``(database, standard
#: table, core table, include_model_cost, update_scope, pair_source,
#: trace enabled)``.  Set by fork inheritance or the pool initializer.
_WORKER_STATE: Optional[Tuple] = None


def _set_worker_state(state: Optional[Tuple]) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


@dataclass
class ComponentRun:
    """One worker's recorded search over a single component.

    ``leafsets`` is the worker's full local-id -> leafset table (the
    component's construction leafsets followed by every merged leafset
    in merge order); ``ops`` and ``events`` reference leafsets by local
    id only.  Each op is ``(kind, id_a, id_b, gain)`` — a queue ``set``
    or ``discard`` in execution order.  Each event is a queue-head
    decision ``(kind, id_a, id_b, gain, data_leaf_gain, model_gain,
    data_core_gain, refresh_gains, op_start)``: the ops recorded at
    index ``op_start`` up to the next event's ``op_start`` belong to it
    (ops before the first event are the seeding), ``gain`` and the
    breakdown components are only meaningful on merge events, and
    ``refresh_gains`` is the merge's refresh-pass gain count.
    """

    leafsets: List[LeafKey]
    ops: List[Tuple[int, int, int, float]]
    events: List[Tuple[int, int, int, float, float, float, float, int, int]]
    refreshes_skipped: int
    dirty_revalidations: int
    #: Closed observability spans recorded in the worker (plain str/
    #: float/int tuples) plus the recording pid, shipped home through
    #: the ordinary result path when tracing is on.
    spans: Optional[List[Tuple[str, float, float, int, str]]] = None
    pid: int = 0


class ShardedSearch(NamedTuple):
    """A sharded run's trace plus the component statistics.

    Parent-side only — never crosses a process boundary (workers return
    :class:`ComponentRun` columns), so it is deliberately not part of
    the FRK002 worker-payload dataclass contract.  ``report`` is the
    supervisor's failure telemetry for the ``"search"`` site, ``None``
    when the components ran in-process (one worker or one component —
    no pool, nothing to supervise).
    """

    trace: RunTrace
    num_components: int
    largest_component_frac: float
    report: Optional[SiteReport] = None


class _RecordingQueue(CandidateQueue):
    """A :class:`CandidateQueue` that logs every explicit mutation.

    Only ``set``/``set_many``/``discard`` are logged — pops and stale
    drops are decisions of the search loop, captured separately as
    events — so replaying the op log against another queue with the
    same content reproduces versions, peak size and pop order exactly.
    """

    def __init__(self, interner: LeafsetInterner, ops: List[Tuple]) -> None:
        super().__init__(interner)
        self._ops = ops

    def set(self, pair: Pair, gain: float, payload: object = None) -> None:
        key = self._pair_key(pair)
        self._ops.append((OP_SET, key[0], key[1], gain))
        super().set(pair, gain, payload)

    def set_many(self, entries) -> None:
        entries = list(entries)
        ops = self._ops
        pair_key = self._pair_key
        for pair, gain, _payload in entries:
            key = pair_key(pair)
            ops.append((OP_SET, key[0], key[1], gain))
        super().set_many(entries)

    def discard(self, pair: Pair) -> None:
        key = self._pair_key(pair)
        self._ops.append((OP_DISCARD, key[0], key[1], 0.0))
        super().discard(pair)


class ComponentRecorder:
    """Captures a worker run for replay (see :func:`run_partial`).

    ``make_queue`` hands the search a :class:`_RecordingQueue`; the
    ``on_*`` hooks log the queue-head decisions.  Events are recorded
    as mutable lists so ``on_refresh_gains`` can patch the merge event
    it follows, and tuple-ised when the payload is built.
    """

    def __init__(self) -> None:
        self.ops: List[Tuple[int, int, int, float]] = []
        self.events: List[List] = []
        self._interner: Optional[LeafsetInterner] = None

    def make_queue(self, interner: LeafsetInterner) -> CandidateQueue:
        self._interner = interner
        return _RecordingQueue(interner, self.ops)

    def _event(
        self,
        kind: int,
        leaf_x: LeafKey,
        leaf_y: LeafKey,
        gain: float,
        breakdown: Optional[GainBreakdown],
    ) -> None:
        intern = self._interner.intern
        id_x, id_y = intern(leaf_x), intern(leaf_y)
        if id_x > id_y:
            id_x, id_y = id_y, id_x
        self.events.append(
            [
                kind,
                id_x,
                id_y,
                gain,
                breakdown.data_leaf_gain if breakdown is not None else 0.0,
                breakdown.model_gain if breakdown is not None else 0.0,
                breakdown.data_core_gain if breakdown is not None else 0.0,
                0,
                len(self.ops),
            ]
        )

    def on_merge(
        self,
        leaf_x: LeafKey,
        leaf_y: LeafKey,
        gain: float,
        breakdown: GainBreakdown,
        clean: bool,
    ) -> None:
        kind = EV_CLEAN_MERGE if clean else EV_DIRTY_MERGE
        self._event(kind, leaf_x, leaf_y, gain, breakdown)

    def on_push(self, leaf_x: LeafKey, leaf_y: LeafKey) -> None:
        self._event(EV_PUSH, leaf_x, leaf_y, 0.0, None)

    def on_drop(self, leaf_x: LeafKey, leaf_y: LeafKey) -> None:
        self._event(EV_DROP, leaf_x, leaf_y, 0.0, None)

    def on_refresh_gains(self, refresh_gains: int) -> None:
        self.events[-1][7] = refresh_gains


def connected_components(db: InvertedDatabase) -> List[List[int]]:
    """Components of the shares-a-coreset relation, as interned ids.

    Union-find over the per-coreset membership id lists.  Components
    are returned with ascending ids, ordered by their smallest id —
    fully determined by the interner, hence hash-seed independent.
    """
    count = len(db.interner)
    parent = list(range(count))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for ids in db.coreset_leaf_ids().values():
        root = find(ids[0])
        for other in ids[1:]:
            other_root = find(other)
            if other_root != root:
                parent[other_root] = root
    groups: Dict[int, List[int]] = {}
    for node in range(count):
        groups.setdefault(find(node), []).append(node)
    return sorted(groups.values(), key=lambda group: group[0])


def _mine_component(leaf_ids: List[int]) -> ComponentRun:
    """Worker entrypoint: mine one component on a restricted copy."""
    import os

    db, standard_table, core_table, include_model_cost, scope, source, traced = (
        _WORKER_STATE
    )
    obs = Observation.for_worker(trace=traced)
    with activate(obs):
        with obs.span("search.component", leafsets=len(leaf_ids)):
            leafset_of = db.interner.leafset_of
            local = db.restricted_copy(leafset_of(i) for i in leaf_ids)
            recorder = ComponentRecorder()
            # ``initial_dl_bits=0.0`` skips the from-scratch DL pass:
            # replay reconstructs the global DL from the recorded
            # breakdowns, so the worker's local DL floats are never
            # read.
            trace = run_partial(
                local,
                standard_table,
                core_table,
                include_model_cost=include_model_cost,
                update_scope=scope,
                initial_dl_bits=0.0,
                pair_source=source,
                recorder=recorder,
            )
    local_interner = local.interner
    return ComponentRun(
        leafsets=[local_interner.leafset_of(i) for i in range(len(local_interner))],
        ops=recorder.ops,
        events=[tuple(event) for event in recorder.events],
        refreshes_skipped=trace.refreshes_skipped,
        dirty_revalidations=trace.dirty_revalidations,
        spans=obs.tracer.export_spans() if traced else None,
        pid=os.getpid(),
    )


def _mine_components(
    db: InvertedDatabase,
    standard_table: StandardCodeTable,
    core_table: CoreCodeTable,
    include_model_cost: bool,
    update_scope: str,
    pair_source: str,
    components: List[List[int]],
    workers: Optional[int],
    policy: Optional[RuntimePolicy] = None,
) -> Tuple[List[ComponentRun], Optional[SiteReport]]:
    """Run :func:`_mine_component` over all components, in order.

    Jobs are submitted largest-component-first (the tail of small
    components then packs the stragglers), but results are returned in
    component order.  One worker — or one component — runs in-process
    with no supervision (report ``None``).  Pool execution goes
    through :func:`repro.runtime.supervisor.run_supervised` (site
    ``"search"``, task index = position in the largest-first
    submission order): the parent keeps ``_WORKER_STATE`` installed on
    every platform so an exhausted component degrades to an in-process
    — bit-exact — re-mine.
    """
    requested = (
        workers if workers is not None else (multiprocessing.cpu_count() or 1)
    )
    order = sorted(
        range(len(components)), key=lambda i: (-len(components[i]), i)
    )
    jobs = [components[i] for i in order]
    obs = current()
    state = (
        db,
        standard_table,
        core_table,
        include_model_cost,
        update_scope,
        pair_source,
        obs.tracer.enabled,
    )
    report: Optional[SiteReport] = None
    if requested <= 1 or len(jobs) <= 1:
        _set_worker_state(state)
        try:
            results = [_mine_component(job) for job in jobs]
        finally:
            _set_worker_state(None)
    else:
        # Fork children inherit the parent's memory (the database and
        # code tables reach the workers without a single pickle byte);
        # the parent-side state doubles as the supervisor's degraded
        # re-execution context on every platform.
        _set_worker_state(state)
        try:
            if "fork" in multiprocessing.get_all_start_methods():
                results, report = run_supervised(
                    "search",
                    jobs,
                    _mine_component,
                    policy,
                    max_workers=min(requested, len(jobs)),
                    mp_context=multiprocessing.get_context("fork"),
                    expect_type=ComponentRun,
                )
            else:  # pragma: no cover - non-fork platforms
                results, report = run_supervised(
                    "search",
                    jobs,
                    _mine_component,
                    policy,
                    max_workers=min(requested, len(jobs)),
                    initializer=_set_worker_state,
                    initargs=(state,),
                    expect_type=ComponentRun,
                )
        finally:
            _set_worker_state(None)
    runs: List[Optional[ComponentRun]] = [None] * len(components)
    for slot, result in zip(order, results):
        runs[slot] = result
    if obs.tracer.enabled:
        harvest = obs.tracer.now()
        for slot, run in enumerate(runs):
            if run is None or not run.spans:
                continue
            align = None if run.pid == obs.tracer.pid else harvest
            obs.tracer.adopt(
                run.spans, run.pid, f"search[{slot}]", align_end=align
            )
    return runs, report


#: Human-readable names for the event/op kind codes, for diagnostics.
EV_NAMES = {
    EV_CLEAN_MERGE: "clean-merge",
    EV_DIRTY_MERGE: "dirty-merge",
    EV_PUSH: "push",
    EV_DROP: "drop",
}
OP_NAMES = {OP_SET: "set", OP_DISCARD: "discard"}


def _desync(
    detail: str,
    component: Optional[int] = None,
    event_index: Optional[int] = None,
    kind: Optional[int] = None,
) -> MiningError:
    """A stitch mismatch, with enough context to localise the bug.

    A desync is always an implementation bug (the replay contract is
    exact), so the message carries the coordinates a debugger needs:
    which component's recording diverged, at which event cursor, on
    what kind of decision.
    """
    context = []
    if component is not None:
        context.append(f"component {component}")
    if event_index is not None:
        context.append(f"event {event_index}")
    if kind is not None:
        context.append(f"kind {EV_NAMES.get(kind, repr(kind))}")
    suffix = f" ({', '.join(context)})" if context else ""
    return MiningError(f"sharded replay desync: {detail}{suffix}")


def _stitch(
    db: InvertedDatabase,
    update_scope: str,
    initial_dl_bits: float,
    initial_candidate_gains: int,
    runs: List[ComponentRun],
) -> RunTrace:
    """Replay the recorded component runs into the serial result.

    Drives one real global queue: seeding applies every component's
    recorded seed entries in global pair-key order, then each pop is
    matched against the owning component's next recorded event —
    merges execute on the global database (which also interns merged
    leafsets in the serial order), pushes and drops just apply their
    recorded queue ops, and a locally-merged pair that loses the global
    head comparison is pushed back with its component cursor parked
    (see the module docstring).  Any mismatch between the queue head
    and the recorded decision stream raises a ``MiningError`` rather
    than silently diverging from the serial search.
    """
    obs = current()
    with obs.span("search.stitch", components=len(runs)):
        return _replay(
            db,
            update_scope,
            initial_dl_bits,
            initial_candidate_gains,
            runs,
            obs,
        )


def _replay(
    db: InvertedDatabase,
    update_scope: str,
    initial_dl_bits: float,
    initial_candidate_gains: int,
    runs: List[ComponentRun],
    obs,
) -> RunTrace:
    """The :func:`_stitch` body, under the stitch span."""
    lazy = update_scope == "lazy"
    trace = RunTrace(algorithm=f"cspm-partial/{update_scope}")
    trace.initial_dl_bits = initial_dl_bits
    trace.initial_candidate_gains = initial_candidate_gains
    dl = initial_dl_bits
    interner = db.interner
    pair_key = interner.pair_key
    queue = CandidateQueue(interner)
    leaf_component: Dict[LeafKey, int] = {}
    for index, run in enumerate(runs):
        for leaf in run.leafsets:
            leaf_component[leaf] = index
    cursors = [0] * len(runs)
    pushed: List[Optional[Pair]] = [None] * len(runs)

    def apply_ops(run: ComponentRun, cursor: int) -> None:
        events = run.events
        start = events[cursor][8]
        end = (
            events[cursor + 1][8]
            if cursor + 1 < len(events)
            else len(run.ops)
        )
        leafsets = run.leafsets
        for kind, id_a, id_b, gain in run.ops[start:end]:
            target = (leafsets[id_a], leafsets[id_b])
            if kind == OP_SET:
                queue.set(target, gain, None)
            else:
                queue.discard(target)

    seed_entries: List[Tuple[Pair, float]] = []
    for index, run in enumerate(runs):
        end = run.events[0][8] if run.events else len(run.ops)
        leafsets = run.leafsets
        for op_index, (kind, id_a, id_b, gain) in enumerate(run.ops[:end]):
            if kind != OP_SET:
                raise _desync(
                    f"op {OP_NAMES.get(kind, repr(kind))} recorded during "
                    f"seeding at op index {op_index}",
                    component=index,
                )
            seed_entries.append(((leafsets[id_a], leafsets[id_b]), gain))
    seed_entries.sort(key=lambda entry: pair_key(entry[0]))
    queue.set_many((pair, gain, None) for pair, gain in seed_entries)

    pending = 0
    refreshes_skipped = sum(run.refreshes_skipped for run in runs)
    dirty_revalidations = sum(run.dirty_revalidations for run in runs)
    iteration = 0
    while True:
        entry = queue.pop_entry()
        if entry is None:
            break
        pair = entry[0]
        comp = leaf_component.get(pair[0])
        if comp is None:
            raise _desync(f"queue head {pair!r} belongs to no component")
        run = runs[comp]
        cursor = cursors[comp]
        if cursor >= len(run.events):
            raise _desync(
                "component's event log exhausted early",
                component=comp,
                event_index=cursor,
            )
        event = run.events[cursor]
        kind = event[0]
        if pushed[comp] is not None:
            # The parked merge event resurfacing (no other pair of the
            # component can beat its fresh gain in the meantime).
            if pushed[comp] != pair or kind != EV_DIRTY_MERGE:
                raise _desync(
                    "pushed-back pair did not resurface first",
                    component=comp,
                    event_index=cursor,
                    kind=kind,
                )
            pushed[comp] = None
            if lazy:
                # The serial re-pop is clean: only other components
                # merged in between, touching no common coreset.
                refreshes_skipped += 1
            else:
                # The serial re-pop revalidates again (same floats:
                # the component's state did not change in between).
                pending += 1
                if _loses_head(queue, pair_key, pair, event[3]):
                    queue.set(pair, event[3], None)
                    pushed[comp] = pair
                    continue
        else:
            expected = (run.leafsets[event[1]], run.leafsets[event[2]])
            if expected != pair:
                raise _desync(
                    "queue head does not match the next event",
                    component=comp,
                    event_index=cursor,
                    kind=kind,
                )
            if kind == EV_DIRTY_MERGE:
                pending += 1
                if _loses_head(queue, pair_key, pair, event[3]):
                    queue.set(pair, event[3], None)
                    pushed[comp] = pair
                    continue
            elif kind in (EV_PUSH, EV_DROP):
                pending += 1
                apply_ops(run, cursor)
                cursors[comp] = cursor + 1
                continue
            elif kind != EV_CLEAN_MERGE:
                raise _desync(
                    f"unknown event kind {kind!r}",
                    component=comp,
                    event_index=cursor,
                )
        gain = event[3]
        breakdown = GainBreakdown(event[4], event[5], event[6])
        num_leafsets = db.num_leafsets
        possible = num_leafsets * (num_leafsets - 1) // 2
        db.merge(pair[0], pair[1])
        dl -= breakdown.total
        trace.record_merge_components(breakdown)
        iteration += 1
        gains_computed = pending + event[7]
        pending = 0
        apply_ops(run, cursor)
        cursors[comp] = cursor + 1
        trace.iterations.append(
            IterationTrace(
                iteration=iteration,
                gains_computed=gains_computed,
                possible_pairs=possible,
                num_leafsets=num_leafsets,
                merged_pair=merged_pair_record(pair[0], pair[1]),
                gain=gain,
                total_dl_bits=dl,
            )
        )
        obs.progress.heartbeat(
            "search.stitch", merges=iteration, queue=len(queue)
        )
    for index, run in enumerate(runs):
        if cursors[index] != len(run.events) or pushed[index] is not None:
            raise _desync(
                f"component replay incomplete at termination "
                f"({len(run.events) - cursors[index]} events unconsumed"
                f"{', pair still pushed back' if pushed[index] is not None else ''})",
                component=index,
                event_index=cursors[index],
            )
    trace.final_dl_bits = dl
    trace.peak_queue_size = queue.peak_size
    trace.refreshes_skipped = refreshes_skipped
    trace.dirty_revalidations = dirty_revalidations
    return trace


def _loses_head(
    queue: CandidateQueue,
    pair_key,
    pair: Pair,
    gain: float,
) -> bool:
    """The serial revalidation comparison: push back when the fresh
    gain falls below the runner-up, or ties it with a larger key."""
    next_best = queue.peek()
    if next_best is None:
        return False
    next_pair, next_gain = next_best
    return gain < next_gain or (
        gain == next_gain and pair_key(pair) > pair_key(next_pair)
    )


def run_sharded(
    db: InvertedDatabase,
    standard_table: StandardCodeTable,
    core_table: CoreCodeTable,
    include_model_cost: bool = True,
    update_scope: str = "lazy",
    initial_dl_bits: Optional[float] = None,
    pair_source: str = "overlap",
    workers: Optional[int] = None,
    policy: Optional[RuntimePolicy] = None,
) -> ShardedSearch:
    """Component-sharded CSPM-Partial, bit-exact with the serial run.

    Mutates ``db`` exactly as :func:`run_partial` would and returns the
    identical :class:`RunTrace` (merge sequence, DL floats, every
    counter) wrapped with the component statistics.  ``workers`` is the
    worker-process cap (``None``: the CPU count); iteration caps are
    not supported — a cap cuts the global merge sequence at a point no
    worker can locate, so the pipeline falls back to the serial path.
    ``policy`` configures the supervised pool (timeouts, retries,
    degradation, fault injection); degraded components are re-mined
    in-process, so the bit-exactness contract holds under arbitrary
    worker failure.
    """
    if update_scope not in UPDATE_SCOPES:
        raise MiningError(
            f"update_scope must be one of {UPDATE_SCOPES}, got {update_scope!r}"
        )
    if pair_source not in PAIR_SOURCES:
        raise MiningError(
            f"pair_source must be one of {PAIR_SOURCES}, got {pair_source!r}"
        )
    if workers is not None and workers < 1:
        raise MiningError(f"search_workers must be >= 1, got {workers!r}")
    if initial_dl_bits is None:
        initial_dl_bits = description_length(
            db, standard_table, core_table
        ).total_bits
    num_leafsets = db.num_leafsets
    # The serial seeding evaluates cross-component pairs too (their
    # gain is zero, so they never enter any queue): recount here
    # instead of summing worker-local counts.
    if pair_source == "full":
        initial_gains = num_leafsets * (num_leafsets - 1) // 2
    else:
        initial_gains = len(overlap_pairs(db))
    components = connected_components(db)
    current().progress.note(
        "search",
        components=len(components),
        largest=max((len(c) for c in components), default=0),
    )
    runs, report = _mine_components(
        db,
        standard_table,
        core_table,
        include_model_cost,
        update_scope,
        pair_source,
        components,
        workers,
        policy,
    )
    trace = _stitch(db, update_scope, initial_dl_bits, initial_gains, runs)
    largest = max((len(component) for component in components), default=0)
    return ShardedSearch(
        trace=trace,
        num_components=len(components),
        largest_component_frac=(
            largest / num_leafsets if num_leafsets else 0.0
        ),
        report=report,
    )
