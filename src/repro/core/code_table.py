"""Code tables: the standard code table ST and the coreset table CTc.

Following Krimp's framework (paper, Section III and IV-C):

* the **standard code table** ``ST`` assigns every attribute value an
  optimal Shannon code from its global frequency in the mapping
  function, ``L(v) = -log2 P(v)`` (Eq. 5).  ST prices the *content* of
  patterns stored in the model;
* the **coreset code table** ``CTc`` assigns each coreset a code from
  its usage.  For singleton coresets CTc coincides with ST (paper,
  Section IV-C); a multi-value coreset encoder supplies its own usages.

The leafset table ``CTL`` is not materialised separately: its rows are
exactly the live rows of the inverted database and their conditional
code lengths ``-log2(fL / fc)`` (Eq. 6) are derived on demand by
:mod:`repro.core.mdl`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, FrozenSet, Hashable, Iterable, Mapping

from repro.errors import EncodingError
from repro.graphs.attributed_graph import AttributedGraph

Value = Hashable
CoreKey = FrozenSet[Value]


class StandardCodeTable:
    """Optimal per-value Shannon codes from global value frequencies."""

    def __init__(self, frequencies: Mapping[Value, int]) -> None:
        self._lengths: Dict[Value, float] = {}
        # Integer sum: exact in any order.
        total = sum(frequencies.values())  # repro: noqa[DET001]
        if total <= 0:
            raise EncodingError("cannot build a code table from empty data")
        for value, count in frequencies.items():
            if count <= 0:
                raise EncodingError(f"non-positive frequency for {value!r}")
            self._lengths[value] = -math.log2(count / total)
        self._total = total

    @classmethod
    def from_graph(cls, graph: AttributedGraph) -> "StandardCodeTable":
        """ST over the graph's vertex->value mapping function."""
        frequencies = graph.value_frequencies()
        if not frequencies:
            raise EncodingError("graph has no attribute values")
        return cls(frequencies)

    @property
    def total_occurrences(self) -> int:
        return self._total

    def __contains__(self, value: Value) -> bool:
        return value in self._lengths

    def __len__(self) -> int:
        return len(self._lengths)

    def code_length(self, value: Value) -> float:
        """``L(v) = -log2 P(v)`` in bits (Eq. 5)."""
        try:
            return self._lengths[value]
        except KeyError:
            raise EncodingError(f"value {value!r} is not in the code table") from None

    def set_cost(self, values: Iterable[Value]) -> float:
        """Cost in bits of materialising ``values`` in a code table.

        Terms are summed in sorted order: float addition is order-
        sensitive and set iteration order varies with the hash seed, so
        this keeps every derived description length (including the
        incremental gain bookkeeping) identical across processes.
        """
        return sum(
            self.code_length(value) for value in sorted(values, key=repr)
        )

    def lengths(self) -> Dict[Value, float]:
        """A copy of the value -> code length mapping."""
        return dict(self._lengths)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable representation.

        Code lengths are stored as ``[value, bits]`` pairs (sorted by
        value repr for determinism) because JSON object keys must be
        strings while attribute values may be e.g. ints.
        """
        return {
            "total_occurrences": self._total,
            "lengths": [
                [value, bits]
                for value, bits in sorted(
                    self._lengths.items(), key=lambda item: repr(item[0])
                )
            ],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "StandardCodeTable":
        """Rebuild a table from :meth:`to_dict` output, bit-exactly."""
        table = cls.__new__(cls)
        table._lengths = {value: bits for value, bits in document["lengths"]}
        table._total = document["total_occurrences"]
        return table


class CoreCodeTable:
    """Coreset codes ``Code_c`` from coreset usage (Eq. 5 applied to Sc).

    ``usage`` counts how often each coreset occurs in the graph: for a
    singleton coreset this is the mapping-table frequency of its value;
    for multi-value coresets it is the cover usage reported by the
    itemset encoder (Section IV-F, step 1).
    """

    def __init__(self, usage: Mapping[CoreKey, int]) -> None:
        if not usage:
            raise EncodingError("coreset usage must be non-empty")
        self._usage: Dict[CoreKey, int] = {}
        total = 0
        # Integer accumulation: exact in any order.
        for coreset, count in usage.items():  # repro: noqa[DET001]
            if count <= 0:
                raise EncodingError(f"non-positive usage for coreset {set(coreset)}")
            key = frozenset(coreset)
            self._usage[key] = self._usage.get(key, 0) + count
            total += count
        self._total = total
        self._lengths = {
            coreset: -math.log2(count / total)
            for coreset, count in self._usage.items()
        }

    @classmethod
    def singletons_from_graph(cls, graph: AttributedGraph) -> "CoreCodeTable":
        """The singleton-coreset table: CTc == ST (paper, Section IV-C)."""
        return cls(
            {
                frozenset([value]): count
                for value, count in graph.value_frequencies().items()
            }
        )

    @property
    def total_usage(self) -> int:
        return self._total

    def __contains__(self, coreset: CoreKey) -> bool:
        return frozenset(coreset) in self._lengths

    def __len__(self) -> int:
        return len(self._lengths)

    def coresets(self) -> Iterable[CoreKey]:
        return self._lengths.keys()

    def usage(self, coreset: CoreKey) -> int:
        try:
            return self._usage[frozenset(coreset)]
        except KeyError:
            raise EncodingError(f"unknown coreset {set(coreset)}") from None

    def code_length(self, coreset: CoreKey) -> float:
        """``L(Code_c(Sc))`` in bits."""
        try:
            return self._lengths[frozenset(coreset)]
        except KeyError:
            raise EncodingError(f"unknown coreset {set(coreset)}") from None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable representation.

        Usages are stored as ``[sorted_values, count]`` pairs; code
        lengths are recomputed exactly on :meth:`from_dict` since they
        are a pure function of the usage counts.
        """
        entries = sorted(
            self._usage.items(),
            key=lambda item: sorted(map(repr, item[0])),
        )
        return {
            "usage": [
                [sorted(coreset, key=repr), count] for coreset, count in entries
            ]
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "CoreCodeTable":
        """Rebuild a table from :meth:`to_dict` output."""
        return cls(
            {frozenset(values): count for values, count in document["usage"]}
        )
