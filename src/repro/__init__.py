"""CSPM — mining representative attribute-stars via MDL.

A faithful, from-scratch reproduction of the ICDE 2022 paper
*"Discovering Representative Attribute-stars via Minimum Description
Length"* (Liu, Zhou, Fournier-Viger, Yang, Pan, Nouioua).

The package is organised around the paper's pipeline:

``repro.graphs``
    The attributed-graph substrate: data structure, builders, IO,
    statistics and synthetic generators.
``repro.core``
    The paper's primary contribution: the inverted database, MDL
    accounting, the CSPM-Basic and CSPM-Partial search procedures, and
    the a-star scoring module (Algorithm 5).
``repro.itemsets``
    Krimp and SLIM, the MDL itemset miners used both as the multi-value
    coreset encoder (Section IV-F) and as the runtime baseline of
    Table III.
``repro.nn`` / ``repro.completion``
    A numpy autograd substrate with graph neural baselines and the node
    attribute completion task of Table IV.
``repro.alarms``
    The telecom alarm-correlation application of Fig. 8, with a
    synthetic alarm simulator and the ACOR baseline.
``repro.datasets``
    Synthetic analogues of the paper's benchmark datasets.

Quickstart::

    from repro import CSPM, AttributedGraph

    graph = AttributedGraph.from_edges(
        edges=[(1, 2), (1, 3)],
        attributes={1: {"a"}, 2: {"a", "c"}, 3: {"c"}},
    )
    result = CSPM().fit(graph)
    for star in result.top(5):
        print(star)
"""

from repro.core.astar import AStar
from repro.core.miner import CSPM, CSPMResult
from repro.core.scoring import AStarScorer
from repro.errors import GraphError, MiningError, ReproError
from repro.graphs.attributed_graph import AttributedGraph

__version__ = "1.0.0"

__all__ = [
    "AStar",
    "AStarScorer",
    "AttributedGraph",
    "CSPM",
    "CSPMResult",
    "GraphError",
    "MiningError",
    "ReproError",
    "__version__",
]
