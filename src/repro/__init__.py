"""CSPM — mining representative attribute-stars via MDL.

A faithful, from-scratch reproduction of the ICDE 2022 paper
*"Discovering Representative Attribute-stars via Minimum Description
Length"* (Liu, Zhou, Fournier-Viger, Yang, Pan, Nouioua).

The package is organised around the paper's pipeline:

``repro.graphs``
    The attributed-graph substrate: data structure, builders, IO,
    statistics and synthetic generators.
``repro.core``
    The paper's primary contribution: the inverted database, MDL
    accounting, the CSPM-Basic and CSPM-Partial search procedures, and
    the a-star scoring module (Algorithm 5).  Position masks are
    pluggable (``repro.core.masks``): whole-graph bigint bitmaps, a
    sparse chunked representation for paper-scale graphs, or
    numpy-packed chunks — all mining bit-identical models
    (``CSPMConfig(mask_backend=...)``, default ``"auto"``).
``repro.config`` / ``repro.pipeline`` / ``repro.batch``
    The public API surface: the frozen :class:`CSPMConfig`, the
    composable :class:`MiningPipeline` (encode coresets -> inverted DB
    -> search -> rank & filter), and the multi-graph :func:`fit_many`
    batch runner.  ``CSPM`` is a thin facade over the default
    pipeline.
``repro.runtime``
    The supervised parallel runtime: every worker pool (partitioned
    construction, sharded search, batch runs) gets per-task timeouts,
    bounded deterministic retries, bit-exact degrade-to-serial, and
    reproducible fault injection (:class:`FaultPlan`) — see
    ``docs/RESILIENCE.md``.
``repro.obs``
    The observability layer: nestable spans on an injected clock with
    a merged cross-process timeline (Chrome trace / NDJSON export), a
    metrics registry unifying the run counters and supervisor
    telemetry, and throttled progress heartbeats — all behind
    zero-cost no-op defaults, enabled via
    ``CSPMConfig(trace=..., metrics=..., progress=...)`` or the
    matching ``mine``/``bench`` flags — see ``docs/OBSERVABILITY.md``.
``repro.itemsets``
    Krimp and SLIM, the MDL itemset miners used both as the multi-value
    coreset encoder (Section IV-F) and as the runtime baseline of
    Table III.
``repro.nn`` / ``repro.completion``
    A numpy autograd substrate with graph neural baselines and the node
    attribute completion task of Table IV.
``repro.alarms``
    The telecom alarm-correlation application of Fig. 8, with a
    synthetic alarm simulator and the ACOR baseline.
``repro.datasets``
    Synthetic analogues of the paper's benchmark datasets.

Quickstart::

    from repro import CSPM, CSPMConfig, AttributedGraph, fit_many

    graph = AttributedGraph.from_edges(
        edges=[(1, 2), (1, 3)],
        attributes={1: {"a"}, 2: {"a", "c"}, 3: {"c"}},
    )

    # One graph, default settings (equivalent: CSPM().fit(graph)).
    config = CSPMConfig(method="partial", top_k=5)
    result = CSPM(config=config).fit(graph)
    for star in result.top(5):
        print(star)
    payload = result.to_json()          # ship it; from_json round-trips

    # Many graphs, one config, optional process-parallel execution.
    batch = fit_many([graph, graph], config, n_jobs=2, executor="process")

    # Custom stages via the explicit pipeline.
    from repro import MiningPipeline
    pipeline = MiningPipeline.default(config).with_stage(
        lambda ctx: print("rows:", ctx.inverted_db.num_rows),
        before="Search",
    )
    result = pipeline.run(graph)
"""

from repro.batch import BatchResult, BatchRun, fit_many
from repro.config import CONSTRUCTIONS, MASK_BACKENDS, SEARCHES, CSPMConfig
from repro.core.astar import AStar
from repro.core.masks import MaskBackend
from repro.core.miner import CSPM
from repro.core.result import CSPMResult
from repro.core.scoring import AStarScorer
from repro.errors import (
    ConfigError,
    GraphError,
    MiningError,
    ReproError,
    WorkerFailure,
)
from repro.graphs.attributed_graph import AttributedGraph
from repro.pipeline import MiningPipeline, PipelineContext, PipelineStage
from repro.runtime import FaultEvent, FaultPlan

__version__ = "1.9.0"

__all__ = [
    "AStar",
    "AStarScorer",
    "AttributedGraph",
    "BatchResult",
    "BatchRun",
    "CONSTRUCTIONS",
    "CSPM",
    "CSPMConfig",
    "CSPMResult",
    "ConfigError",
    "FaultEvent",
    "FaultPlan",
    "GraphError",
    "MASK_BACKENDS",
    "MaskBackend",
    "MiningError",
    "MiningPipeline",
    "PipelineContext",
    "PipelineStage",
    "ReproError",
    "SEARCHES",
    "WorkerFailure",
    "fit_many",
    "__version__",
]
