"""Command-line interface for the reproduction.

Subcommands::

    python -m repro.cli mine <graph.json>        # mine + print a-stars
    python -m repro.cli mine <graph.json> --json # machine-readable run
    python -m repro.cli stats <graph.json>       # Table II style stats
    python -m repro.cli datasets                 # list dataset analogues
    python -m repro.cli generate <name> out.json # write an analogue
    python -m repro.cli alarms                   # Fig. 8 style comparison
    python -m repro.cli bench --quick            # perf suite -> BENCH_cspm.json
    python -m repro.cli lint                     # invariant linter (repro.analysis)
    python -m repro.cli version                  # print the package version

Every subcommand goes through the typed public API: mining options are
collected into a :class:`repro.config.CSPMConfig` and run through the
default :class:`repro.pipeline.MiningPipeline` — the identical code
path the ``CSPM`` facade drives for library consumers — with the
observability session (``--trace``/``--metrics``/``--progress``,
:mod:`repro.obs`) exported after the run.
Graphs are exchanged in the JSON format of :mod:`repro.graphs.io`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.config import (
    CONSTRUCTIONS,
    ENCODERS,
    MASK_BACKENDS,
    METHODS,
    ON_WORKER_FAILURE,
    SEARCHES,
    UPDATE_SCOPES,
    CSPMConfig,
)
from repro.datasets import available_datasets, load_dataset
from repro.errors import ReproError
from repro.graphs.io import load_json, save_json
from repro.graphs.stats import graph_stats


def _add_mine(subparsers) -> None:
    parser = subparsers.add_parser("mine", help="mine a-stars from a graph")
    parser.add_argument("graph", help="path to a graph JSON file")
    parser.add_argument("--method", choices=METHODS, default="partial")
    parser.add_argument(
        "--encoder",
        choices=ENCODERS,
        default="singleton",
        help="coreset encoder (Section IV-F)",
    )
    parser.add_argument(
        "--scope",
        choices=UPDATE_SCOPES,
        default="exhaustive",
        help="partial-update scope (Algorithm 4).  The CLI default "
        "stays 'exhaustive' — the mine --json golden output pins it — "
        "while the library default is 'lazy' (same mined model, fewer "
        "gain evaluations)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        help="patterns to keep (0 = keep all; default: 20 for text "
        "output, all for --json)",
    )
    parser.add_argument(
        "--min-leafset", type=int, default=1, help="minimum leafset size"
    )
    parser.add_argument(
        "--mask-backend",
        choices=MASK_BACKENDS,
        default="auto",
        help="position-mask representation (repro.core.masks): 'auto' "
        "picks bigint below the chunking threshold and sparse chunked "
        "bitmaps at paper scale; every backend mines the identical "
        "model",
    )
    parser.add_argument(
        "--construction",
        choices=CONSTRUCTIONS,
        default="serial",
        help="inverted-database build path (repro.core.construction): "
        "'serial' runs the columnar batch builder in-process, "
        "'partitioned' shards the coreset space over worker processes; "
        "the built database (and the mined model) is identical",
    )
    parser.add_argument(
        "--construction-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --construction partitioned "
        "(default: one per CPU)",
    )
    parser.add_argument(
        "--search",
        choices=SEARCHES,
        default="serial",
        help="greedy-search execution (repro.core.search_shard): "
        "'serial' runs the single-process queue loop, 'sharded' mines "
        "the connected components of the coreset-overlap graph in "
        "worker processes and stitches a bit-identical result; applies "
        "to --method partial without an iteration cap",
    )
    parser.add_argument(
        "--search-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --search sharded "
        "(default: one per CPU)",
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task deadline for supervised worker pools "
        "(repro.runtime.supervisor; default: the supervisor's built-in "
        "generous deadline)",
    )
    parser.add_argument(
        "--max-task-retries",
        type=int,
        default=2,
        metavar="N",
        help="re-submissions of a failed pool task before the "
        "supervisor falls back per --on-worker-failure (default: 2)",
    )
    parser.add_argument(
        "--on-worker-failure",
        choices=ON_WORKER_FAILURE,
        default="degrade",
        help="after the retry budget: 'degrade' re-executes the task "
        "in-process (bit-exact with the serial run, the default) or "
        "'raise' aborts the run with a WorkerFailure",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON|FILE",
        help="deterministic fault-injection schedule for chaos testing "
        "(repro.runtime.faults.FaultPlan as inline JSON or a file "
        "path; the REPRO_FAULT_PLAN environment variable is the "
        "flag-less spelling)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record nested observability spans for every pipeline "
        "stage and worker pool (repro.obs) and write them to FILE as "
        "Chrome trace-event JSON — NDJSON when FILE ends with "
        "'.ndjson' — loadable in Perfetto or chrome://tracing; "
        "recording never changes the mined result",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write the run's metric snapshot (named counters, gauges "
        "and histograms, repro.obs) to FILE as JSON",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print throttled progress heartbeats for long phases to "
        "stderr",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full serialised result (config, a-stars, trace, "
        "DL accounting) as JSON instead of text",
    )


def _add_version(subparsers) -> None:
    subparsers.add_parser(
        "version", help="print the package version and exit"
    )


def _add_stats(subparsers) -> None:
    parser = subparsers.add_parser("stats", help="print graph statistics")
    parser.add_argument("graph", help="path to a graph JSON file")


def _add_datasets(subparsers) -> None:
    subparsers.add_parser("datasets", help="list dataset analogues")


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser("generate", help="write a dataset analogue")
    parser.add_argument("name", help="dataset name (see `datasets`)")
    parser.add_argument("output", help="output JSON path")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)


def _add_alarms(subparsers) -> None:
    parser = subparsers.add_parser(
        "alarms", help="run the alarm-correlation comparison (Fig. 8)"
    )
    parser.add_argument("--devices", type=int, default=80)
    parser.add_argument("--windows", type=int, default=150)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--method",
        choices=METHODS,
        default="partial",
        help="CSPM search variant used for rule extraction",
    )


def _add_lint(subparsers) -> None:
    parser = subparsers.add_parser(
        "lint",
        help="run the project invariant linter (repro.analysis)",
        description="Static analysis over the repro source tree for the "
        "project's correctness contracts: hash-seed-stable accumulation "
        "(DET*), mask-backend protocol conformance and pure read ops "
        "(MSK*), fork/pickle safety of pool callables and worker "
        "payloads (FRK*), and config/CLI drift (CFG*).  Exit code 1 on "
        "any non-baselined finding.  See docs/INVARIANTS.md.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (the CI artifact) "
        "instead of text",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="subtract grandfathered findings recorded in this baseline "
        "document (see repro.analysis.baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write every current finding to FILE as the new baseline "
        "and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable; default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def _add_bench(subparsers) -> None:
    from repro.perf.suite import add_bench_arguments

    parser = subparsers.add_parser(
        "bench",
        help="run the perf suite and write BENCH_cspm.json",
        description="Measure overlap-driven vs full-scan candidate "
        "generation and the lazy-refresh counters on the Fig. 5 / "
        "Table III synthetic workloads (see repro.perf.suite).  With "
        "--workload, only the named families are re-measured and the "
        "rest of an existing output document is preserved.",
    )
    add_bench_arguments(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSPM: representative attribute-stars via MDL (ICDE 2022)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_mine(subparsers)
    _add_version(subparsers)
    _add_stats(subparsers)
    _add_datasets(subparsers)
    _add_generate(subparsers)
    _add_alarms(subparsers)
    _add_lint(subparsers)
    _add_bench(subparsers)
    return parser


def _mine_config(args) -> CSPMConfig:
    """The CSPMConfig described by the ``mine`` arguments.

    In ``--json`` mode the ``--top``/``--min-leafset`` post-filters go
    into the config (and hence into the serialised result); in text
    mode they only trim the printout, so the summary reports the true
    mined counts — matching how the miner behaves without a CLI.
    """
    post_filters = {}
    if args.json:
        post_filters = {
            "top_k": args.top if args.top and args.top > 0 else None,
            "min_leafset": max(1, args.min_leafset),
        }
    return CSPMConfig(
        method=args.method,
        coreset_encoder=args.encoder,
        partial_update_scope=args.scope,
        mask_backend=args.mask_backend,
        construction=args.construction,
        construction_workers=args.construction_workers,
        search=args.search,
        search_workers=args.search_workers,
        worker_timeout=args.worker_timeout,
        max_task_retries=args.max_task_retries,
        on_worker_failure=args.on_worker_failure,
        fault_plan=args.fault_plan,
        trace=args.trace is not None,
        metrics=args.metrics is not None,
        progress=args.progress,
        **post_filters,
    )


def _export_observability(args, obs) -> None:
    """Write the run's trace/metrics files, confirming on stderr.

    stdout stays reserved for the mined result (``--json`` pipelines
    depend on it), so the file confirmations go to stderr like the
    progress heartbeats.
    """
    if obs is None:
        return
    if args.trace:
        obs.tracer.write(args.trace)
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(obs.metrics.snapshot(), handle, indent=2)
            handle.write("\n")
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)


def _command_mine(args) -> int:
    from repro.pipeline import MiningPipeline

    graph = load_json(args.graph)
    config = _mine_config(args)
    # Run through the pipeline context (not the CSPM facade) so the
    # observation session — spans, metrics, progress — stays reachable
    # after the run; the mined result is identical either way.
    context = MiningPipeline.default(config).run_context(graph)
    result = context.result
    _export_observability(args, context.obs)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(result.summary())
    top = args.top if args.top is not None else 20
    stars = result.filter(min_leafset_size=max(1, args.min_leafset))
    if top > 0:
        stars = stars[:top]
    for star in stars:
        print(f"  {star}")
    return 0


def _command_version(_args) -> int:
    print(__version__)
    return 0


def _command_stats(args) -> int:
    graph = load_json(args.graph)
    print(graph_stats(graph).as_row())
    return 0


def _command_datasets(_args) -> int:
    for name in available_datasets():
        print(name)
    return 0


def _command_generate(args) -> int:
    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    save_json(graph, args.output)
    print(f"wrote {graph} to {args.output}")
    return 0


def _command_alarms(args) -> int:
    from repro.alarms import (
        acor_rank_pairs,
        coverage_curve,
        cspm_rank_pairs,
        default_rule_library,
        simulate_alarms,
    )

    library = default_rule_library(seed=0)
    simulation = simulate_alarms(
        library,
        num_devices=args.devices,
        num_windows=args.windows,
        causes_per_window=2.5,
        derivative_flap_rate=2.0,
        cascade_probability=0.4,
        window_split_probability=0.5,
        seed=args.seed,
    )
    top_ks = [50, 100, 250, 500, 1000, 2000]
    truth = library.pair_rules()
    config = CSPMConfig(method=args.method)
    cspm_curve = coverage_curve(
        cspm_rank_pairs(simulation, config=config), truth, top_ks
    )
    acor_curve = coverage_curve(acor_rank_pairs(simulation), truth, top_ks)
    print("top-K :" + "".join(f"{k:>7}" for k in top_ks))
    print("CSPM  :" + "".join(f"{v:>7.2f}" for v in cspm_curve))
    print("ACOR  :" + "".join(f"{v:>7.2f}" for v in acor_curve))
    return 0


def _command_lint(args) -> int:
    from repro.analysis import lint_paths, resolve_rules, save_baseline

    if args.list_rules:
        for rule in resolve_rules(None):
            print(f"{rule.id}  [{rule.severity}]  {rule.title}")
        return 0
    report = lint_paths(
        paths=args.paths or None,
        rule_ids=args.rules,
        baseline_path=args.baseline,
    )
    if args.write_baseline:
        save_baseline(
            args.write_baseline, report.findings + report.baselined
        )
        print(
            f"wrote {len(report.findings) + len(report.baselined)} "
            f"finding(s) to {args.write_baseline}"
        )
        return 0
    print(report.render_json() if args.json else report.render_text())
    return 0 if report.clean else 1


def _command_bench(args) -> int:
    from repro.perf.suite import execute

    return execute(args)


_COMMANDS = {
    "mine": _command_mine,
    "version": _command_version,
    "stats": _command_stats,
    "datasets": _command_datasets,
    "generate": _command_generate,
    "alarms": _command_alarms,
    "lint": _command_lint,
    "bench": _command_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch a subcommand, converting failures to one-line exits.

    Library errors (:class:`~repro.errors.ReproError`, which covers
    ``MiningError``/``ConfigError``/``WorkerFailure``) and Ctrl-C both
    exit non-zero with a single stderr line instead of a traceback —
    the CLI is the process boundary, so this is where a stack dump
    stops being diagnostics and starts being noise.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
