"""The observation session: tracer + metrics + progress as one handle.

An :class:`Observation` bundles the three recorders behind the small
surface the pipeline threads around (``obs.span``, ``obs.instant``,
``obs.metrics``, ``obs.progress``).  The module-level :data:`NULL_OBS`
is the permanent default — every component is the no-op singleton, so
code can call ``current().span("mine.search")`` unconditionally and a
disabled run does no recording work.

Activation is a per-process stack::

    with activate(Observation.from_config(config)) as obs:
        ...   # current() returns obs anywhere below this frame

``MiningPipeline.run_context`` activates the config-selected session
around its stages, so deep code (the inverted-database builder, the
searches, the supervisor) reaches the live session through
:func:`current` without signature churn.  Worker processes build their
own session (:meth:`Observation.for_worker`) and ship the closed span
buffer home inside their ordinary result payload.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, TextIO

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.progress import NULL_PROGRESS, ProgressEmitter
from repro.obs.trace import NULL_TRACER, SpanTracer


class Observation:
    """One run's observability session (possibly entirely disabled)."""

    __slots__ = ("tracer", "metrics", "progress")

    def __init__(self, tracer: Any, metrics: Any, progress: Any) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.progress = progress

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.progress.enabled
        )

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        self.tracer.instant(name, **attrs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        trace: bool = False,
        metrics: bool = False,
        progress: bool = False,
        stream: Optional[TextIO] = None,
    ) -> "Observation":
        """A session with the selected recorders live (NULL otherwise)."""
        if not (trace or metrics or progress):
            return NULL_OBS
        return cls(
            SpanTracer() if trace else NULL_TRACER,
            MetricsRegistry() if metrics else NULL_METRICS,
            ProgressEmitter(stream=stream) if progress else NULL_PROGRESS,
        )

    @classmethod
    def from_config(
        cls, config: Any, stream: Optional[TextIO] = None
    ) -> "Observation":
        """The session selected by a config's ``trace``/``metrics``/
        ``progress`` knobs (duck-typed, so older configs mean NULL)."""
        return cls.create(
            trace=bool(getattr(config, "trace", False)),
            metrics=bool(getattr(config, "metrics", False)),
            progress=bool(getattr(config, "progress", False)),
            stream=stream,
        )

    @classmethod
    def for_worker(cls, trace: bool) -> "Observation":
        """A worker-process session: span capture only.

        Metrics and progress stay parent-side (the parent re-emits
        from the shipped results); the worker just needs a buffer whose
        closed spans ride home in the result payload.
        """
        return cls.create(trace=trace)

    def __repr__(self) -> str:
        flags = [
            name
            for name, component in (
                ("trace", self.tracer),
                ("metrics", self.metrics),
                ("progress", self.progress),
            )
            if component.enabled
        ]
        return f"Observation({'+'.join(flags) if flags else 'disabled'})"


NULL_OBS = Observation(NULL_TRACER, NULL_METRICS, NULL_PROGRESS)

#: The per-process activation stack; the top is what :func:`current`
#: returns.  Worker processes start empty (= NULL_OBS).
_ACTIVE: List[Observation] = []


def current() -> Observation:
    """The innermost active session, or :data:`NULL_OBS`."""
    return _ACTIVE[-1] if _ACTIVE else NULL_OBS


@contextmanager
def activate(obs: Observation) -> Iterator[Observation]:
    """Make ``obs`` the :func:`current` session for the ``with`` body."""
    _ACTIVE.append(obs)
    try:
        yield obs
    finally:
        _ACTIVE.pop()


__all__ = ["NULL_OBS", "Observation", "activate", "current"]
