"""Nestable spans on an injected clock, exportable as Chrome trace JSON.

A :class:`SpanTracer` records *closed* spans into a flat per-process
buffer — each span is one picklable tuple ``(name, start, end, depth,
attrs_json)`` — plus instant events ``(name, ts, depth, attrs_json)``.
Worker processes run their own tracer, ship the buffer back through
the supervisor's ordinary result path (the tuples satisfy the FRK002
payload contract), and the parent *adopts* each shipped buffer into a
named lane, offset-aligned so the worker's last span ends at the
parent-clock instant the result was harvested.  The merged timeline
exports two ways:

* :meth:`SpanTracer.chrome_trace` — a Chrome trace-event document
  (``{"traceEvents": [...]}``) with one ``tid`` lane per adopted
  buffer; open it at ``ui.perfetto.dev`` or ``chrome://tracing``.
* :meth:`SpanTracer.ndjson_lines` — one JSON object per span/event,
  start-ordered, for grep/jq pipelines.

Timestamps come from the injected ``clock`` callable (default
:func:`repro.obs.clock.perf_counter`), never from ``time`` directly,
so recording stays DET003/OBS002-clean and tests can drive the clock.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs import clock

#: One closed span: ``(name, start, end, depth, attrs_json)``.  The
#: shape is deliberately a tuple of str/float/int so a worker's buffer
#: can ride inside FRK002-checked result payloads unchanged.
SpanRecord = Tuple[str, float, float, int, str]

#: One instant event: ``(name, ts, depth, attrs_json)``.
EventRecord = Tuple[str, float, int, str]


def _encode_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    return json.dumps(attrs, sort_keys=True, separators=(",", ":"), default=str)


def _decode_attrs(encoded: str) -> Dict[str, Any]:
    return json.loads(encoded) if encoded else {}


class SpanTracer:
    """A per-process span buffer with nesting depth tracking."""

    enabled = True

    def __init__(self, clock_fn: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock_fn if clock_fn is not None else clock.perf_counter
        self._depth = 0
        self.pid = os.getpid()
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        #: Parent-side only: ``(pid, lane, spans)`` per adopted worker
        #: buffer, in adoption order.
        self.adopted: List[Tuple[int, str, List[SpanRecord]]] = []

    def now(self) -> float:
        """The tracer's clock reading (for callers that must not touch
        ``time`` themselves)."""
        return self._clock()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Record a span around the ``with`` body; nesting is tracked
        by depth, and the span closes (and is buffered) even when the
        body raises."""
        start = self._clock()
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            self.spans.append(
                (name, start, self._clock(), self._depth, _encode_attrs(attrs))
            )

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration event (supervisor retries, degrades)."""
        self.events.append(
            (name, self._clock(), self._depth, _encode_attrs(attrs))
        )

    # ------------------------------------------------------------------
    # Cross-process shipping
    # ------------------------------------------------------------------

    def export_spans(self) -> List[SpanRecord]:
        """The closed-span buffer, for shipping out of a worker."""
        return list(self.spans)

    def adopt(
        self,
        spans: Optional[List[SpanRecord]],
        pid: int,
        lane: str,
        align_end: Optional[float] = None,
    ) -> None:
        """Fold a worker's shipped buffer into this (parent) timeline.

        Worker clocks are monotonic but share no epoch with the parent,
        so ``align_end`` — the parent-clock instant the result was
        harvested — anchors the batch: the latest worker span end maps
        to ``align_end`` and every stamp shifts by the same offset
        (relative durations are preserved exactly).
        """
        if not spans:
            return
        if align_end is not None:
            offset = align_end - max(record[2] for record in spans)
            spans = [
                (name, start + offset, end + offset, depth, attrs)
                for name, start, end, depth, attrs in spans
            ]
        else:
            spans = list(spans)
        self.adopted.append((pid, lane, spans))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _origin(self) -> float:
        starts = [record[1] for record in self.spans]
        starts.extend(record[1] for record in self.events)
        for _pid, _lane, spans in self.adopted:
            starts.extend(record[1] for record in spans)
        return min(starts) if starts else 0.0

    def chrome_trace(self) -> Dict[str, Any]:
        """A Chrome trace-event document for Perfetto/chrome://tracing.

        Every lane shares the parent ``pid`` so the viewer renders one
        process with named threads; the worker's real pid is carried in
        the lane name and event args.
        """
        origin = self._origin()
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "name": "thread_name",
                "pid": self.pid,
                "tid": 0,
                "args": {"name": f"main (pid {self.pid})"},
            }
        ]

        def complete(record: SpanRecord, tid: int, pid: int) -> Dict[str, Any]:
            name, start, end, depth, attrs = record
            return {
                "ph": "X",
                "name": name,
                "cat": "repro",
                "pid": self.pid,
                "tid": tid,
                "ts": (start - origin) * 1e6,
                "dur": (end - start) * 1e6,
                "args": dict(_decode_attrs(attrs), depth=depth, pid=pid),
            }

        for record in self.spans:
            events.append(complete(record, 0, self.pid))
        for name, ts, depth, attrs in self.events:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": name,
                    "cat": "repro",
                    "pid": self.pid,
                    "tid": 0,
                    "ts": (ts - origin) * 1e6,
                    "args": dict(_decode_attrs(attrs), depth=depth),
                }
            )
        for tid, (pid, lane, spans) in enumerate(self.adopted, start=1):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": self.pid,
                    "tid": tid,
                    "args": {"name": f"{lane} (pid {pid})"},
                }
            )
            for record in spans:
                events.append(complete(record, tid, pid))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def ndjson_lines(self) -> List[str]:
        """One JSON object per span/instant, ordered by start time."""
        origin = self._origin()
        rows: List[Tuple[float, Dict[str, Any]]] = []
        for name, start, end, depth, attrs in self.spans:
            rows.append(
                (
                    start,
                    {
                        "kind": "span",
                        "name": name,
                        "lane": "main",
                        "pid": self.pid,
                        "start": start - origin,
                        "end": end - origin,
                        "depth": depth,
                        "args": _decode_attrs(attrs),
                    },
                )
            )
        for name, ts, depth, attrs in self.events:
            rows.append(
                (
                    ts,
                    {
                        "kind": "instant",
                        "name": name,
                        "lane": "main",
                        "pid": self.pid,
                        "ts": ts - origin,
                        "depth": depth,
                        "args": _decode_attrs(attrs),
                    },
                )
            )
        for _tid, (pid, lane, spans) in enumerate(self.adopted, start=1):
            for name, start, end, depth, attrs in spans:
                rows.append(
                    (
                        start,
                        {
                            "kind": "span",
                            "name": name,
                            "lane": lane,
                            "pid": pid,
                            "start": start - origin,
                            "end": end - origin,
                            "depth": depth,
                            "args": _decode_attrs(attrs),
                        },
                    )
                )
        rows.sort(key=lambda item: item[0])
        return [
            json.dumps(document, sort_keys=True) for _ts, document in rows
        ]

    def write(self, path: str) -> None:
        """Export to ``path``: NDJSON when it ends in ``.ndjson``,
        Chrome trace-event JSON otherwise."""
        if path.endswith(".ndjson"):
            payload = "\n".join(self.ndjson_lines()) + "\n"
        else:
            payload = json.dumps(self.chrome_trace(), indent=2)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a constant no-op."""

    enabled = False
    pid = 0
    spans: List[SpanRecord] = []
    events: List[EventRecord] = []
    adopted: List[Tuple[int, str, List[SpanRecord]]] = []

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs: Any) -> None:
        return None

    def export_spans(self) -> List[SpanRecord]:
        return []

    def adopt(
        self,
        spans: Optional[List[SpanRecord]],
        pid: int,
        lane: str,
        align_end: Optional[float] = None,
    ) -> None:
        return None


NULL_TRACER = NullTracer()

__all__ = [
    "EventRecord",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "SpanTracer",
]
