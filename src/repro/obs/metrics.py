"""A registry of named counters, gauges and histograms.

The registry unifies the project's ad-hoc perf accounting — the
``RunTrace`` search counters, the mask-memory gauge, the supervisor's
retry/degrade/timeout telemetry, per-run batch durations — behind one
name-addressed surface::

    metrics.counter("runtime.retries").inc(1, site="search")
    metrics.gauge("build.mask_memory_bytes").set(db.mask_memory_bytes())
    metrics.histogram("batch.run_seconds").observe(run.seconds)

Instruments are created on first use; labels flatten into the series
key (``runtime.retries{site=search}``) so :meth:`MetricsRegistry.snapshot`
is a flat, JSON-ready, deterministically ordered mapping — the shape
folded into BENCH schema-v7 documents and ``mine --metrics`` files.

The default recorder is :data:`NULL_METRICS`, whose instruments are
shared do-nothing singletons: with observability disabled no dict, no
key string and no arithmetic happens at the call site beyond one
method call, and the mining hot paths additionally guard their
emission on ``metrics.enabled`` so even that is skipped.

Metric *names* must be string literals at the call site (OBS001) so
the catalogue in docs/OBSERVABILITY.md stays grep-able and the
cardinality of the registry is bounded by the source code; labels
carry the runtime-variable dimensions (site names, phases).
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

Number = Union[int, float]


def _series_key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("_name", "_store")

    def __init__(self, name: str, store: Dict[str, Number]) -> None:
        self._name = name
        self._store = store

    def inc(self, amount: Number = 1, **labels: Any) -> None:
        key = _series_key(self._name, labels)
        self._store[key] = self._store.get(key, 0) + amount


class Gauge:
    """A last-write-wins value, with a max-tracking variant for peaks."""

    __slots__ = ("_name", "_store")

    def __init__(self, name: str, store: Dict[str, Number]) -> None:
        self._name = name
        self._store = store

    def set(self, value: Number, **labels: Any) -> None:
        self._store[_series_key(self._name, labels)] = value

    def set_max(self, value: Number, **labels: Any) -> None:
        key = _series_key(self._name, labels)
        previous = self._store.get(key)
        if previous is None or value > previous:
            self._store[key] = value


class Histogram:
    """Count/total/min/max summary of observed values."""

    __slots__ = ("_name", "_store")

    def __init__(self, name: str, store: Dict[str, List[Number]]) -> None:
        self._name = name
        self._store = store

    def observe(self, value: Number, **labels: Any) -> None:
        key = _series_key(self._name, labels)
        stats = self._store.get(key)
        if stats is None:
            self._store[key] = [1, value, value, value]
        else:
            stats[0] += 1
            stats[1] += value
            if value < stats[2]:
                stats[2] = value
            if value > stats[3]:
                stats[3] = value


class MetricsRegistry:
    """Create-on-first-use instrument registry with a flat snapshot."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._histograms: Dict[str, List[Number]] = {}
        self._instruments: Dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._instruments.get("c:" + name)
        if instrument is None:
            instrument = Counter(name, self._counters)
            self._instruments["c:" + name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._instruments.get("g:" + name)
        if instrument is None:
            instrument = Gauge(name, self._gauges)
            self._instruments["g:" + name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._instruments.get("h:" + name)
        if instrument is None:
            instrument = Histogram(name, self._histograms)
            self._instruments["h:" + name] = instrument
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """All recorded series, deterministically key-ordered."""
        return {
            "counters": {
                key: self._counters[key] for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key] for key in sorted(self._gauges)
            },
            "histograms": {
                key: {
                    "count": stats[0],
                    "total": stats[1],
                    "min": stats[2],
                    "max": stats[3],
                    "mean": stats[1] / stats[0],
                }
                for key, stats in sorted(self._histograms.items())
            },
        }


class _NullInstrument:
    __slots__ = ()

    def inc(self, amount: Number = 1, **labels: Any) -> None:
        return None

    def set(self, value: Number, **labels: Any) -> None:
        return None

    def set_max(self, value: Number, **labels: Any) -> None:
        return None

    def observe(self, value: Number, **labels: Any) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: shared no-op instruments, empty snapshot."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        return {}


NULL_METRICS = NullMetrics()


def emit_run_trace(metrics: Any, trace: Any) -> None:
    """Re-emit a finished ``RunTrace``'s perf counters as metrics.

    The trace's counters are the project's deterministic perf currency
    (see ``benchmarks/perf_bounds.json``); re-emitting them post-run
    keeps the registry complete without touching the search hot loop.
    """
    if not metrics.enabled or trace is None:
        return
    metrics.counter("search.gains_computed").inc(
        trace.total_gain_computations
    )
    metrics.counter("search.initial_candidate_gains").inc(
        trace.initial_candidate_gains
    )
    metrics.counter("search.refreshes_skipped").inc(trace.refreshes_skipped)
    metrics.counter("search.dirty_revalidations").inc(
        trace.dirty_revalidations
    )
    metrics.gauge("search.peak_queue_size").set_max(trace.peak_queue_size)
    metrics.gauge("search.merges").set(len(trace.iterations))


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "emit_run_trace",
]
