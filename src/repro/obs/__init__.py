"""``repro.obs`` — spans, metrics and progress for every stage and pool.

The observability layer has four small parts:

:mod:`repro.obs.clock`
    The injected-clock seam — the only module in ``repro`` allowed to
    import ``time`` (lint rule OBS002).
:mod:`repro.obs.trace`
    Nestable spans on the injected clock, per-process buffers, worker
    buffers shipped through the supervisor result path and merged into
    one parent timeline; exports Chrome trace-event JSON and NDJSON.
:mod:`repro.obs.metrics`
    Named counters/gauges/histograms behind a zero-cost no-op default;
    the ``RunTrace`` counters, mask memory and supervisor telemetry
    are re-emitted through it.
:mod:`repro.obs.progress`
    Throttled stderr heartbeat lines (``mine --progress``).

Everything is tied together by :class:`Observation` (one session) and
the :func:`current`/:func:`activate` stack; the pipeline activates the
config-selected session, so disabled observability is a handful of
no-op method calls and nothing else.  See docs/OBSERVABILITY.md for
the span taxonomy and metric catalogue.
"""

from repro.obs import clock  # noqa: F401  (re-exported submodule)
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    emit_run_trace,
)
from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressEmitter
from repro.obs.session import NULL_OBS, Observation, activate, current
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    SpanTracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullMetrics",
    "NullProgress",
    "NullTracer",
    "Observation",
    "ProgressEmitter",
    "SpanRecord",
    "SpanTracer",
    "activate",
    "clock",
    "current",
    "emit_run_trace",
]
