"""The injected-clock seam: the only sanctioned ``time`` import.

Every wall-clock read and sleep in ``repro`` goes through this module
so that (a) the determinism linter can verify that no mining code
consults the clock directly (DET003 keeps ``core/`` clean; OBS002
extends the contract to the whole package — see docs/INVARIANTS.md,
family 6), and (b) tests can monkeypatch one seam to drive timers,
span clocks and backoff sleeps deterministically.

The names are rebound module attributes, not wrappers: calling through
``clock.perf_counter()`` costs one attribute lookup over ``import
time`` and keeps monkeypatching trivial (``monkeypatch.setattr(clock,
"perf_counter", fake)``).
"""

from __future__ import annotations

import time as _time

#: Monotonic high-resolution timer; feeds span start/end stamps and
#: every ``*_seconds`` measurement.
perf_counter = _time.perf_counter

#: Monotonic coarse timer (kept for completeness; prefer
#: :func:`perf_counter`).
monotonic = _time.monotonic

#: Blocking sleep; the supervisor's backoff and the fault injector's
#: hang both route through here.
sleep = _time.sleep

__all__ = ["perf_counter", "monotonic", "sleep"]
