"""Throttled heartbeat lines for long-running phases.

``mine --progress`` (and ``bench --progress``) surface these on
stderr so a multi-minute search is no longer a black box::

    [repro] build: rows=1842 seconds=0.41
    [repro] search: merges=120 queue=483
    [repro] runtime: site=search done=3 pending=1 retries=1

:meth:`ProgressEmitter.heartbeat` is rate-limited per phase on the
injected clock (default :func:`repro.obs.clock.perf_counter`, 0.5 s
minimum spacing) so per-merge call sites stay cheap even at six-digit
iteration counts; :meth:`ProgressEmitter.note` bypasses the throttle
for one-shot milestones (a build finishing, a task degrading).

Phase names are string literals at the call site (OBS001), matching
the span taxonomy in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, Optional, TextIO

from repro.obs import clock


def _render(fields: Dict[str, Any]) -> str:
    return " ".join(f"{key}={fields[key]}" for key in fields)


class ProgressEmitter:
    """Heartbeat writer with per-phase throttling."""

    enabled = True

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.5,
        clock_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        #: ``None`` means "resolve ``sys.stderr`` at emit time", so the
        #: emitter follows capture/redirection and never pins a stream
        #: object that cannot cross a process boundary.
        self._stream = stream
        self._min_interval = min_interval
        self._clock = clock_fn if clock_fn is not None else clock.perf_counter
        self._last_emit: Dict[str, float] = {}

    def heartbeat(self, phase: str, **fields: Any) -> None:
        """Emit a progress line unless one for ``phase`` was emitted
        within the last ``min_interval`` seconds."""
        now = self._clock()
        last = self._last_emit.get(phase)
        if last is not None and now - last < self._min_interval:
            return
        self._last_emit[phase] = now
        self._emit(phase, fields)

    def note(self, phase: str, **fields: Any) -> None:
        """Emit unconditionally (one-shot milestones)."""
        self._last_emit[phase] = self._clock()
        self._emit(phase, fields)

    def _emit(self, phase: str, fields: Dict[str, Any]) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        text = f"[repro] {phase}: {_render(fields)}".rstrip() + "\n"
        stream.write(text)
        try:
            stream.flush()
        except (AttributeError, ValueError):
            pass


class NullProgress:
    """The disabled emitter: heartbeats vanish without reading the clock."""

    enabled = False

    def heartbeat(self, phase: str, **fields: Any) -> None:
        return None

    def note(self, phase: str, **fields: Any) -> None:
        return None


NULL_PROGRESS = NullProgress()

__all__ = ["NULL_PROGRESS", "NullProgress", "ProgressEmitter"]
