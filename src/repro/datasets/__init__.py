"""Synthetic analogues of the paper's benchmark datasets.

The paper's graphs (DBLP, DBLP-Trend, USFlight, Pokec, Cora, Citeseer)
are public but not available offline, so each generator reproduces the
*statistical shape* that matters to CSPM: the Table II node/edge/
coreset counts and community-correlated attribute co-occurrence (venue
clusters, music-taste homophily, flight-trend coupling).  Each accepts
a ``scale`` to shrink the graph proportionally for fast benchmarks.
"""

from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.synthetic import (
    citeseer_like,
    cora_like,
    dblp_like,
    dblp_trend_like,
    pokec_like,
    usflight_like,
)

__all__ = [
    "available_datasets",
    "citeseer_like",
    "cora_like",
    "dblp_like",
    "dblp_trend_like",
    "load_dataset",
    "pokec_like",
    "usflight_like",
]
