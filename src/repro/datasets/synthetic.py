"""Generators for the six benchmark-dataset analogues.

All generators share :func:`community_attributed_graph`: a planted-
partition topology (dense within communities, sparse across) where each
community draws attribute values from its own pool plus global noise.
This is the homophily structure that makes the paper's datasets
minable: attribute values of connected vertices are strongly
correlated within communities, which is exactly what a-stars capture.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import DatasetError
from repro.graphs.attributed_graph import AttributedGraph


def community_attributed_graph(
    community_sizes: Sequence[int],
    community_pools: Sequence[Sequence[str]],
    values_per_vertex: Tuple[int, int] = (2, 4),
    intra_degree: float = 3.0,
    inter_degree: float = 0.5,
    global_values: Sequence[str] = (),
    global_rate: float = 0.05,
    seed: int = 0,
) -> AttributedGraph:
    """A planted-partition graph with community-correlated attributes.

    Parameters
    ----------
    community_sizes / community_pools:
        One entry per community: its vertex count and its attribute
        value pool.
    values_per_vertex:
        Inclusive (low, high) range of pool values drawn per vertex.
    intra_degree / inter_degree:
        Expected number of within- and across-community edges added
        per vertex.
    global_values / global_rate:
        Noise values sprinkled on any vertex with the given rate.
    """
    if len(community_sizes) != len(community_pools):
        raise DatasetError("one attribute pool per community is required")
    if any(size < 1 for size in community_sizes):
        raise DatasetError("community sizes must be positive")
    rng = random.Random(seed)
    memberships: List[int] = []
    for community, size in enumerate(community_sizes):
        memberships.extend([community] * size)
    num_vertices = len(memberships)
    by_community: Dict[int, List[int]] = {}
    for vertex, community in enumerate(memberships):
        by_community.setdefault(community, []).append(vertex)

    edges: Set[Tuple[int, int]] = set()

    def add_edge(u: int, v: int) -> None:
        if u != v:
            edges.add((min(u, v), max(u, v)))

    # Spanning chain per community keeps each community connected.
    for members in by_community.values():
        shuffled = members[:]
        rng.shuffle(shuffled)
        for i in range(1, len(shuffled)):
            add_edge(shuffled[i - 1], shuffled[i])
    # Random intra-community edges.
    for members in by_community.values():
        if len(members) < 2:
            continue
        target = int(intra_degree * len(members) / 2)
        for _ in range(target):
            add_edge(rng.choice(members), rng.choice(members))
    # Sparse inter-community edges (also connect communities in a ring).
    communities = sorted(by_community)
    for i, community in enumerate(communities):
        other = by_community[communities[(i + 1) % len(communities)]]
        if other is not by_community[community]:
            add_edge(rng.choice(by_community[community]), rng.choice(other))
    target = int(inter_degree * num_vertices / 2)
    for _ in range(target):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if memberships[u] != memberships[v]:
            add_edge(u, v)

    attributes: Dict[int, Set[str]] = {}
    low, high = values_per_vertex
    for vertex, community in enumerate(memberships):
        pool = list(community_pools[community])
        take = min(rng.randint(low, high), len(pool))
        values = set(rng.sample(pool, take)) if take else set()
        for value in global_values:
            if rng.random() < global_rate:
                values.add(value)
        if not values and pool:
            values.add(rng.choice(pool))
        attributes[vertex] = values

    return AttributedGraph.from_edges(sorted(edges), attributes)


def _scaled(count: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(count * scale)))


# ----------------------------------------------------------------------
# Citation networks (DBLP family, Cora, Citeseer)
# ----------------------------------------------------------------------

_RESEARCH_AREAS: Dict[str, List[str]] = {
    "data-mining": ["ICDM", "EDBT", "PODS", "KDD", "SDM", "DMKD", "PAKDD"],
    "databases": ["ICDE", "VLDB", "SIGMOD", "CIKM", "TODS"],
    "machine-learning": ["ICML", "NIPS", "AAAI", "IJCAI", "COLT"],
    "networks": ["INFOCOM", "SIGCOMM", "ICNP", "IMC"],
    "theory": ["STOC", "FOCS", "SODA", "ICALP"],
}


def dblp_like(scale: float = 1.0, seed: int = 0) -> AttributedGraph:
    """A co-authorship network with venue attributes (Table II: DBLP).

    Paper statistics: 2,723 nodes, 3,464 edges, |Sc^M| = 127 — a sparse
    graph whose attribute values are the venues a researcher published
    in, clustered by research area.
    """
    areas = list(_RESEARCH_AREAS.values())
    sizes = [_scaled(n, scale) for n in (700, 600, 600, 450, 373)]
    return community_attributed_graph(
        community_sizes=sizes,
        community_pools=areas,
        values_per_vertex=(1, 3),
        intra_degree=2.1,
        inter_degree=0.4,
        global_values=["CORR", "ARXIV"],
        global_rate=0.03,
        seed=seed,
    )


def dblp_trend_like(scale: float = 1.0, seed: int = 0) -> AttributedGraph:
    """DBLP with publication-trend attributes (Table II: DBLP-Trend).

    Every venue value is suffixed with a trend marker (+ increase,
    - decrease, = stable since the previous year), tripling the value
    universe like the paper's variant (|Sc^M| 127 -> 271).
    """
    trends = ["+", "-", "="]
    pools = [
        [f"{venue}{trend}" for venue in venues for trend in trends]
        for venues in _RESEARCH_AREAS.values()
    ]
    sizes = [_scaled(n, scale) for n in (700, 600, 600, 450, 373)]
    return community_attributed_graph(
        community_sizes=sizes,
        community_pools=pools,
        values_per_vertex=(1, 3),
        intra_degree=2.1,
        inter_degree=0.4,
        global_values=["CORR+", "CORR-"],
        global_rate=0.03,
        seed=seed,
    )


def _topic_vocabulary(topic: str, stems: Sequence[str], size: int) -> List[str]:
    """A ``size``-word vocabulary: real stems plus derived variants.

    The real datasets have hundreds of bag-of-words attribute values
    per topic; padding each topic's stem list with derived variants
    reproduces that vocabulary breadth (which is what makes the
    completion task of Table IV genuinely hard).
    """
    words = list(stems)
    suffixes = ["-model", "-method", "-based", "-analysis", "-task",
                "-graph", "-net", "-set", "-rate", "-rule"]
    index = 0
    while len(words) < size:
        stem = stems[index % len(stems)]
        suffix = suffixes[(index // len(stems)) % len(suffixes)]
        words.append(f"{stem}{suffix}")
        index += 1
    return words[:size]


_TOPIC_STEMS = {
    "neural": ["backprop", "perceptron", "gradient", "activation", "layers"],
    "genetic": ["mutation", "crossover", "fitness", "population", "selection"],
    "probabilistic": ["bayes", "prior", "posterior", "likelihood", "inference"],
    "reinforcement": ["reward", "policy", "qlearning", "agent", "environment"],
    "rules": ["induction", "decision", "tree", "pruning", "splitting"],
    "theory": ["bounds", "pac", "complexity", "sample", "dimension"],
    "case-based": ["retrieval", "similarity", "memory", "adaptation", "reuse"],
}

_TOPIC_WORDS = {
    topic: _topic_vocabulary(topic, stems, 40)
    for topic, stems in _TOPIC_STEMS.items()
}


def cora_like(scale: float = 1.0, seed: int = 0) -> AttributedGraph:
    """A Cora-style citation network with topic-keyword attributes.

    Seven topical communities; each paper carries 3-6 keywords drawn
    mostly from its topic's vocabulary — the categorical analogue of
    Cora's bag-of-words features used in Table IV.
    """
    pools = list(_TOPIC_WORDS.values())
    sizes = [_scaled(n, scale) for n in (420, 400, 380, 360, 340, 400, 408)]
    return community_attributed_graph(
        community_sizes=sizes,
        community_pools=pools,
        values_per_vertex=(4, 9),
        intra_degree=3.2,
        inter_degree=0.5,
        global_values=["dataset", "evaluation", "survey"],
        global_rate=0.08,
        seed=seed,
    )


def citeseer_like(scale: float = 1.0, seed: int = 0) -> AttributedGraph:
    """A Citeseer-style citation network (six sparser communities)."""
    topics = dict(list(_TOPIC_STEMS.items())[:6])
    pools = [
        _topic_vocabulary(topic, stems, 35) + [f"{topic}-app"]
        for topic, stems in topics.items()
    ]
    sizes = [_scaled(n, scale) for n in (560, 550, 540, 560, 550, 552)]
    return community_attributed_graph(
        community_sizes=sizes,
        community_pools=pools,
        values_per_vertex=(3, 7),
        intra_degree=2.2,
        inter_degree=0.35,
        global_values=["citation", "benchmark"],
        global_rate=0.06,
        seed=seed,
    )


# ----------------------------------------------------------------------
# USFlight
# ----------------------------------------------------------------------


def usflight_like(scale: float = 1.0, seed: int = 0) -> AttributedGraph:
    """A flight network with traffic-trend attributes (Table II).

    280 airports, 4,030 routes.  Attributes encode per-airport trends
    (NbDepart+/-, DelayArriv+/-, NbCancel+/-); hub airports losing
    departures push departures (and fewer delays) onto connected
    airports — the correlation behind the Section VI-B(2) example
    a-star ({NbDepart-}, {NbDepart+, DelayArriv-}).
    """
    rng = random.Random(seed)
    num_airports = _scaled(280, scale, minimum=10)
    num_routes = _scaled(4030, scale * scale if scale < 1 else scale, minimum=30)
    hubs = max(3, num_airports // 20)

    edges: Set[Tuple[int, int]] = set()
    # Hub-and-spoke backbone.
    for airport in range(hubs, num_airports):
        hub = rng.randrange(hubs)
        edges.add((hub, airport))
    for i in range(hubs):
        for j in range(i + 1, hubs):
            edges.add((i, j))
    while len(edges) < min(num_routes, num_airports * (num_airports - 1) // 2):
        u = rng.randrange(num_airports)
        v = rng.randrange(num_airports)
        if u != v:
            edges.add((min(u, v), max(u, v)))

    adjacency: Dict[int, Set[int]] = {v: set() for v in range(num_airports)}
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)

    attributes: Dict[int, Set[str]] = {v: set() for v in range(num_airports)}
    # Plant the trend coupling: airports that lose departures are
    # neighboured by airports gaining departures with fewer delays.
    losing = set(rng.sample(range(num_airports), max(1, num_airports // 5)))
    for airport in losing:
        attributes[airport].add("NbDepart-")
        for neighbour in adjacency[airport]:
            if rng.random() < 0.75:
                attributes[neighbour].add("NbDepart+")
            if rng.random() < 0.6:
                attributes[neighbour].add("DelayArriv-")
    trend_values = [
        "NbDepart+", "NbDepart-", "DelayArriv+", "DelayArriv-",
        "NbCancel+", "NbCancel-", "NbArriv+", "NbArriv-",
    ]
    for airport in range(num_airports):
        for value in trend_values:
            if rng.random() < 0.07:
                attributes[airport].add(value)
        if not attributes[airport]:
            attributes[airport].add(rng.choice(trend_values))

    return AttributedGraph.from_edges(sorted(edges), attributes)


# ----------------------------------------------------------------------
# Pokec
# ----------------------------------------------------------------------

_MUSIC_TASTES: Dict[str, List[str]] = {
    "young": ["rap", "rock", "metal", "pop", "sladaky", "hiphop", "punk"],
    "older": ["disko", "oldies", "folk", "country", "dychovka"],
    "club": ["house", "techno", "trance", "dnb", "electro"],
    "alternative": ["indie", "ska", "reggae", "jazz", "blues"],
}


def pokec_like(scale: float = 0.001, seed: int = 0) -> AttributedGraph:
    """A Pokec-style social network with music-taste attributes.

    The real Pokec slice has 1.63M nodes and 30.6M edges — far beyond a
    laptop-friendly benchmark, so the default ``scale`` shrinks it to
    ~1.6k nodes while preserving the taste homophily (the Section
    VI-B(3) patterns: rap with rock/metal/pop/sladaky, disko with
    oldies).  Pass ``scale=1.0`` to generate the paper-sized graph.
    """
    sizes = [
        _scaled(n, scale * 1_632_803 / 1000, minimum=20)
        for n in (350, 250, 220, 180)
    ]
    pools = list(_MUSIC_TASTES.values())
    return community_attributed_graph(
        community_sizes=sizes,
        community_pools=pools,
        values_per_vertex=(2, 5),
        intra_degree=12.0,
        inter_degree=1.5,
        global_values=["slovak", "czech"],
        global_rate=0.1,
        seed=seed,
    )
