"""A small named registry over the dataset generators."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets import synthetic
from repro.errors import DatasetError
from repro.graphs.attributed_graph import AttributedGraph

_GENERATORS: Dict[str, Callable[..., AttributedGraph]] = {
    "dblp": synthetic.dblp_like,
    "dblp-trend": synthetic.dblp_trend_like,
    "usflight": synthetic.usflight_like,
    "pokec": synthetic.pokec_like,
    "cora": synthetic.cora_like,
    "citeseer": synthetic.citeseer_like,
}


def available_datasets() -> List[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_GENERATORS)


def load_dataset(name: str, scale: float = None, seed: int = 0) -> AttributedGraph:
    """Generate the named dataset analogue.

    ``scale`` defaults to each generator's own default (1.0 for the
    laptop-scale graphs, a small fraction for Pokec).
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    if scale is None:
        return generator(seed=seed)
    return generator(scale=scale, seed=seed)
