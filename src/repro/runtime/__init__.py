"""Supervised parallel runtime: fault injection, retries, degradation.

:mod:`repro.runtime.supervisor` wraps every multiprocess pool in the
repo (partitioned construction, sharded search, batch ``fit_many``)
with per-task timeouts, bounded deterministic retries, and bit-exact
degrade-to-serial fallback; :mod:`repro.runtime.faults` is the
deterministic fault-injection layer that tests and the CI chaos job
drive.  See ``docs/RESILIENCE.md``.
"""

from repro.runtime.faults import (
    ENV_VAR,
    CorruptResult,
    FaultEvent,
    FaultPlan,
    environment_plan,
    resolve_plan,
)
from repro.runtime.supervisor import (
    DEFAULT_WORKER_TIMEOUT,
    RuntimePolicy,
    SiteReport,
    backoff_seconds,
    run_supervised,
)

__all__ = [
    "ENV_VAR",
    "CorruptResult",
    "FaultEvent",
    "FaultPlan",
    "environment_plan",
    "resolve_plan",
    "DEFAULT_WORKER_TIMEOUT",
    "RuntimePolicy",
    "SiteReport",
    "backoff_seconds",
    "run_supervised",
]
