"""Supervised execution of the repo's multiprocess pools.

:func:`run_supervised` wraps the fork/spawn ``ProcessPoolExecutor``
usage in ``core/construction.py``, ``core/search_shard.py`` and
``batch.py`` with the failure handling a long-lived mining service
needs:

* **per-task timeouts** — every ``Future.result`` call carries a
  deadline (RES001), so a hung worker becomes a retryable event
  instead of a wedged run;
* **bounded retries** on a deterministic backoff schedule — the delays
  are a pure function of ``(site, task index, attempt)`` via
  :func:`zlib.crc32`, and the clock is an injected callable, so
  supervision adds no hidden nondeterminism (DET003) and tests run
  with ``sleep=lambda _: None``;
* **crash detection** — a dead worker surfaces as
  ``BrokenProcessPool`` on every unfinished future with no attribution
  of *which* task killed it, so the whole unfinished set is charged an
  attempt and re-run on a fresh pool;
* **graceful degradation** — a task that exhausts its retry budget is
  re-executed *in the parent process* with the already-inherited
  worker state.  Because every parallel path here is pinned bit-exact
  to its serial twin, the degraded result is not "close enough", it is
  ``==`` the no-fault serial run.  ``on_worker_failure="raise"`` turns
  exhaustion into a :class:`~repro.errors.WorkerFailure` instead, for
  callers that prefer loud death.

The supervisor never injects faults itself: injection happens in
:func:`repro.runtime.faults.execute_with_fault` inside worker
processes, which is exactly why in-process degraded execution is the
trustworthy fallback.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkerFailure
from repro.obs import clock, current
from repro.runtime.faults import (
    CorruptResult,
    FaultPlan,
    execute_with_fault,
    resolve_plan,
)

#: Timeout applied when the policy leaves ``worker_timeout`` unset.
#: Generous — real partitions/components finish in seconds — but finite,
#: so no future wait is unbounded (RES001).
DEFAULT_WORKER_TIMEOUT = 300.0

#: Cap on a single deterministic backoff delay, seconds.
MAX_BACKOFF_SECONDS = 2.0


def backoff_seconds(site: str, index: int, attempt: int) -> float:
    """Deterministic retry delay for ``site`` task ``index`` at ``attempt``.

    Exponential base (0.05 s doubling per attempt, capped) plus a
    jitter term derived from :func:`zlib.crc32` of the key text — the
    same ``PYTHONHASHSEED``-independent digest discipline the fault
    plans use, so a retry schedule is reproducible across processes
    and platforms.
    """
    base = min(0.05 * (2 ** attempt), MAX_BACKOFF_SECONDS)
    digest = zlib.crc32(f"backoff:{site}:{index}:{attempt}".encode("utf-8"))
    jitter = (digest & 0xFFFF) / 0x10000  # [0, 1), deterministic
    return min(base * (1.0 + jitter), MAX_BACKOFF_SECONDS)


@dataclass(frozen=True)
class RuntimePolicy:
    """The supervision knobs for one run, resolved from config + env.

    ``worker_timeout=None`` means "use :data:`DEFAULT_WORKER_TIMEOUT`"
    — there is deliberately no way to wait forever.  ``sleep`` is the
    injected clock (DET003): production uses the
    :func:`repro.obs.clock.sleep` seam, tests pass a recorder.
    """

    worker_timeout: Optional[float] = None
    max_task_retries: int = 2
    on_worker_failure: str = "degrade"
    fault_plan: Optional[FaultPlan] = None
    sleep: Callable[[float], None] = clock.sleep

    @property
    def effective_timeout(self) -> float:
        if self.worker_timeout is None:
            return DEFAULT_WORKER_TIMEOUT
        return self.worker_timeout

    @classmethod
    def from_config(cls, config: Any) -> "RuntimePolicy":
        """Build a policy from anything shaped like ``CSPMConfig``.

        Duck-typed on purpose: the runtime package must not import
        ``repro.config`` (config imports faults for plan coercion, and
        a hard dependency here would close the cycle).  Environment
        fault plans (``REPRO_FAULT_PLAN``) are resolved at this point,
        so every supervised site sees the same activation rule.
        """
        return cls(
            worker_timeout=getattr(config, "worker_timeout", None),
            max_task_retries=getattr(config, "max_task_retries", 2),
            on_worker_failure=getattr(config, "on_worker_failure", "degrade"),
            fault_plan=resolve_plan(getattr(config, "fault_plan", None)),
        )


@dataclass
class SiteReport:
    """Structured failure telemetry for one supervised site.

    ``retries`` counts re-submissions (an attempt beyond a task's
    first); ``degraded_tasks`` lists the task indexes re-executed
    in-process; ``failures`` records one human-readable line per
    observed failure event (kept small — it feeds ``mine --json`` and
    the perf suite, not a log aggregator).
    """

    site: str
    tasks: int = 0
    retries: int = 0
    degraded_tasks: List[int] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    rounds: int = 0
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "tasks": self.tasks,
            "retries": self.retries,
            "degraded_tasks": list(self.degraded_tasks),
            "failures": list(self.failures),
            "rounds": self.rounds,
            "seconds": self.seconds,
        }


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool that may contain hung or dead workers.

    ``shutdown(wait=False)`` alone leaks a worker that is asleep in a
    hung task, so the surviving processes are terminated explicitly.
    ``_processes`` is executor-internal; the guarded access degrades to
    a plain shutdown if a future stdlib renames it.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None)
    if processes:
        for process in list(processes.values()):
            if process.is_alive():
                process.terminate()
        for process in list(processes.values()):
            process.join(timeout=5)


def _degrade(
    worker: Callable[[Any], Any],
    job: Any,
    index: int,
    report: SiteReport,
) -> Any:
    """Re-execute one exhausted task in the parent process.

    No fault injection, no pickling, the parent's own worker state:
    this is literally the serial code path, which is what makes the
    bit-exactness guarantee hold under arbitrary worker failure.
    """
    report.degraded_tasks.append(index)
    return worker(job)


def run_supervised(
    site: str,
    jobs: Sequence[Any],
    worker: Callable[[Any], Any],
    policy: Optional[RuntimePolicy],
    *,
    max_workers: int,
    mp_context: Any = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    expect_type: Optional[type] = None,
) -> Tuple[List[Any], SiteReport]:
    """Run ``jobs`` through ``worker`` in a supervised process pool.

    Returns ``(results, report)`` with ``results[i]`` the result of
    ``worker(jobs[i])`` — order is the caller's submission order, which
    is what the bit-exact merge/stitch code depends on.  ``worker``
    must be a module-level callable (FRK001) taking one argument.
    ``expect_type``, when given, is the result's required type; a
    mismatched or :class:`CorruptResult` payload is treated as a task
    failure and retried.

    The loop is round-based: each round submits every still-pending
    task to a (possibly fresh) pool, then harvests futures in index
    order with a per-future deadline.  A timeout charges only the task
    that timed out; a ``BrokenProcessPool`` charges every task that
    had not finished (the executor cannot attribute the crash).  Tasks
    whose attempt count exceeds ``max_task_retries`` leave the pool:
    they are re-run in-process (``on_worker_failure="degrade"``) or
    raised (``"raise"``).
    """
    if policy is None:
        policy = RuntimePolicy()
    report = SiteReport(site=site, tasks=len(jobs))
    obs = current()
    started = clock.perf_counter()

    results: Dict[int, Any] = {}
    attempts: Dict[int, int] = {index: 0 for index in range(len(jobs))}
    pending: List[int] = list(range(len(jobs)))
    timeout = policy.effective_timeout
    plan = policy.fault_plan

    def _validate(index: int, value: Any) -> Optional[str]:
        if isinstance(value, CorruptResult):
            return f"task {index}: corrupt result marker {value!r}"
        if expect_type is not None and not isinstance(value, expect_type):
            return (
                f"task {index}: result type {type(value).__name__}, "
                f"expected {expect_type.__name__}"
            )
        return None

    def _charge(index: int, detail: str) -> None:
        """Record a failure and either queue a retry or finalise the task."""
        attempts[index] += 1
        report.failures.append(f"{site}[{index}] attempt {attempts[index]}: {detail}")
        if attempts[index] <= policy.max_task_retries:
            report.retries += 1
            retry.append(index)
            obs.instant(
                "supervisor.retry",
                site=site,
                task=index,
                attempt=attempts[index],
                detail=detail,
            )
        else:
            exhausted.append(index)
            obs.instant(
                "supervisor.exhausted",
                site=site,
                task=index,
                attempt=attempts[index],
                detail=detail,
            )
        obs.progress.note(
            "runtime", site=site, task=index, failed=detail
        )

    while pending:
        report.rounds += 1
        retry: List[int] = []
        exhausted: List[int] = []
        with obs.span(
            "supervisor.round",
            site=site,
            round=report.rounds,
            tasks=len(pending),
        ), ProcessPoolExecutor(
            max_workers=max(1, min(max_workers, len(pending))),
            mp_context=mp_context,
            # Forwarded verbatim; each call site passes a module-level
            # function, checked by FRK001 where the callable is named.
            initializer=initializer,  # repro: noqa[FRK001]
            initargs=initargs,
        ) as pool:
            futures = []
            for index in pending:
                fault = None
                if plan is not None:
                    fault = plan.fault_for(site, index, attempts[index])
                    if fault is not None:
                        report.failures.append(
                            f"{site}[{index}] attempt {attempts[index]}: "
                            f"injected {fault.kind}"
                        )
                futures.append(
                    (
                        index,
                        pool.submit(
                            execute_with_fault,
                            (worker, jobs[index], site, index, fault),
                        ),
                    )
                )
            broken = False
            for index, future in futures:
                if broken:
                    # The pool is gone; every unfinished task in this
                    # round shares the crash charge (attribution is
                    # impossible through BrokenProcessPool).
                    if not future.done() or future.cancelled():
                        _charge(index, "pool broken by worker crash")
                        continue
                try:
                    value = future.result(timeout=timeout)
                except FutureTimeoutError:
                    obs.metrics.counter("runtime.timeouts").inc(1, site=site)
                    _charge(index, f"timed out after {timeout:g}s")
                    _kill_pool(pool)
                    broken = True
                    continue
                except BrokenProcessPool:
                    obs.metrics.counter("runtime.worker_crashes").inc(
                        1, site=site
                    )
                    _charge(index, "worker process died")
                    broken = True
                    continue
                except BaseException as exc:  # repro: noqa[RES002] supervisor boundary
                    # Anything a worker raised (including pickle errors
                    # on the result trip) lands here; the supervisor is
                    # the one place broad capture is the contract.
                    if isinstance(exc, KeyboardInterrupt):
                        _kill_pool(pool)
                        raise
                    _charge(index, f"{type(exc).__name__}: {exc}")
                    continue
                problem = _validate(index, value)
                if problem is not None:
                    _charge(index, problem)
                else:
                    results[index] = value
                    obs.progress.heartbeat(
                        "runtime",
                        site=site,
                        done=len(results),
                        pending=len(jobs) - len(results),
                    )
            if broken:
                _kill_pool(pool)

        for index in exhausted:
            if policy.on_worker_failure == "raise":
                report.seconds = clock.perf_counter() - started
                raise WorkerFailure(
                    f"{site} task {index} failed after "
                    f"{attempts[index]} attempts "
                    f"(last: {report.failures[-1]}); "
                    f"on_worker_failure='raise'",
                    site=site,
                    task_index=index,
                    attempts=attempts[index],
                )
            obs.instant("supervisor.degrade", site=site, task=index)
            obs.metrics.counter("runtime.degraded_tasks").inc(1, site=site)
            obs.progress.note("runtime", site=site, task=index, degraded=1)
            results[index] = _degrade(worker, jobs[index], index, report)

        pending = retry
        if pending:
            # Deterministic, injected-clock backoff before the next
            # round — keyed on the round's first retried task.
            policy.sleep(backoff_seconds(site, pending[0], attempts[pending[0]]))

    report.seconds = clock.perf_counter() - started
    if obs.metrics.enabled:
        obs.metrics.counter("runtime.retries").inc(report.retries, site=site)
        obs.metrics.counter("runtime.rounds").inc(report.rounds, site=site)
        obs.metrics.histogram("runtime.site_seconds").observe(
            report.seconds, site=site
        )
    return [results[index] for index in range(len(jobs))], report
