"""Deterministic fault injection for the supervised parallel runtime.

Every multiprocess path in this repo (partitioned construction,
component-sharded search, ``fit_many`` batches) is pinned bit-exact to
its serial twin, so the *strongest* possible resilience claim is
testable: whatever a worker does — crash, hang, return garbage — the
supervised run must still produce the serial-identical result.  Testing
that claim needs failures on demand, and they must be reproducible: a
chaos run that only crashes sometimes is a flake generator, not a gate.

A :class:`FaultPlan` is a *deterministic* schedule of failure events
keyed by ``(site, task index)``:

* ``site`` — which supervised pool the event targets
  (:data:`SITES`: ``"construction"`` partitions, ``"search"``
  components, ``"batch"`` runs).  Task indexes count submission order
  at that site (partition order; largest-component-first job order;
  batch run order).
* ``kind`` — what goes wrong (:data:`KINDS`): ``"crash"`` hard-kills
  the worker process (``os._exit``, the ``BrokenProcessPool`` path),
  ``"hang"`` sleeps past the supervisor's timeout, ``"pickle"``
  returns an unpicklable payload (the result pickle fails after the
  work is done), ``"corrupt"`` returns a well-pickled payload of the
  wrong shape (caught by the supervisor's result validation).
* ``times`` — how many attempts the event sabotages.  ``times=1``
  exercises retry-then-succeed; ``times`` at or above the retry budget
  forces the degrade-to-serial (or ``on_worker_failure="raise"``)
  path.

Plans are either written explicitly (tests, the CI chaos-smoke job) or
generated from a seed via :meth:`FaultPlan.seeded` — the per-task coin
flips go through :func:`zlib.crc32`, not :func:`hash`, so a seeded plan
is identical across processes and ``PYTHONHASHSEED`` values (the same
discipline DET002 enforces for orderings).

Activation: pass a plan (object, mapping, or JSON) as
``CSPMConfig.fault_plan``, or set the ``REPRO_FAULT_PLAN`` environment
variable to inline JSON (or a path to a JSON file).  The config wins
when both are present.  Faults fire *only* inside worker processes —
the supervisor's in-process degraded execution never injects, which is
exactly what makes degradation the trustworthy fallback.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: The supervised pool sites a fault event may target.
SITES: Tuple[str, ...] = ("construction", "search", "batch")

#: The failure modes the injector can produce in a worker process.
KINDS: Tuple[str, ...] = ("crash", "hang", "pickle", "corrupt")

#: Environment variable consulted when a run has no config-level plan:
#: inline JSON (starts with ``{``) or a path to a JSON plan file.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Default sleep of a ``hang`` event, seconds.  Long enough to trip any
#: sane ``worker_timeout``; short enough that a worker the supervisor
#: failed to terminate exits on its own instead of leaking forever.
DEFAULT_HANG_SECONDS = 30.0


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure: sabotage ``site`` task ``index``.

    The event fires while the task's attempt number is below ``times``
    (attempts count from zero), so ``times=1`` breaks only the first
    attempt and a retry succeeds, while a large ``times`` exhausts the
    retry budget and forces degradation.
    """

    site: str
    index: int
    kind: str
    times: int = 1
    hang_seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigError(
                f"fault event site must be one of {SITES}, got {self.site!r}"
            )
        if self.kind not in KINDS:
            raise ConfigError(
                f"fault event kind must be one of {KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.index, int) or isinstance(self.index, bool) or self.index < 0:
            raise ConfigError(
                f"fault event index must be a non-negative int, "
                f"got {self.index!r}"
            )
        if not isinstance(self.times, int) or isinstance(self.times, bool) or self.times < 1:
            raise ConfigError(
                f"fault event times must be a positive int, got {self.times!r}"
            )
        if not isinstance(self.hang_seconds, (int, float)) or self.hang_seconds <= 0:
            raise ConfigError(
                f"fault event hang_seconds must be positive, "
                f"got {self.hang_seconds!r}"
            )

    def describe(self) -> str:
        """``site[index] kind xtimes`` — the telemetry spelling."""
        return f"{self.site}[{self.index}] {self.kind} x{self.times}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of :class:`FaultEvent` entries.

    Frozen and tuple-backed so it can live inside the (frozen, equality-
    comparable, ``to_dict``-round-trippable) :class:`~repro.config.CSPMConfig`.
    ``seed`` is provenance only — it records how a :meth:`seeded` plan
    was generated and travels through serialisation, but lookup always
    goes through the materialised ``events``.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigError(
                    f"fault plan events must be FaultEvent instances, "
                    f"got {event!r}"
                )

    def __bool__(self) -> bool:
        return bool(self.events)

    def fault_for(
        self, site: str, index: int, attempt: int
    ) -> Optional[FaultEvent]:
        """The event sabotaging ``site``/``index`` at ``attempt``, if any.

        First matching event wins (plans with duplicate keys are
        legal; the earlier entry shadows).  Returns ``None`` once the
        event's ``times`` budget is spent — which is what lets a retry
        succeed.
        """
        for event in self.events:
            if (
                event.site == site
                and event.index == index
                and attempt < event.times
            ):
                return event
        return None

    def events_for(self, site: str) -> Tuple[FaultEvent, ...]:
        return tuple(event for event in self.events if event.site == site)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float = 0.25,
        sites: Sequence[str] = SITES,
        kinds: Sequence[str] = KINDS,
        max_index: int = 32,
        times: int = 1,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
    ) -> "FaultPlan":
        """A reproducible random plan: one coin flip per (site, index).

        The flip for ``(seed, site, index)`` is derived via
        :func:`zlib.crc32` over the key's text — **not** ``hash()``,
        which is salted per process — so the same seed always yields
        the same schedule, in every worker, under every
        ``PYTHONHASHSEED``.  ``rate`` is the per-task fault
        probability; the kind is picked from ``kinds`` by the next
        32 bits of the same digest.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {rate!r}")
        events = []
        for site in sites:
            for index in range(max_index):
                digest = zlib.crc32(f"{seed}:{site}:{index}".encode("utf-8"))
                if (digest & 0xFFFF) / 0x10000 < rate:
                    kind = kinds[
                        zlib.crc32(f"{seed}:{site}:{index}:kind".encode("utf-8"))
                        % len(kinds)
                    ]
                    events.append(
                        FaultEvent(
                            site=site,
                            index=index,
                            kind=kind,
                            times=times,
                            hang_seconds=hang_seconds,
                        )
                    )
        return cls(events=tuple(events), seed=seed)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        document: dict = {
            "events": [dataclasses.asdict(event) for event in self.events]
        }
        if self.seed is not None:
            document["seed"] = self.seed
        return document

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(document, Mapping):
            raise ConfigError(
                f"fault plan document must be a mapping, got {document!r}"
            )
        known = {"events", "seed"}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ConfigError(f"unknown fault plan fields: {unknown}")
        raw_events = document.get("events", ())
        events = []
        for entry in raw_events:
            if isinstance(entry, FaultEvent):
                events.append(entry)
                continue
            if not isinstance(entry, Mapping):
                raise ConfigError(
                    f"fault plan event must be a mapping, got {entry!r}"
                )
            extra = sorted(
                set(entry) - {"site", "index", "kind", "times", "hang_seconds"}
            )
            if extra:
                raise ConfigError(f"unknown fault event fields: {extra}")
            try:
                events.append(FaultEvent(**dict(entry)))
            except TypeError as exc:
                raise ConfigError(f"invalid fault event {entry!r}: {exc}") from None
        return cls(events=tuple(events), seed=document.get("seed"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(document)

    @classmethod
    def coerce(cls, value: Any) -> Optional["FaultPlan"]:
        """Normalise any accepted spelling to a plan (or ``None``).

        Accepts ``None``, a :class:`FaultPlan`, a mapping (the
        :meth:`to_dict` shape), or a string — inline JSON when it
        starts with ``{``, otherwise a path to a JSON plan file.  This
        is the single conversion point the config, the CLIs and the
        environment activation all go through.
        """
        if value is None or isinstance(value, FaultPlan):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        if isinstance(value, str):
            text = value.strip()
            if text.startswith("{"):
                return cls.from_json(text)
            try:
                with open(text) as handle:
                    return cls.from_json(handle.read())
            except OSError as exc:
                raise ConfigError(
                    f"cannot read fault plan file {text!r}: {exc}"
                ) from None
        raise ConfigError(
            f"fault_plan must be None, a FaultPlan, a mapping, JSON text "
            f"or a file path, got {value!r}"
        )


def environment_plan(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """The plan named by :data:`ENV_VAR`, or ``None``.

    ``environ`` is injectable for tests; defaults to ``os.environ``.
    """
    source = os.environ if environ is None else environ
    value = source.get(ENV_VAR)
    if not value:
        return None
    return FaultPlan.coerce(value)


def resolve_plan(
    config_plan: Optional[FaultPlan],
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[FaultPlan]:
    """The active plan for a run: the config's, else the environment's."""
    if config_plan is not None:
        return config_plan
    return environment_plan(environ)


# ----------------------------------------------------------------------
# Worker-side injection
# ----------------------------------------------------------------------


class CorruptResult:
    """The payload a ``corrupt`` event substitutes for the real result.

    Pickles cleanly (the failure must survive the trip back to the
    parent) but is the wrong type for every site, so the supervisor's
    result validation rejects it and the task is retried or degraded.
    """

    def __init__(self, site: str, index: int) -> None:
        self.site = site
        self.index = index

    def __repr__(self) -> str:
        return f"CorruptResult(site={self.site!r}, index={self.index!r})"


def execute_with_fault(payload: Tuple) -> Any:
    """Worker entrypoint: run one supervised task, sabotaged on demand.

    ``payload`` is ``(worker, job, site, index, fault)`` where
    ``worker`` is the site's module-level task function, ``job`` its
    single argument, and ``fault`` the :class:`FaultEvent` scheduled
    for this attempt (or ``None``).  Top-level so it pickles by
    qualified name (FRK001); the injected failure happens *here*, in
    the worker process, never in the parent.
    """
    worker, job, site, index, fault = payload
    if fault is not None:
        if fault.kind == "crash":
            # A hard kill: no exception, no cleanup, no result pickle —
            # the parent sees BrokenProcessPool, exactly like an OOM
            # kill or a segfault.
            os._exit(101)
        if fault.kind == "hang":
            # Injection must stay deterministic (DET003: no wall-clock
            # reads steer behaviour) — a plain sleep is fine because
            # nothing downstream depends on how long it actually slept:
            # either the supervisor times out first, or the task
            # completes normally afterwards.  The sleep routes through
            # the injected-clock seam like every other timer (OBS002).
            from repro.obs import clock

            clock.sleep(fault.hang_seconds)
            return worker(job)
        if fault.kind == "pickle":
            # The work itself succeeds; serialising the result does
            # not.  A lambda pickles by reference to a scope that does
            # not exist, so the executor's result pickle raises and the
            # parent future carries the error.
            worker(job)
            return lambda: None  # repro: noqa — deliberate unpicklable
        if fault.kind == "corrupt":
            worker(job)
            return CorruptResult(site, index)
    return worker(job)
