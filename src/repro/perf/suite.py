"""The perf-benchmark suite behind ``BENCH_cspm.json``.

The suite reproduces the *shape* of the paper's scaling measurements
(Fig. 5: gain computations touched per step; Table III: runtime of the
search variants) on deterministic synthetic workloads, and runs every
configuration twice — once with the overlap-driven candidate generator
(:mod:`repro.core.pairgen`) and once with the quadratic full scan — so
the sparse-aware speedup is measured on otherwise identical code.

Workloads
---------
``sparse-scaling``
    A planted-community graph family with *disjoint* per-community
    value pools: the co-occurrence structure is genuinely sparse, like
    the paper's large real graphs where ``|SL|`` is large but only
    neighbourhood-correlated values ever co-occur.  The series scales
    the number of communities, which scales ``|SL|`` (and hence the
    quadratic scan) while per-pair work stays flat.  Both search
    variants run here; this is the workload the acceptance counters
    are pinned on.
``dblp`` / ``dblp-trend`` / ``usflight``
    The Table II dataset analogues (small, dense value universes).
    These bound the *other* end: when almost every value pair
    co-occurs, overlap generation must not be slower than the scan it
    replaces.  CSPM-Partial only, matching how Table III treats the
    large graphs.

Every run records wall-clock and the trace counters
(``initial_candidate_gains``, ``total_gain_computations``,
``peak_queue_size``, and — schema v2 — the lazy-refresh counters
``refreshes_skipped``/``dirty_revalidations``, plus iterations and
final DL bits).  ``partial`` runs use the library default update scope
(``lazy``), recorded in the run's ``update_scope`` field.  Counters are
structural — determined by the graph, not the machine — so CI asserts
regressions on them (``--check benchmarks/perf_bounds.json``) instead
of on flaky wall-clock thresholds; wall-clock is recorded for the
human-readable trajectory.

A single workload family can be re-measured without discarding the
rest of an existing document: ``--workload <name>`` (repeatable)
restricts the run, and when the output file already exists its other
workload entries are carried over unchanged (see :func:`merge_into`).

Output document (``BENCH_cspm.json``, schema v2)::

    {
      "schema_version": 2,
      "suite": "cspm-perf",
      "quick": bool,
      "workloads": [
        {
          "workload": "sparse-scaling",
          "kind": "synthetic-community",
          "series": [
            {
              "label": "communities=16",
              "num_vertices": int, "num_leafsets": int,
              "possible_pairs": int,
              "runs": {
                "partial/overlap": {
                  "wall_seconds": float,
                  "initial_candidate_gains": int,
                  "total_gain_computations": int,
                  "peak_queue_size": int,
                  "refreshes_skipped": int,
                  "dirty_revalidations": int,
                  "update_scope": "lazy",         # partial runs only
                  "iterations": int,
                  "final_dl_bits": float
                },
                "partial/full": {...}, "basic/overlap": {...}, ...
              },
              "seeding_gain_reduction": float,   # full/overlap seed gains
              "partial_wall_speedup": float,     # full/overlap wall
              "basic_wall_speedup": float|null
            }, ...
          ]
        }, ...
      ]
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.config import CSPMConfig
from repro.core.cspm_basic import run_basic
from repro.core.cspm_partial import run_partial
from repro.datasets import load_dataset
from repro.datasets.synthetic import community_attributed_graph
from repro.graphs.attributed_graph import AttributedGraph
from repro.pipeline import BuildInvertedDB, EncodeCoresets, PipelineContext

SCHEMA_VERSION = 2

WORKLOAD_NAMES = ("sparse-scaling", "dblp", "dblp-trend", "usflight")

# The sparse community family: disjoint 6-value pools, 25 vertices per
# community, light cross-community wiring.  Scaling the community count
# scales |SL| linearly and the full pair scan quadratically while the
# overlap neighbourhood per leafset stays constant.
SPARSE_POOL_SIZE = 6
SPARSE_COMMUNITY_SIZE = 25

# Community counts per suite flavour.  Basic (the quadratic search) is
# capped: its full-scan reference is exactly the blow-up being measured.
SPARSE_SIZES_QUICK = (16, 32, 48)
SPARSE_SIZES_FULL = (16, 32, 48, 64)
DATASET_SCALE_QUICK = 0.5
DATASET_SCALE_FULL = 1.0


def sparse_scaling_graph(num_communities: int, seed: int = 0) -> AttributedGraph:
    """The ``sparse-scaling`` family member with ``num_communities``."""
    pools = [
        [f"c{community}v{value}" for value in range(SPARSE_POOL_SIZE)]
        for community in range(num_communities)
    ]
    return community_attributed_graph(
        community_sizes=[SPARSE_COMMUNITY_SIZE] * num_communities,
        community_pools=pools,
        values_per_vertex=(2, 3),
        intra_degree=2.5,
        inter_degree=0.1,
        seed=seed,
    )


def _prepare(graph: AttributedGraph):
    """Encode coresets + build the inverted DB once per workload size."""
    context = PipelineContext(graph=graph, config=CSPMConfig())
    EncodeCoresets().run(context)
    BuildInvertedDB().run(context)
    return (
        context.inverted_db,
        context.standard_table,
        context.core_table,
        context.initial_dl.total_bits,
    )


def _run_case(
    db0, standard, core, initial_bits: float, algorithm: str, pair_source: str
) -> Dict[str, Any]:
    """One measured search run on a fresh copy of the database."""
    db = db0.copy()
    runner = run_basic if algorithm == "basic" else run_partial
    start = time.perf_counter()
    trace = runner(
        db, standard, core, initial_dl_bits=initial_bits, pair_source=pair_source
    )
    wall = time.perf_counter() - start
    entry = {
        "wall_seconds": round(wall, 6),
        "initial_candidate_gains": trace.initial_candidate_gains,
        "total_gain_computations": trace.total_gain_computations,
        "peak_queue_size": trace.peak_queue_size,
        "refreshes_skipped": trace.refreshes_skipped,
        "dirty_revalidations": trace.dirty_revalidations,
        "iterations": trace.num_iterations,
        "final_dl_bits": trace.final_dl_bits,
    }
    if algorithm != "basic":
        # run_partial's default scope — the algorithm string is
        # "cspm-partial/<scope>".
        entry["update_scope"] = trace.algorithm.rsplit("/", 1)[-1]
    return entry


def _measure_size(
    graph: AttributedGraph, label: str, run_basic_too: bool
) -> Dict[str, Any]:
    """All (algorithm, pair_source) runs for one workload size."""
    db0, standard, core, initial_bits = _prepare(graph)
    num_leafsets = len(db0.leafsets())
    runs: Dict[str, Dict[str, Any]] = {}
    algorithms = ["partial"] + (["basic"] if run_basic_too else [])
    for algorithm in algorithms:
        for pair_source in ("overlap", "full"):
            runs[f"{algorithm}/{pair_source}"] = _run_case(
                db0, standard, core, initial_bits, algorithm, pair_source
            )
    entry: Dict[str, Any] = {
        "label": label,
        "num_vertices": graph.num_vertices,
        "num_leafsets": num_leafsets,
        "possible_pairs": num_leafsets * (num_leafsets - 1) // 2,
        "runs": runs,
    }
    overlap = runs["partial/overlap"]
    full = runs["partial/full"]
    entry["seeding_gain_reduction"] = round(
        full["initial_candidate_gains"] / max(1, overlap["initial_candidate_gains"]),
        3,
    )
    entry["partial_wall_speedup"] = round(
        full["wall_seconds"] / max(1e-9, overlap["wall_seconds"]), 3
    )
    if run_basic_too:
        entry["basic_wall_speedup"] = round(
            runs["basic/full"]["wall_seconds"]
            / max(1e-9, runs["basic/overlap"]["wall_seconds"]),
            3,
        )
    else:
        entry["basic_wall_speedup"] = None
    return entry


def run_suite(
    quick: bool = False,
    seed: int = 0,
    log=None,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Run the workloads and return the ``BENCH_cspm.json`` document.

    ``only`` restricts the run to the named workload families (see
    ``WORKLOAD_NAMES``); unknown names raise ``ValueError`` so CLI
    typos fail loudly instead of silently measuring nothing.
    """
    if only:
        unknown = sorted(set(only) - set(WORKLOAD_NAMES))
        if unknown:
            raise ValueError(
                f"unknown workload(s) {unknown}; available: {list(WORKLOAD_NAMES)}"
            )

    def wanted(name: str) -> bool:
        return not only or name in only

    def say(message: str) -> None:
        if log is not None:
            log(message)

    workloads: List[Dict[str, Any]] = []

    if wanted("sparse-scaling"):
        sizes = SPARSE_SIZES_QUICK if quick else SPARSE_SIZES_FULL
        series = []
        for num_communities in sizes:
            say(f"sparse-scaling: communities={num_communities} ...")
            graph = sparse_scaling_graph(num_communities, seed=seed)
            series.append(
                _measure_size(
                    graph, f"communities={num_communities}", run_basic_too=True
                )
            )
        workloads.append(
            {
                "workload": "sparse-scaling",
                "kind": "synthetic-community",
                "pool_size": SPARSE_POOL_SIZE,
                "community_size": SPARSE_COMMUNITY_SIZE,
                "series": series,
            }
        )

    scale = DATASET_SCALE_QUICK if quick else DATASET_SCALE_FULL
    for name in ("dblp", "dblp-trend", "usflight"):
        if not wanted(name):
            continue
        say(f"dataset analogue: {name} (scale={scale}) ...")
        graph = load_dataset(name, scale=scale, seed=seed)
        workloads.append(
            {
                "workload": name,
                "kind": "dataset-analogue",
                "scale": scale,
                "series": [
                    _measure_size(graph, f"scale={scale}", run_basic_too=False)
                ],
            }
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "cspm-perf",
        "quick": quick,
        "seed": seed,
        "workloads": workloads,
    }


def merge_into(
    existing: Dict[str, Any], fresh: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge a (possibly filtered) fresh run into an existing document.

    Workload entries present in ``fresh`` replace the same-named entries
    of ``existing`` in place; entries only in ``existing`` are kept (in
    their original order) so re-measuring one family does not discard
    the rest of ``BENCH_cspm.json``.  Top-level metadata comes from the
    fresh run.
    """
    fresh_by_name = {w["workload"]: w for w in fresh["workloads"]}
    merged: List[Dict[str, Any]] = []
    for workload in existing.get("workloads", []):
        merged.append(fresh_by_name.pop(workload["workload"], workload))
    merged.extend(fresh_by_name.values())
    document = dict(fresh)
    document["workloads"] = merged
    return document


def summarize(document: Dict[str, Any]) -> str:
    """A human-readable table of the measured trajectory."""
    lines = [
        f"{'workload':<16}{'size':<16}{'|SL|':>6}{'pairs':>9}"
        f"{'seed red.':>10}{'partial x':>10}{'basic x':>9}"
        f"{'partial s':>10}{'peak Q':>8}{'skipped':>9}{'dirty':>7}"
    ]
    lines.append("-" * len(lines[0]))
    for workload in document["workloads"]:
        for entry in workload["series"]:
            partial = entry["runs"]["partial/overlap"]
            basic_speedup = entry["basic_wall_speedup"]
            lines.append(
                f"{workload['workload']:<16}{entry['label']:<16}"
                f"{entry['num_leafsets']:>6}{entry['possible_pairs']:>9}"
                f"{entry['seeding_gain_reduction']:>10.2f}"
                f"{entry['partial_wall_speedup']:>10.2f}"
                f"{basic_speedup if basic_speedup is not None else float('nan'):>9.2f}"
                f"{partial['wall_seconds']:>10.3f}"
                f"{partial['peak_queue_size']:>8}"
                f"{partial.get('refreshes_skipped', 0):>9}"
                f"{partial.get('dirty_revalidations', 0):>7}"
            )
    return "\n".join(lines)


def check_bounds(
    document: Dict[str, Any], bounds: Dict[str, Any]
) -> List[str]:
    """Counter-based regression check; returns failure messages.

    ``bounds`` maps workload name -> series label -> constraints:

    ``max_initial_candidate_gains``
        Upper bound on the overlap run's seeding gain evaluations
        (structural: grows only if candidate generation regresses).
    ``min_seeding_gain_reduction``
        Lower bound on full/overlap seeding gains.
    ``max_total_gain_computations``
        Upper bound on the overlap run's total gain evaluations.
    ``min_refreshes_skipped``
        Lower bound on the lazy scope's skipped refreshes (structural:
        drops to zero if the bound-driven refresh stops deferring).
    ``max_dirty_revalidations``
        Upper bound on the lazy scope's queue-head revalidations.
    """
    failures: List[str] = []
    by_name = {w["workload"]: w for w in document["workloads"]}
    for workload_name, per_label in bounds.items():
        if workload_name.startswith("__"):  # comment keys
            continue
        workload = by_name.get(workload_name)
        if workload is None:
            failures.append(f"workload {workload_name!r} missing from document")
            continue
        by_label = {entry["label"]: entry for entry in workload["series"]}
        for label, constraints in per_label.items():
            entry = by_label.get(label)
            if entry is None:
                failures.append(
                    f"{workload_name}: series {label!r} missing from document"
                )
                continue
            overlap = entry["runs"]["partial/overlap"]
            limit = constraints.get("max_initial_candidate_gains")
            if limit is not None and overlap["initial_candidate_gains"] > limit:
                failures.append(
                    f"{workload_name}/{label}: initial_candidate_gains "
                    f"{overlap['initial_candidate_gains']} > bound {limit}"
                )
            floor = constraints.get("min_seeding_gain_reduction")
            if floor is not None and entry["seeding_gain_reduction"] < floor:
                failures.append(
                    f"{workload_name}/{label}: seeding_gain_reduction "
                    f"{entry['seeding_gain_reduction']} < bound {floor}"
                )
            limit = constraints.get("max_total_gain_computations")
            if limit is not None and overlap["total_gain_computations"] > limit:
                failures.append(
                    f"{workload_name}/{label}: total_gain_computations "
                    f"{overlap['total_gain_computations']} > bound {limit}"
                )
            floor = constraints.get("min_refreshes_skipped")
            if floor is not None and overlap.get("refreshes_skipped", 0) < floor:
                failures.append(
                    f"{workload_name}/{label}: refreshes_skipped "
                    f"{overlap.get('refreshes_skipped', 0)} < bound {floor}"
                )
            limit = constraints.get("max_dirty_revalidations")
            if limit is not None and overlap.get("dirty_revalidations", 0) > limit:
                failures.append(
                    f"{workload_name}/{label}: dirty_revalidations "
                    f"{overlap.get('dirty_revalidations', 0)} > bound {limit}"
                )
    return failures


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """The benchmark flags, shared by ``repro bench`` and the script."""
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes/scales (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--out",
        "--output",
        dest="out",
        default="BENCH_cspm.json",
        help="output path (default: BENCH_cspm.json in the cwd)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workload",
        action="append",
        dest="workloads",
        default=None,
        metavar="NAME",
        choices=WORKLOAD_NAMES,
        help="measure only this workload family (repeatable); existing "
        "entries of the output file for other families are kept",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BOUNDS_JSON",
        help="assert counter bounds from this file; exit 1 on regression",
    )


def execute(args) -> int:
    """Run the suite per parsed ``args`` (see :func:`add_bench_arguments`)."""
    fresh = run_suite(
        quick=args.quick, seed=args.seed, log=print, only=args.workloads
    )
    document = fresh
    if args.workloads:
        try:
            with open(args.out) as handle:
                document = merge_into(json.load(handle), fresh)
        except (FileNotFoundError, json.JSONDecodeError):
            pass
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"\nwrote {args.out}")
    print(summarize(document))

    if args.check:
        with open(args.check) as handle:
            bounds = json.load(handle)
        if args.workloads:
            # Only gate what this invocation actually measured:
            # carried-over entries may predate the current schema (or
            # the current code), and failing on them would blame a
            # family that was never re-run.
            bounds = {
                name: constraints
                for name, constraints in bounds.items()
                if name.startswith("__") or name in args.workloads
            }
        failures = check_bounds(fresh, bounds)
        if failures:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\ncounter bounds OK ({args.check})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_suite",
        description="CSPM perf suite: emit the BENCH_cspm.json trajectory",
    )
    add_bench_arguments(parser)
    return execute(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
