"""The perf-benchmark suite behind ``BENCH_cspm.json``.

The suite reproduces the *shape* of the paper's scaling measurements
(Fig. 5: gain computations touched per step; Table III: runtime of the
search variants) on deterministic synthetic workloads, and runs every
configuration twice — once with the overlap-driven candidate generator
(:mod:`repro.core.pairgen`) and once with the quadratic full scan — so
the sparse-aware speedup is measured on otherwise identical code.

Workloads
---------
``sparse-scaling``
    A planted-community graph family with *disjoint* per-community
    value pools: the co-occurrence structure is genuinely sparse, like
    the paper's large real graphs where ``|SL|`` is large but only
    neighbourhood-correlated values ever co-occur.  The series scales
    the number of communities, which scales ``|SL|`` (and hence the
    quadratic scan) while per-pair work stays flat.  Both search
    variants run here; this is the workload the acceptance counters
    are pinned on.
``dblp`` / ``dblp-trend`` / ``usflight``
    The Table II dataset analogues (small, dense value universes).
    These bound the *other* end: when almost every value pair
    co-occurs, overlap generation must not be slower than the scan it
    replaces.  CSPM-Partial only, matching how Table III treats the
    large graphs.
``pokec-sparse``
    The paper-scale workload (schema v3): the sparse community family
    scaled to hundreds of thousands of vertices — the regime the
    ROADMAP's pokec scale-ceiling item names.  Whole-graph bigint
    masks are *infeasible* here (every row would pay ``O(|V|)`` bytes;
    the recorded ``bigint_mask_bytes_estimate`` shows gigabytes), so
    this family always runs on a sparse chunked backend
    (:mod:`repro.core.masks`): the suite-level ``--mask-backend``
    choice is honoured when it names ``chunked`` or ``numpy`` and is
    upgraded to ``chunked`` otherwise.  CSPM-Partial/overlap only —
    the quadratic full scan over ~50k leafsets is exactly the blow-up
    the overlap generator removes.
``pokec-xl``
    True paper scale (schema v4): the same family at the source
    paper's pokec size — 32 000 communities = 800k vertices, and
    64 000 communities = 1.6M vertices for the top member.  Full
    suite only (the quick/CI flavour skips it); CSPM-Partial/overlap
    on chunked-or-numpy masks, like ``pokec-sparse``.  This family
    exists to pin the construction layer: its entries' recorded
    ``construction_seconds`` are what the columnar batch builder is
    accountable for.

Every run records wall-clock and the trace counters
(``initial_candidate_gains``, ``total_gain_computations``,
``peak_queue_size``, the lazy-refresh counters
``refreshes_skipped``/``dirty_revalidations``, iterations and final DL
bits) plus — schema v3 — the resolved ``mask_backend`` and
``mask_peak_bytes`` (the larger of the mask memory held just after
construction and at convergence; every series entry also carries the
``bigint_mask_bytes_estimate`` reference, so the chunked backends'
memory reduction is a recorded, assertable ratio).  ``partial`` runs
use the library default update scope (``lazy``), recorded in the run's
``update_scope`` field.  Counters are structural — determined by the
graph, not the machine — so CI asserts regressions on them (``--check
benchmarks/perf_bounds.json``) instead of on flaky wall-clock
thresholds; wall-clock is recorded for the human-readable trajectory.
Mask backends are bit-exact interchangeable, so re-running the suite
under ``--mask-backend bigint|chunked|numpy`` must reproduce identical
counters — the CI perf-smoke job exercises exactly that, and repeats
the run under ``--construction partitioned`` (2 workers) as the
bit-exactness gate for the coreset-partitioned build path.

Schema v4 adds the construction layer: every series entry records
``construction_seconds`` (the ``BuildInvertedDB`` wall-clock for that
graph, measured once per size) and — where a pre-columnar reference
exists (:data:`PRE_COLUMNAR_CONSTRUCTION_SECONDS`) —
``construction_baseline_seconds``, so the batch builder's speedup is a
ratio recorded inside the document.  Construction wall-clock is never
asserted: ``max_construction_seconds`` entries in the bounds file are
*report-only* (:func:`construction_report`).  The suite-level
``--construction``/``--construction-workers`` flags select the build
path for every workload; both paths construct the identical database,
so all counter bounds apply unchanged.

Schema v5 adds the search layer: every run records ``search_seconds``
(the measured search-phase wall-clock — construction is timed
separately) and, for the CSPM-Partial runs, the execution mode in
``search`` (``serial``/``sharded``); every series entry records
``num_components`` and ``largest_component_frac`` — the connected
components of the coreset-overlap graph, the structural quantity that
bounds how much the sharded search (:mod:`repro.core.search_shard`)
can parallelise.  The suite-level ``--search``/``--search-workers``
flags select the execution for every partial run; the sharded path is
bit-exact with the serial one, so all counter bounds apply unchanged —
the CI sharded smoke's gate.

Schema v6 adds the supervised runtime (:mod:`repro.runtime`): the
document records the suite-level ``fault_plan`` (the deterministic
injection schedule of a chaos run, ``null`` for normal runs) plus the
runtime knobs (``worker_timeout``/``max_task_retries``/
``on_worker_failure``); supervised sharded runs record ``retries`` and
``degraded_tasks``, and supervised partitioned builds record
``construction_retries``/``construction_degraded_tasks`` on the series
entry.  Injected failures are recovered by retry or bit-exact
in-process degradation, so **all counter bounds still apply unchanged
under any fault plan** — that is the CI chaos-smoke job's gate.

Schema v7 adds observability (:mod:`repro.obs`): the suite-level
``--trace FILE`` records nested spans — including real worker-process
lanes from the partitioned build and the sharded search — into one
Chrome trace-event file, ``--progress`` streams throttled heartbeats
to stderr, and ``--metrics FILE`` gives every measured run a *fresh*
metrics registry whose snapshot (counters/gauges/histograms) is folded
into the run entry as ``"metrics"`` and collected into FILE keyed by
``workload/label/case``.  Recording is read-only observation of the
same code path: counters, DL floats and merge sequences are unchanged,
so **all counter bounds apply unchanged with observability on** — the
CI perf-smoke job's traced re-run gates exactly that.

A single workload family can be re-measured without discarding the
rest of an existing document: ``--workload <name>`` (repeatable)
restricts the run, and when the output file already exists its other
workload entries are carried over unchanged (see :func:`merge_into`).
``--list-workloads`` (or ``--list``) prints the registered families
with their quick/full member sizes instead of running anything.

Output document (``BENCH_cspm.json``, schema v5)::

    {
      "schema_version": 5,
      "suite": "cspm-perf",
      "quick": bool,
      "mask_backend": "auto",                    # the suite-level request
      "construction": "serial",                  # the suite-level build path
      "construction_workers": null,
      "search": "serial",                        # the suite-level search path
      "search_workers": null,
      "workloads": [
        {
          "workload": "sparse-scaling",
          "kind": "synthetic-community",
          "series": [
            {
              "label": "communities=16",
              "num_vertices": int, "num_leafsets": int,
              "possible_pairs": int,
              "num_components": int,             # coreset-overlap components
              "largest_component_frac": float,
              "mask_backend": "bigint",          # resolved for this graph
              "bigint_mask_bytes_estimate": int, # whole-graph-int reference
              "construction_seconds": float,     # BuildInvertedDB wall-clock
              "construction_baseline_seconds": float,  # where recorded
              "runs": {
                "partial/overlap": {
                  "wall_seconds": float,
                  "search_seconds": float,       # == wall (search phase only)
                  "initial_candidate_gains": int,
                  "total_gain_computations": int,
                  "peak_queue_size": int,
                  "refreshes_skipped": int,
                  "dirty_revalidations": int,
                  "update_scope": "lazy",         # partial runs only
                  "search": "serial",             # partial runs only
                  "search_workers": int,          # sharded runs only
                  "iterations": int,
                  "final_dl_bits": float,
                  "mask_backend": "bigint",
                  "mask_peak_bytes": int
                },
                "partial/full": {...}, "basic/overlap": {...}, ...
              },
              "seeding_gain_reduction": float,   # full/overlap seed gains
              "partial_wall_speedup": float,     # full/overlap wall
              "basic_wall_speedup": float|null
            }, ...
          ]
        }, ...
      ]
    }
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.config import (
    CONSTRUCTIONS,
    MASK_BACKENDS,
    ON_WORKER_FAILURE,
    SEARCHES,
    CSPMConfig,
)
from repro.core.cspm_basic import run_basic
from repro.core.cspm_partial import run_partial
from repro.core.search_shard import connected_components, run_sharded
from repro.datasets import load_dataset
from repro.datasets.synthetic import community_attributed_graph
from repro.graphs.attributed_graph import AttributedGraph
from repro.obs import (
    MetricsRegistry,
    Observation,
    activate,
    clock,
    current,
    emit_run_trace,
)
from repro.pipeline import BuildInvertedDB, EncodeCoresets, PipelineContext
from repro.runtime.supervisor import RuntimePolicy

SCHEMA_VERSION = 7

WORKLOAD_NAMES = (
    "sparse-scaling",
    "dblp",
    "dblp-trend",
    "usflight",
    "pokec-sparse",
    "pokec-xl",
)

# The sparse community family: disjoint 6-value pools, 25 vertices per
# community, light cross-community wiring.  Scaling the community count
# scales |SL| linearly and the full pair scan quadratically while the
# overlap neighbourhood per leafset stays constant.
SPARSE_POOL_SIZE = 6
SPARSE_COMMUNITY_SIZE = 25

# Community counts per suite flavour.  Basic (the quadratic search) is
# capped: its full-scan reference is exactly the blow-up being measured.
SPARSE_SIZES_QUICK = (16, 32, 48)
SPARSE_SIZES_FULL = (16, 32, 48, 64)
DATASET_SCALE_QUICK = 0.5
DATASET_SCALE_FULL = 1.0

# The pokec-sparse paper-scale family: the same disjoint-pool community
# structure at 25 vertices/community.  The quick (CI smoke) size stays
# around 20k vertices; the full series repeats it and crosses the
# 200k-vertex mark, where whole-graph bigint masks would need
# gigabytes (the smoke size is in both flavours so the perf_bounds
# gates apply to either document).
POKEC_SIZES_QUICK = (800,)
POKEC_SIZES_FULL = (800, 2000, 8000)

# The pokec-xl paper-scale family: 32 000 communities = 800k vertices
# and 64 000 = 1.6M — the source paper's pokec size.  Full suite only;
# the quick/CI flavour skips it entirely (an ~hour-class measurement
# has no place in a smoke job).
POKEC_XL_SIZES_QUICK: tuple = ()
POKEC_XL_SIZES_FULL = (32000, 64000)

#: Construction wall-clock of the *pre-columnar* builder (one
#: ``_add_position`` per (coreset, vertex, leaf-value) triple),
#: measured on the reference machine immediately before the columnar
#: refactor (chunked masks, coreset positions precomputed — the same
#: shape ``construction_seconds`` is measured in).  Attached to the
#: matching series entries as ``construction_baseline_seconds`` so the
#: batch builder's speedup is a recorded ratio inside the document,
#: not an out-of-band claim.
PRE_COLUMNAR_CONSTRUCTION_SECONDS: Dict[tuple, float] = {
    ("pokec-sparse", "communities=800"): 0.760,
    ("pokec-sparse", "communities=2000"): 2.191,
    ("pokec-sparse", "communities=8000"): 12.423,
}


def sparse_scaling_graph(num_communities: int, seed: int = 0) -> AttributedGraph:
    """The ``sparse-scaling`` family member with ``num_communities``."""
    pools = [
        [f"c{community}v{value}" for value in range(SPARSE_POOL_SIZE)]
        for community in range(num_communities)
    ]
    return community_attributed_graph(
        community_sizes=[SPARSE_COMMUNITY_SIZE] * num_communities,
        community_pools=pools,
        values_per_vertex=(2, 3),
        intra_degree=2.5,
        inter_degree=0.1,
        seed=seed,
    )


def pokec_sparse_graph(num_communities: int, seed: int = 0) -> AttributedGraph:
    """A ``pokec-sparse`` family member (same structure, paper scale).

    Cross-community wiring is kept lighter than ``sparse-scaling``'s so
    the workload stays dominated by within-community co-occurrence, the
    regime where sparse chunked masks pay off most clearly.
    """
    pools = [
        [f"c{community}v{value}" for value in range(SPARSE_POOL_SIZE)]
        for community in range(num_communities)
    ]
    return community_attributed_graph(
        community_sizes=[SPARSE_COMMUNITY_SIZE] * num_communities,
        community_pools=pools,
        values_per_vertex=(2, 3),
        intra_degree=2.5,
        inter_degree=0.05,
        seed=seed,
    )


def _prepare(
    graph: AttributedGraph,
    mask_backend: str = "auto",
    construction: str = "serial",
    construction_workers: Optional[int] = None,
    runtime_kwargs: Optional[Dict[str, Any]] = None,
):
    """Encode coresets + build the inverted DB once per workload size.

    Returns the database, the code tables, the initial DL bits and the
    construction wall-clock (the ``BuildInvertedDB`` stage records it
    in ``context.extras`` — schema v4's ``construction_seconds``).
    ``runtime_kwargs`` carries the supervised-runtime config fields
    (timeout/retries/failure mode/fault plan) into the build; the
    site's telemetry lands on ``db.construction_report``.
    """
    context = PipelineContext(
        graph=graph,
        config=CSPMConfig(
            mask_backend=mask_backend,
            construction=construction,
            construction_workers=construction_workers,
            **(runtime_kwargs or {}),
        ),
    )
    EncodeCoresets().run(context)
    BuildInvertedDB().run(context)
    return (
        context.inverted_db,
        context.standard_table,
        context.core_table,
        context.initial_dl.total_bits,
        context.extras["construction_seconds"],
    )


def _run_case(
    db0,
    standard,
    core,
    initial_bits: float,
    algorithm: str,
    pair_source: str,
    initial_mask_bytes: int,
    search: str = "serial",
    search_workers: Optional[int] = None,
    policy: Optional[RuntimePolicy] = None,
    metrics: bool = False,
) -> Dict[str, Any]:
    """One measured search run on a fresh copy of the database.

    ``search`` selects the CSPM-Partial execution: ``sharded`` runs
    :func:`repro.core.search_shard.run_sharded` (bit-exact with the
    serial loop, so every recorded counter is identical by contract)
    under ``policy``'s supervision, recording schema v6's ``retries``/
    ``degraded_tasks`` when a pool actually ran; ``basic`` runs always
    stay serial.

    ``metrics`` (schema v7) gives this run a fresh
    :class:`~repro.obs.MetricsRegistry` — composed with whatever suite-
    level tracer/progress session is active — and folds its snapshot
    into the entry as ``"metrics"``, so per-run perf accounting never
    bleeds across cases.
    """
    db = db0.copy()
    report = None
    parent = current()
    registry = MetricsRegistry() if metrics else None
    obs = (
        Observation(parent.tracer, registry, parent.progress)
        if registry is not None
        else parent
    )
    with activate(obs), obs.span(
        "bench.run",
        algorithm=algorithm,
        pair_source=pair_source,
        search=search,
    ):
        start = clock.perf_counter()
        if algorithm == "basic":
            trace = run_basic(
                db, standard, core, initial_dl_bits=initial_bits,
                pair_source=pair_source,
            )
        elif search == "sharded":
            sharded = run_sharded(
                db, standard, core, initial_dl_bits=initial_bits,
                pair_source=pair_source, workers=search_workers,
                policy=policy,
            )
            trace = sharded.trace
            report = sharded.report
        else:
            trace = run_partial(
                db, standard, core, initial_dl_bits=initial_bits,
                pair_source=pair_source,
            )
        wall = clock.perf_counter() - start
        emit_run_trace(obs.metrics, trace)
        if obs.metrics.enabled:
            obs.metrics.histogram("search.seconds").observe(wall)
    entry = {
        "wall_seconds": round(wall, 6),
        "search_seconds": round(wall, 6),
        "initial_candidate_gains": trace.initial_candidate_gains,
        "total_gain_computations": trace.total_gain_computations,
        "peak_queue_size": trace.peak_queue_size,
        "refreshes_skipped": trace.refreshes_skipped,
        "dirty_revalidations": trace.dirty_revalidations,
        "iterations": trace.num_iterations,
        "final_dl_bits": trace.final_dl_bits,
        "mask_backend": db.mask_backend.name,
        # A two-point sample: the larger of mask memory just after
        # construction and at convergence.  Positions are conserved
        # but a merge can transiently split a touched row into up to
        # three, so interior maxima may slightly exceed both samples —
        # this is an approximation kept deliberately cheap (no
        # per-merge walks); the CI reduction floor carries an order of
        # magnitude of margin over it.
        "mask_peak_bytes": max(initial_mask_bytes, db.mask_memory_bytes()),
    }
    if algorithm != "basic":
        # run_partial's default scope — the algorithm string is
        # "cspm-partial/<scope>".
        entry["update_scope"] = trace.algorithm.rsplit("/", 1)[-1]
        entry["search"] = search
        if search == "sharded":
            entry["search_workers"] = search_workers
    if report is not None:
        entry["retries"] = report.retries
        entry["degraded_tasks"] = list(report.degraded_tasks)
    if registry is not None:
        entry["metrics"] = registry.snapshot()
    return entry


def _measure_size(
    graph: AttributedGraph,
    label: str,
    run_basic_too: bool,
    mask_backend: str = "auto",
    pair_sources: Sequence[str] = ("overlap", "full"),
    construction: str = "serial",
    construction_workers: Optional[int] = None,
    search: str = "serial",
    search_workers: Optional[int] = None,
    workload: Optional[str] = None,
    runtime_kwargs: Optional[Dict[str, Any]] = None,
    metrics: bool = False,
) -> Dict[str, Any]:
    """All (algorithm, pair_source) runs for one workload size."""
    db0, standard, core, initial_bits, construction_seconds = _prepare(
        graph,
        mask_backend=mask_backend,
        construction=construction,
        construction_workers=construction_workers,
        runtime_kwargs=runtime_kwargs,
    )
    policy = RuntimePolicy.from_config(
        CSPMConfig(**(runtime_kwargs or {}))
    )
    num_leafsets = db0.num_leafsets
    initial_mask_bytes = db0.mask_memory_bytes()
    # Structural component statistics (schema v5): what bounds the
    # sharded search's available parallelism on this graph.
    components = connected_components(db0)
    largest_component = max(
        (len(component) for component in components), default=0
    )
    runs: Dict[str, Dict[str, Any]] = {}
    algorithms = ["partial"] + (["basic"] if run_basic_too else [])
    for algorithm in algorithms:
        for pair_source in pair_sources:
            runs[f"{algorithm}/{pair_source}"] = _run_case(
                db0,
                standard,
                core,
                initial_bits,
                algorithm,
                pair_source,
                initial_mask_bytes,
                search=search,
                search_workers=search_workers,
                policy=policy,
                metrics=metrics,
            )
    entry: Dict[str, Any] = {
        "label": label,
        "num_vertices": graph.num_vertices,
        "num_leafsets": num_leafsets,
        "possible_pairs": num_leafsets * (num_leafsets - 1) // 2,
        "num_components": len(components),
        "largest_component_frac": round(
            largest_component / num_leafsets if num_leafsets else 0.0, 6
        ),
        "mask_backend": db0.mask_backend.name,
        "bigint_mask_bytes_estimate": db0.bigint_mask_bytes_estimate(),
        "construction_seconds": round(construction_seconds, 6),
        "runs": runs,
    }
    baseline = PRE_COLUMNAR_CONSTRUCTION_SECONDS.get((workload, label))
    if baseline is not None:
        entry["construction_baseline_seconds"] = baseline
    if db0.construction_report is not None:
        # Schema v6: the supervised partitioned build's failure
        # telemetry (empty lists/zero on clean runs — their presence
        # marks the build as supervised).
        entry["construction_retries"] = db0.construction_report.retries
        entry["construction_degraded_tasks"] = list(
            db0.construction_report.degraded_tasks
        )
    overlap = runs["partial/overlap"]
    full = runs.get("partial/full")
    if full is not None:
        entry["seeding_gain_reduction"] = round(
            full["initial_candidate_gains"]
            / max(1, overlap["initial_candidate_gains"]),
            3,
        )
        entry["partial_wall_speedup"] = round(
            full["wall_seconds"] / max(1e-9, overlap["wall_seconds"]), 3
        )
    else:
        entry["seeding_gain_reduction"] = None
        entry["partial_wall_speedup"] = None
    if run_basic_too and "basic/full" in runs:
        entry["basic_wall_speedup"] = round(
            runs["basic/full"]["wall_seconds"]
            / max(1e-9, runs["basic/overlap"]["wall_seconds"]),
            3,
        )
    else:
        entry["basic_wall_speedup"] = None
    return entry


def _pokec_backend(mask_backend: str) -> str:
    """The backend a pokec-sparse run actually uses.

    Whole-graph bigint masks are the very infeasibility this family
    demonstrates, so ``auto``/``bigint`` requests are upgraded to
    ``chunked``; an explicit ``numpy`` request is honoured.
    """
    return mask_backend if mask_backend in ("chunked", "numpy") else "chunked"


def workload_catalog() -> List[Dict[str, Any]]:
    """The registered families with their quick/full member labels.

    The data behind ``--list-workloads``: each record names the
    family, its kind, the series labels of the quick (CI smoke) and
    full flavours, and what runs in it — so ``--workload`` values are
    discoverable without reading this module.
    """

    def communities(sizes: Sequence[int]) -> List[str]:
        return [
            f"communities={n} (~{n * SPARSE_COMMUNITY_SIZE} vertices)"
            for n in sizes
        ]

    return [
        {
            "workload": "sparse-scaling",
            "kind": "synthetic-community",
            "quick": communities(SPARSE_SIZES_QUICK),
            "full": communities(SPARSE_SIZES_FULL),
            "runs": "partial+basic, overlap+full",
        },
        {
            "workload": "dblp",
            "kind": "dataset-analogue",
            "quick": [f"scale={DATASET_SCALE_QUICK}"],
            "full": [f"scale={DATASET_SCALE_FULL}"],
            "runs": "partial, overlap+full",
        },
        {
            "workload": "dblp-trend",
            "kind": "dataset-analogue",
            "quick": [f"scale={DATASET_SCALE_QUICK}"],
            "full": [f"scale={DATASET_SCALE_FULL}"],
            "runs": "partial, overlap+full",
        },
        {
            "workload": "usflight",
            "kind": "dataset-analogue",
            "quick": [f"scale={DATASET_SCALE_QUICK}"],
            "full": [f"scale={DATASET_SCALE_FULL}"],
            "runs": "partial, overlap+full",
        },
        {
            "workload": "pokec-sparse",
            "kind": "synthetic-community",
            "quick": communities(POKEC_SIZES_QUICK),
            "full": communities(POKEC_SIZES_FULL),
            "runs": "partial/overlap only, chunked-or-numpy masks",
        },
        {
            "workload": "pokec-xl",
            "kind": "synthetic-community",
            "quick": [],
            "full": communities(POKEC_XL_SIZES_FULL),
            "runs": "partial/overlap only, chunked-or-numpy masks "
            "(full suite only)",
        },
    ]


def format_workload_catalog() -> str:
    """``--list-workloads`` text: one block per registered family."""
    lines = []
    for record in workload_catalog():
        lines.append(f"{record['workload']}  [{record['kind']}]")
        lines.append(f"  runs:  {record['runs']}")
        quick = ", ".join(record["quick"]) or "(skipped under --quick)"
        lines.append(f"  quick: {quick}")
        lines.append(f"  full:  {', '.join(record['full'])}")
    return "\n".join(lines)


def run_suite(
    quick: bool = False,
    seed: int = 0,
    log=None,
    only: Optional[Sequence[str]] = None,
    mask_backend: str = "auto",
    construction: str = "serial",
    construction_workers: Optional[int] = None,
    search: str = "serial",
    search_workers: Optional[int] = None,
    worker_timeout: Optional[float] = None,
    max_task_retries: int = 2,
    on_worker_failure: str = "degrade",
    fault_plan: Optional[Any] = None,
    metrics: bool = False,
) -> Dict[str, Any]:
    """Run the workloads and return the ``BENCH_cspm.json`` document.

    ``metrics`` (schema v7) gives every measured run a fresh metrics
    registry and records its snapshot in the run entry; span tracing
    and progress heartbeats are *session-scoped* instead — activate an
    :class:`repro.obs.Observation` around this call (as
    :func:`execute` does for ``--trace``/``--progress``) and every
    stage and worker pool records into it.

    ``only`` restricts the run to the named workload families (see
    ``WORKLOAD_NAMES``); unknown names raise ``ValueError`` so CLI
    typos fail loudly instead of silently measuring nothing.
    ``mask_backend`` forces a position-mask representation on every
    workload (``pokec-sparse``/``pokec-xl`` upgrade ``auto``/``bigint``
    to ``chunked`` — see :func:`_pokec_backend`); counters must be
    identical across backends, which is how CI pins bit-exactness.
    ``construction``/``construction_workers`` select the build path
    the same way — the partitioned path must reproduce the serial
    counters exactly, which is the CI partitioned smoke's gate.
    ``search``/``search_workers`` select the CSPM-Partial execution
    (schema v5): the component-sharded path stitches a bit-exact
    serial-equivalent trace, so the same counter bounds gate it too.
    The supervised-runtime knobs (schema v6) — ``worker_timeout``,
    ``max_task_retries``, ``on_worker_failure``, ``fault_plan`` (a
    :class:`~repro.runtime.faults.FaultPlan` or its mapping/JSON/path
    spellings) — govern every worker pool the suite spins up; injected
    failures recover by retry or bit-exact degradation, so the bounds
    still apply (the CI chaos smoke's gate).
    """
    if only:
        unknown = sorted(set(only) - set(WORKLOAD_NAMES))
        if unknown:
            raise ValueError(
                f"unknown workload(s) {unknown}; available: {list(WORKLOAD_NAMES)}"
            )
    if mask_backend not in MASK_BACKENDS:
        raise ValueError(
            f"unknown mask backend {mask_backend!r}; "
            f"available: {list(MASK_BACKENDS)}"
        )
    if construction not in CONSTRUCTIONS:
        raise ValueError(
            f"unknown construction {construction!r}; "
            f"available: {list(CONSTRUCTIONS)}"
        )
    if search not in SEARCHES:
        raise ValueError(
            f"unknown search {search!r}; available: {list(SEARCHES)}"
        )

    if on_worker_failure not in ON_WORKER_FAILURE:
        raise ValueError(
            f"unknown on_worker_failure {on_worker_failure!r}; "
            f"available: {list(ON_WORKER_FAILURE)}"
        )
    # Normalise the plan once (CSPMConfig would coerce anyway; doing it
    # here surfaces a malformed plan before any measurement runs, and
    # gives the document a serialisable copy to record).
    from repro.runtime.faults import FaultPlan

    plan = FaultPlan.coerce(fault_plan)
    runtime_kwargs: Dict[str, Any] = {
        "worker_timeout": worker_timeout,
        "max_task_retries": max_task_retries,
        "on_worker_failure": on_worker_failure,
        "fault_plan": plan,
    }

    def wanted(name: str) -> bool:
        return not only or name in only

    def say(message: str) -> None:
        if log is not None:
            log(message)

    def measure(graph, label, workload, **kwargs):
        return _measure_size(
            graph,
            label,
            construction=construction,
            construction_workers=construction_workers,
            search=search,
            search_workers=search_workers,
            workload=workload,
            runtime_kwargs=runtime_kwargs,
            metrics=metrics,
            **kwargs,
        )

    workloads: List[Dict[str, Any]] = []

    if wanted("sparse-scaling"):
        sizes = SPARSE_SIZES_QUICK if quick else SPARSE_SIZES_FULL
        series = []
        for num_communities in sizes:
            say(f"sparse-scaling: communities={num_communities} ...")
            graph = sparse_scaling_graph(num_communities, seed=seed)
            series.append(
                measure(
                    graph,
                    f"communities={num_communities}",
                    "sparse-scaling",
                    run_basic_too=True,
                    mask_backend=mask_backend,
                )
            )
        workloads.append(
            {
                "workload": "sparse-scaling",
                "kind": "synthetic-community",
                "pool_size": SPARSE_POOL_SIZE,
                "community_size": SPARSE_COMMUNITY_SIZE,
                "series": series,
            }
        )

    scale = DATASET_SCALE_QUICK if quick else DATASET_SCALE_FULL
    for name in ("dblp", "dblp-trend", "usflight"):
        if not wanted(name):
            continue
        say(f"dataset analogue: {name} (scale={scale}) ...")
        graph = load_dataset(name, scale=scale, seed=seed)
        workloads.append(
            {
                "workload": name,
                "kind": "dataset-analogue",
                "scale": scale,
                "series": [
                    measure(
                        graph,
                        f"scale={scale}",
                        name,
                        run_basic_too=False,
                        mask_backend=mask_backend,
                    )
                ],
            }
        )

    for family, quick_sizes, full_sizes in (
        ("pokec-sparse", POKEC_SIZES_QUICK, POKEC_SIZES_FULL),
        ("pokec-xl", POKEC_XL_SIZES_QUICK, POKEC_XL_SIZES_FULL),
    ):
        if not wanted(family):
            continue
        sizes = quick_sizes if quick else full_sizes
        if not sizes:
            say(f"{family}: full-suite only, skipped under --quick")
            continue
        backend = _pokec_backend(mask_backend)
        series = []
        for num_communities in sizes:
            say(
                f"{family}: communities={num_communities} "
                f"(~{num_communities * SPARSE_COMMUNITY_SIZE} vertices, "
                f"mask_backend={backend}) ..."
            )
            graph = pokec_sparse_graph(num_communities, seed=seed)
            series.append(
                measure(
                    graph,
                    f"communities={num_communities}",
                    family,
                    run_basic_too=False,
                    mask_backend=backend,
                    pair_sources=("overlap",),
                )
            )
        workloads.append(
            {
                "workload": family,
                "kind": "synthetic-community",
                "pool_size": SPARSE_POOL_SIZE,
                "community_size": SPARSE_COMMUNITY_SIZE,
                "series": series,
            }
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "cspm-perf",
        "quick": quick,
        "seed": seed,
        "mask_backend": mask_backend,
        "construction": construction,
        "construction_workers": construction_workers,
        "search": search,
        "search_workers": search_workers,
        "worker_timeout": worker_timeout,
        "max_task_retries": max_task_retries,
        "on_worker_failure": on_worker_failure,
        "fault_plan": plan.to_dict() if plan is not None else None,
        "metrics": metrics,
        "workloads": workloads,
    }


def merge_into(
    existing: Dict[str, Any], fresh: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge a (possibly filtered) fresh run into an existing document.

    Workload entries present in ``fresh`` replace the same-named entries
    of ``existing`` in place; entries only in ``existing`` are kept (in
    their original order) so re-measuring one family does not discard
    the rest of ``BENCH_cspm.json``.  Top-level metadata comes from the
    fresh run.
    """
    fresh_by_name = {w["workload"]: w for w in fresh["workloads"]}
    merged: List[Dict[str, Any]] = []
    for workload in existing.get("workloads", []):
        merged.append(fresh_by_name.pop(workload["workload"], workload))
    merged.extend(fresh_by_name.values())
    document = dict(fresh)
    document["workloads"] = merged
    return document


def summarize(document: Dict[str, Any]) -> str:
    """A human-readable table of the measured trajectory."""

    def _ratio(value) -> float:
        return value if value is not None else float("nan")

    lines = [
        f"{'workload':<16}{'size':<16}{'|SL|':>7}{'pairs':>11}"
        f"{'seed red.':>10}{'partial x':>10}{'basic x':>9}"
        f"{'partial s':>10}{'build s':>9}{'peak Q':>8}{'skipped':>9}{'dirty':>7}"
        f"{'mask':>9}{'mask MB':>9}{'vs bigint':>10}"
    ]
    lines.append("-" * len(lines[0]))
    for workload in document["workloads"]:
        for entry in workload["series"]:
            partial = entry["runs"]["partial/overlap"]
            peak_bytes = partial.get("mask_peak_bytes")
            estimate = entry.get("bigint_mask_bytes_estimate")
            reduction = (
                estimate / peak_bytes
                if peak_bytes and estimate
                else float("nan")
            )
            lines.append(
                f"{workload['workload']:<16}{entry['label']:<16}"
                f"{entry['num_leafsets']:>7}{entry['possible_pairs']:>11}"
                f"{_ratio(entry.get('seeding_gain_reduction')):>10.2f}"
                f"{_ratio(entry.get('partial_wall_speedup')):>10.2f}"
                f"{_ratio(entry.get('basic_wall_speedup')):>9.2f}"
                f"{partial['wall_seconds']:>10.3f}"
                f"{_ratio(entry.get('construction_seconds')):>9.3f}"
                f"{partial['peak_queue_size']:>8}"
                f"{partial.get('refreshes_skipped', 0):>9}"
                f"{partial.get('dirty_revalidations', 0):>7}"
                f"{partial.get('mask_backend', '?'):>9}"
                f"{(peak_bytes or 0) / 1e6:>9.2f}"
                f"{reduction:>9.1f}x"
            )
    return "\n".join(lines)


#: Bounds-file keys that never produce failures; ``check_bounds``
#: skips constraint sets made only of these (see
#: :func:`construction_report`, which consumes them).
REPORT_ONLY_BOUNDS = frozenset({"max_construction_seconds"})


def check_bounds(
    document: Dict[str, Any], bounds: Dict[str, Any]
) -> List[str]:
    """Counter-based regression check; returns failure messages.

    ``bounds`` maps workload name -> series label -> constraints:

    ``max_initial_candidate_gains``
        Upper bound on the overlap run's seeding gain evaluations
        (structural: grows only if candidate generation regresses).
    ``min_seeding_gain_reduction``
        Lower bound on full/overlap seeding gains.
    ``max_total_gain_computations``
        Upper bound on the overlap run's total gain evaluations.
    ``min_refreshes_skipped``
        Lower bound on the lazy scope's skipped refreshes (structural:
        drops to zero if the bound-driven refresh stops deferring).
    ``max_dirty_revalidations``
        Upper bound on the lazy scope's queue-head revalidations.
    ``min_mask_memory_reduction``
        Lower bound on ``bigint_mask_bytes_estimate / mask_peak_bytes``
        of the overlap run — the chunked backends' raison d'être.  The
        estimates are analytic (machine-independent), so the ratio is
        as deterministic as the counters.
    ``require_mask_backend``
        Exact expected resolved backend name for the overlap run
        (guards the pokec family against silently falling back to
        bigint masks).
    ``max_construction_seconds``
        *Report-only*: construction wall-clock is machine-dependent, so
        this key never produces a failure here — it is read by
        :func:`construction_report`, which prints within/over lines
        alongside the recorded pre-columnar baseline ratio.
    """
    failures: List[str] = []
    by_name = {w["workload"]: w for w in document["workloads"]}
    for workload_name, per_label in bounds.items():
        if workload_name.startswith("__"):  # comment keys
            continue
        enforceable = any(
            any(key not in REPORT_ONLY_BOUNDS for key in constraints)
            for constraints in per_label.values()
        )
        workload = by_name.get(workload_name)
        if workload is None:
            if enforceable:
                failures.append(
                    f"workload {workload_name!r} missing from document"
                )
            # A section made only of report-only keys (e.g. pokec-xl
            # construction references) may legitimately be absent from
            # the quick flavour.
            continue
        by_label = {entry["label"]: entry for entry in workload["series"]}
        for label, constraints in per_label.items():
            if all(key in REPORT_ONLY_BOUNDS for key in constraints):
                # Nothing enforceable here (e.g. a full-suite-only
                # label carrying just a construction reference): the
                # quick flavour legitimately lacks the series.
                continue
            entry = by_label.get(label)
            if entry is None:
                failures.append(
                    f"{workload_name}: series {label!r} missing from document"
                )
                continue
            overlap = entry["runs"]["partial/overlap"]
            limit = constraints.get("max_initial_candidate_gains")
            if limit is not None and overlap["initial_candidate_gains"] > limit:
                failures.append(
                    f"{workload_name}/{label}: initial_candidate_gains "
                    f"{overlap['initial_candidate_gains']} > bound {limit}"
                )
            floor = constraints.get("min_seeding_gain_reduction")
            if floor is not None:
                reduction = entry.get("seeding_gain_reduction")
                if reduction is None:
                    # Overlap-only entries (pokec-sparse) have no full
                    # scan to compare against — a bound on them is a
                    # bounds-file mistake, reported, not a crash.
                    failures.append(
                        f"{workload_name}/{label}: seeding_gain_reduction "
                        f"not measured (overlap-only entry) but bounded "
                        f">= {floor}"
                    )
                elif reduction < floor:
                    failures.append(
                        f"{workload_name}/{label}: seeding_gain_reduction "
                        f"{reduction} < bound {floor}"
                    )
            limit = constraints.get("max_total_gain_computations")
            if limit is not None and overlap["total_gain_computations"] > limit:
                failures.append(
                    f"{workload_name}/{label}: total_gain_computations "
                    f"{overlap['total_gain_computations']} > bound {limit}"
                )
            floor = constraints.get("min_refreshes_skipped")
            if floor is not None and overlap.get("refreshes_skipped", 0) < floor:
                failures.append(
                    f"{workload_name}/{label}: refreshes_skipped "
                    f"{overlap.get('refreshes_skipped', 0)} < bound {floor}"
                )
            limit = constraints.get("max_dirty_revalidations")
            if limit is not None and overlap.get("dirty_revalidations", 0) > limit:
                failures.append(
                    f"{workload_name}/{label}: dirty_revalidations "
                    f"{overlap.get('dirty_revalidations', 0)} > bound {limit}"
                )
            floor = constraints.get("min_mask_memory_reduction")
            if floor is not None:
                estimate = entry.get("bigint_mask_bytes_estimate", 0)
                peak = overlap.get("mask_peak_bytes", 0)
                reduction = estimate / peak if peak else 0.0
                if reduction < floor:
                    failures.append(
                        f"{workload_name}/{label}: mask memory reduction "
                        f"{reduction:.2f}x (bigint estimate {estimate} / "
                        f"peak {peak}) < bound {floor}"
                    )
            expected = constraints.get("require_mask_backend")
            if expected is not None and overlap.get("mask_backend") != expected:
                failures.append(
                    f"{workload_name}/{label}: mask_backend "
                    f"{overlap.get('mask_backend')!r} != required {expected!r}"
                )
    return failures


def construction_report(
    document: Dict[str, Any], bounds: Dict[str, Any]
) -> List[str]:
    """Report-only construction wall-clock lines (never failures).

    For every ``max_construction_seconds`` entry in ``bounds`` whose
    workload/label exists in ``document``, emits one line comparing the
    measured ``construction_seconds`` against the reference value and —
    where the entry carries a recorded ``construction_baseline_seconds``
    — the speedup over the pre-columnar builder.  Wall-clock is never
    asserted (machines differ); regressions stay visible in the job
    log without flaking CI.
    """
    lines: List[str] = []
    by_name = {w["workload"]: w for w in document["workloads"]}
    for workload_name, per_label in bounds.items():
        if workload_name.startswith("__"):
            continue
        workload = by_name.get(workload_name)
        if workload is None:
            continue
        by_label = {entry["label"]: entry for entry in workload["series"]}
        for label, constraints in per_label.items():
            reference = constraints.get("max_construction_seconds")
            entry = by_label.get(label)
            if reference is None or entry is None:
                continue
            seconds = entry.get("construction_seconds")
            if seconds is None:
                continue
            status = (
                "within" if seconds <= reference else "OVER (report-only)"
            )
            line = (
                f"{workload_name}/{label}: construction {seconds:.3f}s "
                f"{status} reference {reference}s"
            )
            baseline = entry.get("construction_baseline_seconds")
            if baseline:
                line += (
                    f"; pre-columnar baseline {baseline}s "
                    f"({baseline / seconds:.2f}x)"
                )
            lines.append(line)
    return lines


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """The benchmark flags, shared by ``repro bench`` and the script."""
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes/scales (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--out",
        "--output",
        dest="out",
        default="BENCH_cspm.json",
        help="output path (default: BENCH_cspm.json in the cwd)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workload",
        action="append",
        dest="workloads",
        default=None,
        metavar="NAME",
        choices=WORKLOAD_NAMES,
        help="measure only this workload family (repeatable); existing "
        "entries of the output file for other families are kept",
    )
    parser.add_argument(
        "--mask-backend",
        dest="mask_backend",
        choices=MASK_BACKENDS,
        default="auto",
        help="position-mask representation for every workload "
        "(pokec-sparse/pokec-xl upgrade auto/bigint to chunked); "
        "counters are bit-exact across backends, so bounds apply "
        "unchanged",
    )
    parser.add_argument(
        "--construction",
        dest="construction",
        choices=CONSTRUCTIONS,
        default="serial",
        help="inverted-database build path for every workload; the "
        "partitioned path constructs the identical database, so "
        "counter bounds apply unchanged (the CI partitioned smoke's "
        "bit-exactness gate)",
    )
    parser.add_argument(
        "--construction-workers",
        dest="construction_workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --construction partitioned "
        "(default: one per CPU)",
    )
    parser.add_argument(
        "--search",
        dest="search",
        choices=SEARCHES,
        default="serial",
        help="CSPM-Partial execution for every workload; the component-"
        "sharded path stitches a bit-exact serial-equivalent trace, so "
        "counter bounds apply unchanged (the CI sharded smoke's gate)",
    )
    parser.add_argument(
        "--search-workers",
        dest="search_workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --search sharded "
        "(default: one per CPU)",
    )
    parser.add_argument(
        "--worker-timeout",
        dest="worker_timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task timeout for supervised worker pools (default: "
        "300s); a timed-out task counts as one failed attempt",
    )
    parser.add_argument(
        "--max-task-retries",
        dest="max_task_retries",
        type=int,
        default=2,
        metavar="N",
        help="pool re-submissions per task before the failure policy "
        "applies (default: 2)",
    )
    parser.add_argument(
        "--on-worker-failure",
        dest="on_worker_failure",
        choices=ON_WORKER_FAILURE,
        default="degrade",
        help="after retries are exhausted: 'degrade' re-runs the task "
        "in-process (bit-exact vs serial), 'raise' aborts the suite",
    )
    parser.add_argument(
        "--fault-plan",
        dest="fault_plan",
        default=None,
        metavar="JSON|FILE",
        help="deterministic fault-injection plan (inline JSON or a path "
        "to a JSON file) applied to every worker pool; counter bounds "
        "apply unchanged under any plan (the CI chaos smoke's gate)",
    )
    parser.add_argument(
        "--trace",
        dest="trace",
        default=None,
        metavar="FILE",
        help="record observability spans for every measured run — "
        "pipeline stages, worker pools, real worker-process lanes "
        "(repro.obs) — into one Chrome trace-event file (NDJSON when "
        "FILE ends with '.ndjson'); recording never changes counters",
    )
    parser.add_argument(
        "--metrics",
        dest="metrics",
        default=None,
        metavar="FILE",
        help="give every measured run a fresh metrics registry (schema "
        "v7: snapshots folded into the run entries) and collect them "
        "into FILE keyed by workload/label/case",
    )
    parser.add_argument(
        "--progress",
        dest="progress",
        action="store_true",
        help="stream throttled progress heartbeats for long phases to "
        "stderr",
    )
    parser.add_argument(
        "--list-workloads",
        "--list",
        dest="list_workloads",
        action="store_true",
        help="print the registered workload families with their "
        "quick/full member sizes and exit",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BOUNDS_JSON",
        help="assert counter bounds from this file; exit 1 on regression "
        "(max_construction_seconds entries are report-only)",
    )


def collect_metrics(document: Dict[str, Any]) -> Dict[str, Any]:
    """Per-run metric snapshots keyed ``workload/label/case``.

    The ``--metrics FILE`` document: a flat view over the snapshots
    already embedded in the run entries, so the file and the BENCH
    document can never disagree.
    """
    collected: Dict[str, Any] = {}
    for workload in document.get("workloads", []):
        for entry in workload["series"]:
            for case, run in entry["runs"].items():
                snapshot = run.get("metrics")
                if snapshot is not None:
                    key = f"{workload['workload']}/{entry['label']}/{case}"
                    collected[key] = snapshot
    return collected


def execute(args) -> int:
    """Run the suite per parsed ``args`` (see :func:`add_bench_arguments`)."""
    if getattr(args, "list_workloads", False):
        print(format_workload_catalog())
        return 0
    # The suite-level observation session: one tracer/progress stream
    # shared by every measured run (worker spans fold into its
    # timeline); per-run metric registries are created inside
    # _run_case so snapshots stay per-case.
    obs = Observation.create(
        trace=getattr(args, "trace", None) is not None,
        progress=bool(getattr(args, "progress", False)),
    )
    with activate(obs):
        fresh = run_suite(
            quick=args.quick,
            seed=args.seed,
            log=print,
            only=args.workloads,
            mask_backend=args.mask_backend,
            construction=args.construction,
            construction_workers=args.construction_workers,
            search=args.search,
            search_workers=args.search_workers,
            worker_timeout=getattr(args, "worker_timeout", None),
            max_task_retries=getattr(args, "max_task_retries", 2),
            on_worker_failure=getattr(args, "on_worker_failure", "degrade"),
            fault_plan=getattr(args, "fault_plan", None),
            metrics=getattr(args, "metrics", None) is not None,
        )
    if getattr(args, "trace", None):
        obs.tracer.write(args.trace)
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if getattr(args, "metrics", None):
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(collect_metrics(fresh), handle, indent=2)
            handle.write("\n")
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    document = fresh
    if args.workloads:
        try:
            with open(args.out) as handle:
                document = merge_into(json.load(handle), fresh)
        except (FileNotFoundError, json.JSONDecodeError):
            pass
    # Write-then-rename so an interrupted run never truncates an
    # existing document (the .tmp suffix is gitignored).  On any
    # failure mid-write the orphaned .tmp is removed, leaving both the
    # target document and the working tree untouched.
    temporary = f"{args.out}.tmp"
    try:
        with open(temporary, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
        os.replace(temporary, args.out)
    finally:
        with contextlib.suppress(FileNotFoundError):
            os.remove(temporary)
    print(f"\nwrote {args.out}")
    print(summarize(document))

    if args.check:
        with open(args.check) as handle:
            bounds = json.load(handle)
        if args.workloads:
            # Only gate what this invocation actually measured:
            # carried-over entries may predate the current schema (or
            # the current code), and failing on them would blame a
            # family that was never re-run.
            bounds = {
                name: constraints
                for name, constraints in bounds.items()
                if name.startswith("__") or name in args.workloads
            }
        reports = construction_report(fresh, bounds)
        if reports:
            print("\nconstruction wall-clock (report-only):")
            for line in reports:
                print(f"  {line}")
        failures = check_bounds(fresh, bounds)
        if failures:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\ncounter bounds OK ({args.check})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_suite",
        description="CSPM perf suite: emit the BENCH_cspm.json trajectory",
    )
    add_bench_arguments(parser)
    return execute(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
