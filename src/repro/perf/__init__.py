"""Performance measurement: the ``BENCH_cspm.json`` perf trajectory.

:mod:`repro.perf.suite` runs the Fig. 5 / Table III style synthetic
workloads across sizes, comparing overlap-driven candidate generation
against the quadratic full scan, and records wall-clock plus the
counter series (``initial_candidate_gains``, ``gains_computed``,
``peak_queue_size``, and the lazy-refresh counters
``refreshes_skipped``/``dirty_revalidations``) that make regressions
assertable without flaky wall-clock thresholds.

Entry points: ``repro bench`` (CLI) and ``benchmarks/perf_suite.py``
(standalone script; what CI's perf-smoke job runs).  Both accept
``--workload <name>`` to re-measure a single family into an existing
``BENCH_cspm.json`` (other entries are preserved) and ``--output`` as
an alias of ``--out``.
"""

from repro.perf.suite import check_bounds, merge_into, run_suite

__all__ = ["check_bounds", "merge_into", "run_suite"]
