"""Performance measurement: the ``BENCH_cspm.json`` perf trajectory.

:mod:`repro.perf.suite` runs the Fig. 5 / Table III style synthetic
workloads across sizes, comparing overlap-driven candidate generation
against the quadratic full scan, and records wall-clock plus the
counter series (``initial_candidate_gains``, ``gains_computed``,
``peak_queue_size``) that make regressions assertable without flaky
wall-clock thresholds.

Entry points: ``repro bench`` (CLI) and ``benchmarks/perf_suite.py``
(standalone script; what CI's perf-smoke job runs).
"""

from repro.perf.suite import check_bounds, run_suite

__all__ = ["check_bounds", "run_suite"]
