"""Core alarm datatypes."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AlarmEvent:
    """One triggered alarm: which device raised what, in which window.

    Time is discretised into correlation windows (the paper's systems
    correlate alarms that co-occur within a short window).
    """

    window: int
    device: int
    alarm_type: str


@dataclass(frozen=True)
class PairRule:
    """A directed pair rule ``cause -> derivative``.

    The AABD library stores star-shaped rules; for comparison with
    ACOR (which mines pairs) they are decomposed into these pairs
    (paper, Section VI-D).
    """

    cause: str
    derivative: str

    def __str__(self) -> str:
        return f"{self.cause} -> {self.derivative}"
