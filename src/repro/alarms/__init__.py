"""Telecom alarm correlation analysis (paper, Section VI-D / Fig. 8).

The paper's alarm feed (6M alarms from a metropolitan network, with an
AABD rule library of 11 rules decomposed into 121 pair rules) is
proprietary, so this package provides a faithful synthetic substitute:

* :mod:`repro.alarms.rules` — star-shaped cause -> derivative rule
  libraries with pair-rule decomposition;
* :mod:`repro.alarms.generator` — a device-topology simulator that
  plants a rule library and propagates alarms across links with noise;
* :mod:`repro.alarms.acor` — the ACOR pairwise-correlation baseline;
* :mod:`repro.alarms.analysis` — CSPM rule extraction and the
  coverage-ratio evaluation of Fig. 8.
"""

from repro.alarms.acor import acor_rank_pairs
from repro.alarms.analysis import coverage_curve, cspm_rank_pairs
from repro.alarms.generator import AlarmSimulation, simulate_alarms
from repro.alarms.rules import AlarmRule, RuleLibrary, default_rule_library
from repro.alarms.types import AlarmEvent, PairRule

__all__ = [
    "AlarmEvent",
    "AlarmRule",
    "AlarmSimulation",
    "PairRule",
    "RuleLibrary",
    "acor_rank_pairs",
    "coverage_curve",
    "cspm_rank_pairs",
    "default_rule_library",
    "simulate_alarms",
]
