"""Synthetic telecom alarm feed with a planted rule library.

Substitutes the paper's proprietary alarm dataset (6M alarms, 300
types, collected over 5 days in a metropolitan network).  The simulator

1. builds a device topology (a connected random network);
2. in each correlation window, fires root-cause alarms at random
   devices according to the planted rule library;
3. propagates each cause's derivative alarms onto the same device or a
   direct neighbour (telecom faults cascade along links);
4. sprinkles noise alarms uncorrelated with any rule.

The resulting event log is converted into the paper's data model — a
dynamic attributed graph, represented as the disjoint union of one
attributed topology copy per window, with each device's attribute set
holding the alarm types it raised in that window.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.alarms.rules import RuleLibrary
from repro.alarms.types import AlarmEvent
from repro.errors import DatasetError
from repro.graphs.attributed_graph import AttributedGraph


@dataclass
class AlarmSimulation:
    """The output of :func:`simulate_alarms`."""

    events: List[AlarmEvent]
    topology: Dict[int, Set[int]]
    library: RuleLibrary
    num_windows: int
    noise_types: Tuple[str, ...] = ()

    @property
    def num_events(self) -> int:
        return len(self.events)

    def alarm_types(self) -> List[str]:
        return sorted({event.alarm_type for event in self.events})

    def to_attributed_graph(self) -> AttributedGraph:
        """The dynamic attributed graph as a disjoint union of windows.

        Vertex ``(window, device)`` carries the set of alarm types the
        device raised during the window; edges replicate the topology
        inside each window.  Windows without alarms are skipped.
        """
        by_window: Dict[int, Dict[int, Set[str]]] = {}
        for event in self.events:
            by_window.setdefault(event.window, {}).setdefault(
                event.device, set()
            ).add(event.alarm_type)
        graph = AttributedGraph()
        for window, device_alarms in sorted(by_window.items()):
            active = sorted(device_alarms)
            for device in active:
                vertex = (window, device)
                graph.add_vertex(vertex)
                graph.set_attributes(vertex, device_alarms[device])
            for device in active:
                for neighbour in self.topology.get(device, ()):
                    if neighbour in device_alarms:
                        graph.add_edge((window, device), (window, neighbour))
        return graph


def _random_topology(
    num_devices: int, avg_degree: float, rng: random.Random
) -> Dict[int, Set[int]]:
    adjacency: Dict[int, Set[int]] = {d: set() for d in range(num_devices)}
    order = list(range(num_devices))
    rng.shuffle(order)
    for i in range(1, num_devices):
        u, v = order[i], order[rng.randrange(i)]
        adjacency[u].add(v)
        adjacency[v].add(u)
    extra = int(num_devices * max(avg_degree - 2.0, 0.0) / 2)
    for _ in range(extra):
        u = rng.randrange(num_devices)
        v = rng.randrange(num_devices)
        if u != v:
            adjacency[u].add(v)
            adjacency[v].add(u)
    return adjacency


def simulate_alarms(
    library: RuleLibrary,
    num_devices: int = 200,
    num_windows: int = 400,
    causes_per_window: float = 2.0,
    propagation: float = 0.8,
    neighbour_fraction: float = 0.6,
    num_noise_types: int = 30,
    noise_rate: float = 1.5,
    derivative_flap_rate: float = 0.0,
    cascade_probability: float = 0.0,
    window_split_probability: float = 0.0,
    avg_degree: float = 4.0,
    seed: int = 0,
) -> AlarmSimulation:
    """Run the alarm simulator.

    Parameters
    ----------
    causes_per_window:
        Expected number of root-cause firings per window.
    propagation:
        Probability that each derivative of a fired cause is raised.
    neighbour_fraction:
        Probability that a raised derivative lands on a neighbouring
        device rather than the faulty device itself.
    num_noise_types / noise_rate:
        Uncorrelated alarm types and their expected firings per window.
    derivative_flap_rate:
        Expected number of *spontaneous* derivative firings per window
        (alarm flapping).  Real derivative alarms (packet loss, BER
        spikes...) also trigger without their library cause; this is
        what separates CSPM's conditional-entropy ranking — conditioned
        on cause positions, hence robust to a derivative's base rate —
        from ACOR's per-pair co-occurrence statistics.
    cascade_probability:
        Probability that a fired cause triggers a *second*, unrelated
        cause on a neighbouring device (fault storms).  Cascades create
        genuine cross-rule correlations that are absent from the rule
        library, diluting any per-pair ranking.
    window_split_probability:
        Probability that a derivative is delayed into the *next*
        correlation window (fault propagation takes time; fixed window
        boundaries split cause from effect in real feeds).
    """
    if num_devices < 2:
        raise DatasetError("need at least two devices")
    if num_windows < 1:
        raise DatasetError("need at least one window")
    rng = random.Random(seed)
    topology = _random_topology(num_devices, avg_degree, rng)
    noise_types = tuple(f"Noise_{i}" for i in range(num_noise_types))
    events: List[AlarmEvent] = []

    all_derivatives = [
        derivative for rule in library.rules for derivative in rule.derivatives
    ]
    for window in range(num_windows):
        window_devices: List[int] = []
        num_causes = _poisson_like(causes_per_window, rng)
        firings = []
        for _ in range(num_causes):
            firings.append((rng.choice(library.rules), rng.randrange(num_devices)))
        index = 0
        while index < len(firings):
            rule, device = firings[index]
            index += 1
            events.append(AlarmEvent(window, device, rule.cause))
            window_devices.append(device)
            neighbours = sorted(topology[device])
            for derivative in rule.derivatives:
                if rng.random() >= propagation:
                    continue
                if neighbours and rng.random() < neighbour_fraction:
                    target = rng.choice(neighbours)
                else:
                    target = device
                target_window = window
                if (
                    rng.random() < window_split_probability
                    and window + 1 < num_windows
                ):
                    target_window = window + 1
                events.append(AlarmEvent(target_window, target, derivative))
                if target_window == window:
                    window_devices.append(target)
            if neighbours and rng.random() < cascade_probability:
                # Fault storm: an unrelated cause erupts next door.
                firings.append((rng.choice(library.rules), rng.choice(neighbours)))
        num_noise = _poisson_like(noise_rate, rng)
        for _ in range(num_noise):
            device = rng.randrange(num_devices)
            events.append(AlarmEvent(window, device, rng.choice(noise_types)))
            window_devices.append(device)
        if derivative_flap_rate > 0:
            num_flaps = _poisson_like(derivative_flap_rate, rng)
            for _ in range(num_flaps):
                # Alarm storms cluster: a flapping derivative tends to
                # appear next to devices that are already alarming.
                if window_devices and rng.random() < 0.8:
                    anchor = rng.choice(window_devices)
                    candidates = sorted(topology[anchor]) or [anchor]
                    device = rng.choice(candidates)
                else:
                    device = rng.randrange(num_devices)
                events.append(
                    AlarmEvent(window, device, rng.choice(all_derivatives))
                )

    return AlarmSimulation(
        events=events,
        topology=topology,
        library=library,
        num_windows=num_windows,
        noise_types=noise_types,
    )


def _poisson_like(mean: float, rng: random.Random) -> int:
    """A small-mean Poisson sampler (Knuth's method)."""
    import math

    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
