"""Star-shaped alarm rule libraries (the AABD analogue).

The paper's ground truth is the rule library of the deployed AABD
system: 11 rules of the form *cause alarm -> set of derivative alarms*,
decomposed into 121 pair rules for comparison with ACOR.
:func:`default_rule_library` builds a synthetic library with exactly
that shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.alarms.types import PairRule
from repro.errors import DatasetError


@dataclass(frozen=True)
class AlarmRule:
    """One star-shaped rule: a cause alarm and its derivative alarms."""

    cause: str
    derivatives: Tuple[str, ...]

    def pair_rules(self) -> List[PairRule]:
        return [PairRule(self.cause, derivative) for derivative in self.derivatives]

    def __str__(self) -> str:
        return f"({self.cause}, {{{', '.join(self.derivatives)}}})"


@dataclass
class RuleLibrary:
    """A set of star rules plus the derived pair-rule ground truth."""

    rules: List[AlarmRule]

    def pair_rules(self) -> List[PairRule]:
        pairs: List[PairRule] = []
        for rule in self.rules:
            pairs.extend(rule.pair_rules())
        return pairs

    @property
    def num_pair_rules(self) -> int:
        return len(self.pair_rules())

    def alarm_types(self) -> List[str]:
        types = set()
        for rule in self.rules:
            types.add(rule.cause)
            types.update(rule.derivatives)
        return sorted(types)


_CAUSE_NAMES = [
    "Low_signal", "Link_down", "Power_fail", "Fiber_cut", "Clock_loss",
    "Board_fault", "Temp_high", "Config_error", "Sync_loss", "Radio_fail",
    "License_expired",
]

_DERIVATIVE_STEMS = [
    "Link_degrader", "Microwave_stripping", "Packet_loss", "BER_exceed",
    "Service_down", "Path_switch", "LAG_degrade", "Port_down",
    "Protection_switch", "Latency_high", "Jitter_high", "Frame_loss",
]


def default_rule_library(
    num_rules: int = 11,
    total_pairs: int = 121,
    seed: int = 0,
) -> RuleLibrary:
    """A synthetic AABD-style library.

    ``num_rules`` star rules whose derivative counts sum to
    ``total_pairs`` (the paper: 11 rules -> 121 pair rules).  Every
    derivative alarm name is unique to its rule so the ground truth is
    unambiguous.
    """
    if num_rules < 1:
        raise DatasetError("need at least one rule")
    if total_pairs < num_rules:
        raise DatasetError("total_pairs must be >= num_rules")
    rng = random.Random(seed)
    # Split total_pairs into num_rules positive counts.
    counts = [1] * num_rules
    for _ in range(total_pairs - num_rules):
        counts[rng.randrange(num_rules)] += 1
    rules = []
    for index in range(num_rules):
        cause = _CAUSE_NAMES[index % len(_CAUSE_NAMES)]
        if index >= len(_CAUSE_NAMES):
            cause = f"{cause}_{index}"
        derivatives = tuple(
            f"{_DERIVATIVE_STEMS[i % len(_DERIVATIVE_STEMS)]}_{index}_{i}"
            for i in range(counts[index])
        )
        rules.append(AlarmRule(cause=cause, derivatives=derivatives))
    return RuleLibrary(rules=rules)
