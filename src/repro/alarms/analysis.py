"""CSPM-based alarm rule extraction and the Fig. 8 coverage metric.

CSPM mines a-stars from the dynamic attributed alarm graph; the core
values serve as cause alarms and the leaf values as derivatives
(Section VI-D).  For comparison with ACOR's pairwise rules, each
a-star ``(Sc, SL)`` is split into the pairs ``{(c, l) | c in Sc,
l in SL}`` while keeping the a-star's ranking score — exactly the
protocol the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.alarms.generator import AlarmSimulation
from repro.alarms.types import PairRule
from repro.config import CSPMConfig
from repro.core.miner import CSPM, CSPMResult


def cspm_rank_pairs(
    simulation: AlarmSimulation,
    result: CSPMResult = None,
    max_pairs: int = None,
    min_frequency: int = 2,
    config: Optional[CSPMConfig] = None,
) -> List[Tuple[PairRule, float]]:
    """Ranked directed pair rules extracted from mined a-stars.

    ``result`` may be supplied to reuse an existing mining run;
    otherwise CSPM is run on the simulation's attributed graph under
    ``config`` (default: CSPM-Partial with the paper's settings).
    Pairs inherit the (ascending) code length of the best a-star that
    produced them; the returned score is ``-code_length`` so that
    higher means better for both algorithms.

    ``min_frequency`` drops one-off a-stars (``fL < 2`` by default):
    the paper's own interestingness conditions require an a-star "to be
    frequent to some extent" (Section IV-C), and a single co-occurrence
    has code length 0 regardless of how accidental it is.
    """
    if result is None:
        result = CSPM(config=config).fit(simulation.to_attributed_graph())
    best: Dict[PairRule, float] = {}
    for star in result.astars:  # already sorted by ascending code length
        if star.frequency < min_frequency:
            continue
        for cause in star.coreset:
            for derivative in star.leafset:
                if cause == derivative:
                    continue
                pair = PairRule(str(cause), str(derivative))
                if pair not in best:
                    best[pair] = -star.code_length
    ranked = sorted(
        best.items(), key=lambda kv: (-kv[1], kv[0].cause, kv[0].derivative)
    )
    if max_pairs is not None:
        ranked = ranked[:max_pairs]
    return ranked


def coverage_curve(
    ranked_pairs: Sequence[Tuple[PairRule, float]],
    valid_rules: Sequence[PairRule],
    top_ks: Sequence[int],
) -> List[float]:
    """``coverage = |A & top-K| / |A|`` for each K (paper, Section VI-D).

    ``A`` is the set of valid (planted / AABD) pair rules; the curve
    rises towards 1.0 as K grows and rises faster for a better
    ranking.
    """
    valid = set(valid_rules)
    if not valid:
        raise ValueError("valid_rules must be non-empty")
    found = [pair for pair, _score in ranked_pairs]
    curve = []
    for k in top_ks:
        top = set(found[: max(0, k)])
        curve.append(len(valid & top) / len(valid))
    return curve


def area_under_coverage(curve: Sequence[float]) -> float:
    """Mean coverage over the evaluated K grid (a scalar summary)."""
    if not curve:
        return 0.0
    return float(sum(curve) / len(curve))
