"""ACOR: pairwise alarm-correlation mining (the Fig. 8 comparator).

ACOR (Fournier-Viger et al., "Discovering alarm correlation rules for
network fault management") models alarm data as a dynamic attributed
graph and scores each *pair* of alarm types by a tailored correlation
measure over co-occurrences on the same or adjacent devices within a
time window; the measure's asymmetry decides which alarm of the pair
is the cause.  The original implementation is closed; this
reimplementation follows that description.

The property the paper credits for CSPM's better ranking — ACOR
evaluates every pair *separately*, with no global model — is inherent
to this formulation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set, Tuple

from repro.alarms.generator import AlarmSimulation
from repro.alarms.types import PairRule


def _window_occurrences(
    simulation: AlarmSimulation,
) -> Dict[int, Dict[str, Set[int]]]:
    """window -> alarm type -> devices that raised it."""
    occurrences: Dict[int, Dict[str, Set[int]]] = {}
    for event in simulation.events:
        occurrences.setdefault(event.window, {}).setdefault(
            event.alarm_type, set()
        ).add(event.device)
    return occurrences


def acor_rank_pairs(
    simulation: AlarmSimulation,
    max_pairs: int = None,
) -> List[Tuple[PairRule, float]]:
    """Ranked directed pair rules with their correlation scores.

    For alarm types ``a`` and ``b``, co-occurrence counts windows in
    which some device raising ``a`` equals or neighbours a device
    raising ``b``.  The symmetric correlation is the Jaccard ratio
    ``co / (n_a + n_b - co)`` over window occurrences; the direction is
    chosen by confidence asymmetry: derivative alarms fire only in a
    subset of their cause's windows, so the *more frequent* alarm of a
    correlated pair is named the cause — mirroring ACOR's per-pair
    importance assignment.
    """
    occurrences = _window_occurrences(simulation)
    topology = simulation.topology
    window_counts: Counter = Counter()
    co_counts: Counter = Counter()

    for _window, by_type in occurrences.items():
        types = sorted(by_type)
        for alarm in types:
            window_counts[alarm] += 1
        for i, a in enumerate(types):
            devices_a = by_type[a]
            near_a: Set[int] = set()
            for device in devices_a:
                near_a.add(device)
                near_a |= topology.get(device, set())
            for b in types[i + 1 :]:
                if by_type[b] & near_a:
                    co_counts[(a, b)] += 1

    ranked: List[Tuple[PairRule, float]] = []
    for (a, b), co in co_counts.items():
        n_a = window_counts[a]
        n_b = window_counts[b]
        correlation = co / (n_a + n_b - co)
        if n_a >= n_b:
            cause, derivative = a, b
        else:
            cause, derivative = b, a
        ranked.append((PairRule(cause, derivative), correlation))
        # The secondary orientation is also emitted, discounted: a
        # pairwise miner cannot rule it out, it just trusts it less.
        ranked.append((PairRule(derivative, cause), correlation * 0.5))
    ranked.sort(key=lambda item: (-item[1], item[0].cause, item[0].derivative))
    if max_pairs is not None:
        ranked = ranked[:max_pairs]
    return ranked
