"""Resilience rules for the supervised parallel runtime.

The supervisor (``runtime/supervisor.py``) owns failure handling for
every worker pool: timeouts, bounded retries, and bit-exact in-process
degradation.  Two contracts keep that ownership real (see
docs/INVARIANTS.md, family 5):

* a future/async-result harvested from a pool must always carry a
  timeout — an argument-less ``.result()`` or ``.get()`` blocks the
  parent forever on a hung worker, which is exactly the failure mode
  the supervisor exists to bound;
* ``BaseException`` (and the bare ``except:`` that implies it) may be
  caught only at the supervisor boundary.  Anywhere else, a handler
  that wide swallows ``KeyboardInterrupt``/``SystemExit`` and hides
  worker crashes from the retry accounting, so the failure policy
  never fires.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    SourceModule,
    register,
)

#: Methods that harvest a cross-process result and block until it
#: arrives: ``Future.result`` and ``AsyncResult.get``.
HARVEST_METHODS = frozenset({"result", "get"})

#: Path fragments of the modules that talk to worker pools.  The scope
#: is deliberately narrow — ``dict.get()``-style lookups elsewhere are
#: not harvests — and every module here must also import a pool API
#: before the rule fires.
POOL_MODULE_DIRS: Tuple[str, ...] = ("core/", "runtime/", "batch.py")


def _imports_pool_api(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in ("multiprocessing", "concurrent"):
                    return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in (
                "multiprocessing",
                "concurrent",
            ):
                return True
    return False


def _in_pool_scope(module: SourceModule) -> bool:
    return any(fragment in module.path for fragment in POOL_MODULE_DIRS)


@register
class HarvestTimeoutRule(Rule):
    """RES001: pool result harvests must carry a timeout.

    Flags argument-less ``.result()`` / ``.get()`` calls in the worker-
    pool modules (``core/``, ``runtime/``, ``batch.py``) when the module
    imports ``concurrent``/``multiprocessing``.  Without a timeout the
    parent blocks forever on a hung worker — the supervisor's per-task
    ``worker_timeout`` only bounds anything because every harvest goes
    through ``future.result(timeout=...)``.  A positional deadline or a
    ``timeout=`` keyword both satisfy the rule; ``dict.get(key)``-style
    calls pass because they carry an argument.
    See docs/INVARIANTS.md (family 5).
    """

    id = "RES001"
    title = "pool result harvested without a timeout"

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        if not _in_pool_scope(module) or not _imports_pool_api(module.tree):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in HARVEST_METHODS
                and not node.args
                and not any(
                    keyword.arg == "timeout" for keyword in node.keywords
                )
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f".{func.attr}() without a timeout blocks forever "
                        f"on a hung worker; pass timeout= so the "
                        f"supervisor's deadline applies",
                    )
                )
        return findings


@register
class BroadExceptRule(Rule):
    """RES002: ``BaseException`` is caught only at the supervisor
    boundary.

    Flags bare ``except:`` handlers and handlers naming
    ``BaseException`` (alone or in a tuple) anywhere in the source
    tree.  A handler that wide swallows ``KeyboardInterrupt`` and
    ``SystemExit`` and hides worker failures from the supervisor's
    retry accounting, so the configured failure policy never runs.
    Handlers whose last statement is a bare ``raise`` (cleanup-then-
    re-raise) are exempt; the supervisor's own boundary handler —
    which re-raises interrupts but converts worker errors into retry
    charges — carries ``# repro: noqa[RES002]``.
    See docs/INVARIANTS.md (family 5).
    """

    id = "RES002"
    title = "bare/BaseException handler outside the supervisor"

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._too_broad(node.type):
                continue
            if self._reraises(node):
                continue
            what = "bare except:" if node.type is None else "except BaseException"
            findings.append(
                self.finding(
                    module,
                    node,
                    f"{what} swallows KeyboardInterrupt/SystemExit and "
                    f"hides worker failures from the supervisor; catch "
                    f"Exception (or narrower), or re-raise",
                )
            )
        return findings

    @staticmethod
    def _too_broad(annotation) -> bool:
        if annotation is None:
            return True
        names = []
        if isinstance(annotation, ast.Tuple):
            names = list(annotation.elts)
        else:
            names = [annotation]
        for name in names:
            if isinstance(name, ast.Name) and name.id == "BaseException":
                return True
            if isinstance(name, ast.Attribute) and name.attr == "BaseException":
                return True
        return False

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        if not handler.body:
            return False
        last = handler.body[-1]
        return isinstance(last, ast.Raise) and last.exc is None
