"""Fork/pickle-safety rules for the multiprocessing paths.

The partitioned builder (``core/construction.py``) and the batch runner
(``batch.py``) fan work out over ``ProcessPoolExecutor``.  Two
contracts keep that safe (see docs/INVARIANTS.md, family 3):

* every callable handed to a pool API must be resolvable by qualified
  name in the worker process — a module-level function.  Lambdas and
  closures pickle by reference to a scope the worker does not have and
  fail only at runtime, on the non-fork platforms CI does not cover;
* the payloads workers return (the ``PartitionResult`` columns) must be
  built from plainly picklable types, because the reverse pickle is the
  partitioned path's dominant cost and an unpicklable column fails
  after the build work is already spent.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    SourceModule,
    dotted_name,
    module_level_callables,
    register,
    root_name,
)

#: Constructors whose instances schedule work in other processes (the
#: thread variants are included deliberately: the same no-closure rule
#: keeps an executor swappable between thread and process backends).
POOL_CONSTRUCTORS = frozenset(
    {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool", "ThreadPool"}
)

#: Executor/pool methods whose first argument crosses the process
#: boundary as a pickled callable.
POOL_SUBMIT_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "submit", "apply", "apply_async"}
)

#: Constructor keywords that carry a callable into a worker process.
CALLABLE_KEYWORDS = frozenset({"initializer", "target"})

#: Identifiers allowed in worker-payload dataclass annotations in
#: core/construction.py: containers, scalars, and the module's own
#: key/mask aliases — everything that pickles by value.
PAYLOAD_ALLOWED_TYPES = frozenset(
    {
        "List",
        "Tuple",
        "Dict",
        "Set",
        "FrozenSet",
        "Mapping",
        "Sequence",
        "Optional",
        "Union",
        "Any",
        "int",
        "float",
        "str",
        "bool",
        "bytes",
        "typing",
        "Value",
        "Vertex",
        "LeafKey",
        "CoreKey",
        "RowKey",
        "Mask",
        "PlanItem",
    }
)


def _module_imports_multiprocessing(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in ("multiprocessing", "concurrent"):
                    return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in (
                "multiprocessing",
                "concurrent",
            ):
                return True
    return False


def _pool_bound_names(tree: ast.Module) -> Set[str]:
    """Names bound to pool/executor instances anywhere in the module
    (``with ProcessPoolExecutor(...) as pool`` / ``pool = Pool(...)``)."""
    names: Set[str] = set()

    def constructs_pool(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] in POOL_CONSTRUCTORS

    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if constructs_pool(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
        elif isinstance(node, ast.Assign) and constructs_pool(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _nested_def_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined below module level (closure hazards)."""
    top_level = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name not in top_level
    }


@register
class PoolCallableRule(Rule):
    """FRK001: callables handed to pool/executor APIs must be
    module-level functions.

    Checks the first argument of ``pool.map``/``submit``/``apply_async``
    (on names bound from a pool constructor) and the ``initializer=``/
    ``target=`` keywords of the constructors themselves.  A lambda, a
    function defined inside another function (a closure), or a name
    that does not resolve to a module-level ``def``/import fails:
    pickle serialises callables by qualified name, so anything without
    one dies in the worker — but only on spawn-start platforms, i.e.
    not on the Linux CI runners.  ``functools.partial`` is followed
    into its first argument.  See docs/INVARIANTS.md (family 3).
    """

    id = "FRK001"
    title = "non-module-level callable passed to a pool/executor API"

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        if not _module_imports_multiprocessing(module.tree):
            return ()
        module_names = module_level_callables(module.tree)
        pool_names = _pool_bound_names(module.tree)
        nested_defs = _nested_def_names(module.tree)
        findings: List[Finding] = []

        def check_callable(node: ast.AST, where: str) -> None:
            problem = self._callable_problem(node, module_names, nested_defs)
            if problem is not None:
                findings.append(
                    self.finding(module, node, f"{where}: {problem}")
                )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in POOL_SUBMIT_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in pool_names
                and node.args
            ):
                check_callable(
                    node.args[0], f"{func.value.id}.{func.attr}() callable"
                )
            name = dotted_name(func)
            if name is not None and name.split(".")[-1] in POOL_CONSTRUCTORS:
                for keyword in node.keywords:
                    if keyword.arg in CALLABLE_KEYWORDS:
                        check_callable(
                            keyword.value, f"{keyword.arg}= callable"
                        )
        return findings

    def _callable_problem(
        self,
        node: ast.AST,
        module_names: Set[str],
        nested_defs: Set[str],
    ) -> Optional[str]:
        if isinstance(node, ast.Lambda):
            return (
                "lambda cannot be pickled to a worker process; define a "
                "module-level function"
            )
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "partial":
                if node.args:
                    return self._callable_problem(
                        node.args[0], module_names, nested_defs
                    )
                return None
            return (
                "callable is the result of a call expression; pass a "
                "module-level function"
            )
        if isinstance(node, ast.Name):
            if node.id in module_names:
                return None
            if node.id in nested_defs:
                return (
                    f"{node.id!r} is a nested function (a closure); "
                    "pickle serialises callables by qualified name, so "
                    "workers cannot import it — move it to module level"
                )
            return (
                f"{node.id!r} does not resolve to a module-level "
                "callable in this module"
            )
        if isinstance(node, ast.Attribute):
            root = root_name(node)
            if root is not None and root in module_names:
                return None
            return (
                "attribute callable does not resolve to a module-level "
                "name; bound methods ride on their instance's pickle — "
                "prefer a module-level function"
            )
        return "callable expression is not statically picklable"


@register
class WorkerPayloadRule(Rule):
    """FRK002: worker-payload dataclasses in the multiprocessing
    modules restrict their fields to plainly picklable column types.

    Every ``@dataclass`` in the partitioned-construction and sharded-
    search modules is a cross-process payload (today:
    ``PartitionResult`` and ``ComponentRun``).  Field annotations may
    only use the allowlisted container/scalar names and the module's
    own key/mask aliases — no callables, no live database or graph
    types, nothing that drags un-picklable or megabyte-per-entry state
    through the result pickle.  See docs/INVARIANTS.md (family 3).
    """

    id = "FRK002"
    title = "non-allowlisted type in a worker-payload dataclass"

    #: Modules whose dataclasses are cross-process payloads.
    WORKER_MODULES = ("core/construction.py", "core/search_shard.py")

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        if not any(module.path_endswith(path) for path in self.WORKER_MODULES):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                (isinstance(dec, ast.Name) and dec.id == "dataclass")
                or (isinstance(dec, ast.Attribute) and dec.attr == "dataclass")
                or (
                    isinstance(dec, ast.Call)
                    and dotted_name(dec.func) is not None
                    and dotted_name(dec.func).split(".")[-1] == "dataclass"
                )
                for dec in node.decorator_list
            ):
                continue
            for item in node.body:
                if not isinstance(item, ast.AnnAssign):
                    continue
                for identifier in self._annotation_identifiers(
                    item.annotation
                ):
                    if identifier not in PAYLOAD_ALLOWED_TYPES:
                        findings.append(
                            self.finding(
                                module,
                                item,
                                f"worker-payload field annotation uses "
                                f"{identifier!r}, not in the picklable-"
                                f"column allowlist",
                            )
                        )
        return findings

    @staticmethod
    def _annotation_identifiers(annotation: ast.AST):
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name):
                yield node.id
            elif isinstance(node, ast.Attribute):
                yield node.attr
