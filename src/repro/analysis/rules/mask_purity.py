"""Mask-backend protocol rules: full surface, pure read ops.

``InvertedDatabase.copy`` shares mask *values* between copies, and the
lazy refresh keeps masks cached across merges — both are sound only
because every :class:`~repro.core.masks.base.MaskBackend` operation
except the construction-time setters (``make``/``make_batch``/
``set_bit``/``set_bits_bulk``) is pure: it never mutates ``self`` or an
argument.  These rules check that contract statically for every class
that subclasses ``MaskBackend`` (see docs/INVARIANTS.md, family 2).

The protocol *specification* is derived from the ``MaskBackend`` class
definition itself at lint time (methods whose body raises
``NotImplementedError`` are required; their positional arity is the
contract), so the rules track the protocol as it evolves instead of
carrying a copy that can drift.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    SourceModule,
    register,
    root_name,
)

BACKEND_BASE_CLASS = "MaskBackend"

#: The construction-time ops that MAY mutate (owner-exclusive masks
#: only, per the protocol docstring); everything else must be pure.
CONSTRUCTION_OPS = frozenset(
    {"make", "make_batch", "set_bit", "set_bits_bulk"}
)

#: Method names that mutate their receiver (list/set/dict/ndarray).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "fill",
        "put",
        "resize",
        "itemset",
    }
)

#: Call attrs that mutate their *first argument* (numpy ufunc ``.at``
#: scatters, ``operator.setitem``).
ARGUMENT_MUTATORS = frozenset({"at", "setitem"})


def _is_backend_subclass(node: ast.ClassDef) -> bool:
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id == BACKEND_BASE_CLASS:
            return True
        if isinstance(base, ast.Attribute) and base.attr == BACKEND_BASE_CLASS:
            return True
    return False


def _methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in node.body
        if isinstance(item, ast.FunctionDef)
    }


def _raises_not_implemented(function: ast.FunctionDef) -> bool:
    for statement in function.body:
        if isinstance(statement, ast.Raise):
            exc = statement.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id == "NotImplementedError":
                return True
    return False


def _positional_arity(function: ast.FunctionDef) -> Optional[int]:
    """Positional parameter count, or None when *args makes it open."""
    if function.args.vararg is not None:
        return None
    return len(function.args.posonlyargs) + len(function.args.args)


def _protocol_spec(base: ast.ClassDef) -> Dict[str, Tuple[bool, Optional[int]]]:
    """name -> (required, arity) for every public protocol method."""
    spec: Dict[str, Tuple[bool, Optional[int]]] = {}
    for name, function in _methods(base).items():
        if name.startswith("_"):
            continue
        spec[name] = (_raises_not_implemented(function), _positional_arity(function))
    return spec


def _backend_classes(context: LintContext):
    for module in context.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_backend_subclass(node):
                yield module, node


@register
class BackendSurfaceRule(Rule):
    """MSK001: every ``MaskBackend`` subclass implements the full
    protocol surface with matching arity.

    Required methods are those whose ``MaskBackend`` body raises
    ``NotImplementedError``; methods with a default body (``make_batch``,
    ``set_bits_bulk``) are optional overrides.  Arity is compared
    positionally (``self`` included); a ``*args`` signature on either
    side skips the comparison.  A partial backend would fail at the
    first missed dispatch *on some input* — this rule fails it at lint
    time instead.  See docs/INVARIANTS.md (family 2).
    """

    id = "MSK001"
    title = "incomplete or arity-mismatched MaskBackend implementation"

    def check_project(self, context: LintContext) -> Iterable[Finding]:
        base_module, base = context.module_with_class(BACKEND_BASE_CLASS)
        if base is None:
            return ()
        spec = _protocol_spec(base)
        findings: List[Finding] = []
        for module, backend in _backend_classes(context):
            methods = _methods(backend)
            for name, (required, base_arity) in sorted(spec.items()):
                implementation = methods.get(name)
                if implementation is None:
                    if required:
                        findings.append(
                            self.finding(
                                module,
                                backend,
                                f"backend class {backend.name} does not "
                                f"implement required protocol method "
                                f"{name}()",
                            )
                        )
                    continue
                arity = _positional_arity(implementation)
                if (
                    arity is not None
                    and base_arity is not None
                    and arity != base_arity
                ):
                    findings.append(
                        self.finding(
                            module,
                            implementation,
                            f"{backend.name}.{name}() takes {arity} "
                            f"positional parameters where the protocol "
                            f"declares {base_arity}",
                        )
                    )
        return findings


@register
class PureOpMutationRule(Rule):
    """MSK002: no statement in a pure mask op mutates ``self`` or an
    argument.

    Pure ops are every protocol method except ``make``/``make_batch``/
    ``set_bit``/``set_bits_bulk``.  Flagged shapes, on any name derived
    from ``self`` or a parameter (tracking aliases through plain
    ``a, b = b, a`` rebinds and loop targets over tracked containers):
    attribute/subscript assignment, augmented assignment (in-place
    operators are flagged even where the element type happens to be
    immutable — the representation is backend-private, so the safe
    spelling is ``x = x op y``), ``del``, known-mutating method calls
    (``.update``, ``.append``, ``np.*.at(tracked, ...)``).  Private
    helpers (leading underscore) are exempt: they are not protocol
    surface and the in-place builders legitimately share them.  See
    docs/INVARIANTS.md (family 2).
    """

    id = "MSK002"
    title = "mutation inside a pure mask-backend op"

    def check_project(self, context: LintContext) -> Iterable[Finding]:
        base_module, base = context.module_with_class(BACKEND_BASE_CLASS)
        if base is None:
            return ()
        protocol = set(_protocol_spec(base))
        pure = protocol - CONSTRUCTION_OPS
        findings: List[Finding] = []
        for module, backend in _backend_classes(context):
            for name, function in sorted(_methods(backend).items()):
                if name not in pure:
                    continue
                for node, description in _mutations(function):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"pure op {backend.name}.{name}() {description}",
                        )
                    )
        return findings


def _mutations(function: ast.FunctionDef):
    """``(node, description)`` for every caller-visible mutation."""
    tracked: Set[str] = {
        argument.arg
        for argument in (
            list(function.args.posonlyargs)
            + list(function.args.args)
            + list(function.args.kwonlyargs)
        )
    }
    violations: List[Tuple[ast.AST, str]] = []
    _scan_block(function.body, tracked, violations)
    return violations


def _target_names(target: ast.AST) -> Optional[List[str]]:
    """Flat name list of a Name/Tuple-of-Names target, else None."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            if not isinstance(element, ast.Name):
                return None
            names.append(element.id)
        return names
    return None


def _value_names(value: ast.AST) -> Optional[List[str]]:
    if isinstance(value, ast.Name):
        return [value.id]
    if isinstance(value, ast.Tuple):
        names: List[str] = []
        for element in value.elts:
            if not isinstance(element, ast.Name):
                return None
            names.append(element.id)
        return names
    return None


def _check_write_target(
    target: ast.AST, tracked: Set[str], violations, verb: str
) -> None:
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        root = root_name(target)
        if root is not None and root in tracked:
            kind = "attribute" if isinstance(target, ast.Attribute) else "item"
            violations.append(
                (target, f"{verb} an {kind} of caller-owned {root!r}")
            )
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _check_write_target(element, tracked, violations, verb)


def _check_calls(
    expressions: Sequence[Optional[ast.AST]], tracked: Set[str], violations
) -> None:
    """Flag mutating calls within the given expression trees."""
    nodes: List[ast.AST] = []
    for expression in expressions:
        if expression is not None:
            nodes.extend(ast.walk(expression))
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in MUTATING_METHODS:
            root = root_name(func.value)
            if root is not None and root in tracked:
                violations.append(
                    (
                        node,
                        f"calls mutating method .{func.attr}() on "
                        f"caller-owned {root!r}",
                    )
                )
        elif func.attr in ARGUMENT_MUTATORS and node.args:
            root = root_name(node.args[0])
            if root is not None and root in tracked:
                violations.append(
                    (
                        node,
                        f"calls {func.attr}(...) mutating caller-owned "
                        f"{root!r}",
                    )
                )


def _scan_block(
    statements: Sequence[ast.stmt], tracked: Set[str], violations
) -> None:
    for statement in statements:
        if isinstance(statement, ast.Assign):
            _check_calls([statement.value], tracked, violations)
            for target in statement.targets:
                _check_write_target(target, tracked, violations, "assigns")
            if len(statement.targets) == 1:
                names = _target_names(statement.targets[0])
            else:
                # a = b = value: untrack every simple name target.
                names = []
                for target in statement.targets:
                    flat = _target_names(target)
                    if flat:
                        names.extend(flat)
                tracked.difference_update(names)
                names = None
            if names is not None:
                sources = _value_names(statement.value)
                if sources is not None and all(
                    source in tracked for source in sources
                ):
                    # Alias of caller data (includes the a, b = b, a
                    # swap idiom): the new names still need tracking.
                    tracked.update(names)
                else:
                    tracked.difference_update(names)
        elif isinstance(statement, ast.AnnAssign):
            _check_calls([statement.value], tracked, violations)
            _check_write_target(statement.target, tracked, violations, "assigns")
            if isinstance(statement.target, ast.Name):
                tracked.discard(statement.target.id)
        elif isinstance(statement, ast.AugAssign):
            _check_calls([statement.value], tracked, violations)
            target = statement.target
            if isinstance(target, ast.Name):
                if target.id in tracked:
                    violations.append(
                        (
                            statement,
                            f"applies an in-place operator to caller-"
                            f"derived {target.id!r}; use the pure "
                            f"x = x op y form",
                        )
                    )
            else:
                _check_write_target(target, tracked, violations, "augments")
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    _check_write_target(
                        target, tracked, violations, "deletes"
                    )
                elif isinstance(target, ast.Name):
                    tracked.discard(target.id)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            _check_calls([statement.iter], tracked, violations)
            iterable_root = root_name(statement.iter)
            if iterable_root is not None and iterable_root in tracked:
                names = _target_names(statement.target)
                if names is not None:
                    # Loop targets view elements of caller data (dict
                    # values may be mutable chunk arrays).
                    tracked.update(names)
            _scan_block(statement.body, tracked, violations)
            _scan_block(statement.orelse, tracked, violations)
        elif isinstance(statement, ast.While):
            _check_calls([statement.test], tracked, violations)
            _scan_block(statement.body, tracked, violations)
            _scan_block(statement.orelse, tracked, violations)
        elif isinstance(statement, ast.If):
            _check_calls([statement.test], tracked, violations)
            _scan_block(statement.body, tracked, violations)
            _scan_block(statement.orelse, tracked, violations)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            _check_calls(
                [item.context_expr for item in statement.items],
                tracked,
                violations,
            )
            _scan_block(statement.body, tracked, violations)
        elif isinstance(statement, ast.Try):
            _scan_block(statement.body, tracked, violations)
            for handler in statement.handlers:
                _scan_block(handler.body, tracked, violations)
            _scan_block(statement.orelse, tracked, violations)
            _scan_block(statement.finalbody, tracked, violations)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs get a fresh conservative scan: names they
            # close over stay tracked inside them.
            _scan_block(statement.body, set(tracked), violations)
        else:
            _check_calls(
                [
                    child
                    for child in ast.iter_child_nodes(statement)
                    if isinstance(child, ast.expr)
                ],
                tracked,
                violations,
            )
