"""Config/CLI drift rules: the knob registry stays fully wired.

``CSPMConfig`` is the single source of truth for run knobs; the CLI
(``mine``) and the perf suite (``bench``) re-expose them as flags.  Two
drift modes have bitten similar projects (see docs/INVARIANTS.md,
family 4): a new config field that is silently unreachable from the
CLI, and a ``to_dict`` default-omission clause whose pinned constant
falls out of sync with the declared field default — which would change
serialised result documents (and the CLI golden file) without any test
noticing until the next full regeneration.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Finding, LintContext, Rule, register

CONFIG_CLASS = "CSPMConfig"

#: Config field -> CLI flag where the spelling is not the mechanical
#: ``--field-name`` transform.  Keep in sync with ``cli._add_mine``.
FLAG_ALIASES: Dict[str, str] = {
    "coreset_encoder": "--encoder",
    "partial_update_scope": "--scope",
    "top_k": "--top",
}

#: Fields deliberately not exposed as flags, with the reason (shown in
#: the finding when a field is *neither* wired nor exempted).
EXEMPT_FIELDS: Dict[str, str] = {
    "include_model_cost": "ablation knob, set via the API by benchmarks",
    "max_iterations": "safety cap for embedders, API-only by design",
}

#: Functions that mark a module as flag-bearing: the drift check only
#: runs when at least one of them is in view, so linting a lone snippet
#: does not report every field as unwired.
FLAG_FUNCTIONS = ("_add_mine", "add_bench_arguments")


def _config_fields(
    class_def: ast.ClassDef,
) -> List[Tuple[str, ast.AnnAssign]]:
    fields = []
    for item in class_def.body:
        if isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            fields.append((item.target.id, item))
    return fields


def _declared_flags(context: LintContext) -> Set[str]:
    """Every ``--flag`` string passed to an ``add_argument`` call in any
    module in view (all option-string spellings count)."""
    flags: Set[str] = set()
    for module in context.modules:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                for argument in node.args:
                    if isinstance(argument, ast.Constant) and isinstance(
                        argument.value, str
                    ):
                        if argument.value.startswith("--"):
                            flags.add(argument.value)
    return flags


def _has_flag_function(context: LintContext) -> bool:
    return any(
        context.module_with_function(name)[0] is not None
        for name in FLAG_FUNCTIONS
    )


@register
class ConfigFlagDriftRule(Rule):
    """CFG001: every ``CSPMConfig`` field has a CLI flag or an explicit
    exemption.

    The expected flag is ``--<field-with-dashes>`` or the alias in
    :data:`FLAG_ALIASES`; it may be declared by any ``add_argument``
    call in view (``mine`` in ``cli.py`` or ``bench`` in
    ``perf/suite.py``).  Fields in :data:`EXEMPT_FIELDS` are skipped —
    adding a field to the exemption dict is the deliberate opt-out.
    The perf-bounds file points here: a knob added without wiring fails
    this rule before it can silently diverge from the benchmarks.  See
    docs/INVARIANTS.md (family 4).
    """

    id = "CFG001"
    title = "CSPMConfig field without a CLI flag or exemption"

    def check_project(self, context: LintContext) -> Iterable[Finding]:
        module, class_def = context.module_with_class(CONFIG_CLASS)
        if module is None or not _has_flag_function(context):
            return ()
        flags = _declared_flags(context)
        findings: List[Finding] = []
        for name, node in _config_fields(class_def):
            if name in EXEMPT_FIELDS:
                continue
            expected = FLAG_ALIASES.get(name, "--" + name.replace("_", "-"))
            if expected not in flags:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"config field {name!r} has no CLI flag "
                        f"({expected} not declared by mine/bench) and no "
                        f"entry in the exemption list",
                    )
                )
        return findings


@register
class ToDictOmissionDriftRule(Rule):
    """CFG002: ``to_dict`` default-omission constants match the declared
    field defaults.

    ``CSPMConfig.to_dict`` keeps schema-v1 documents byte-stable by
    deleting execution-engine keys when they hold their default.  Each
    ``if document["field"] == CONST: del document["field"]`` clause is
    checked against the dataclass default: a mismatched constant would
    serialise default configs differently (or omit non-default values),
    silently invalidating every golden document.  Unknown field names
    in omission clauses are flagged too.  See docs/INVARIANTS.md
    (family 4).
    """

    id = "CFG002"
    title = "to_dict default-omission constant differs from field default"

    def check_project(self, context: LintContext) -> Iterable[Finding]:
        module, class_def = context.module_with_class(CONFIG_CLASS)
        if module is None:
            return ()
        to_dict = None
        for item in class_def.body:
            if isinstance(item, ast.FunctionDef) and item.name == "to_dict":
                to_dict = item
                break
        if to_dict is None:
            return ()
        defaults: Dict[str, Tuple[bool, object]] = {}
        for name, node in _config_fields(class_def):
            if node.value is not None and isinstance(node.value, ast.Constant):
                defaults[name] = (True, node.value.value)
            else:
                defaults[name] = (False, None)
        findings: List[Finding] = []
        for node in ast.walk(to_dict):
            if not isinstance(node, ast.If):
                continue
            clause = self._omission_clause(node)
            if clause is None:
                continue
            field_name, omitted = clause
            if field_name not in defaults:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"to_dict omission clause references unknown "
                        f"config field {field_name!r}",
                    )
                )
                continue
            has_constant, default = defaults[field_name]
            if not has_constant:
                continue
            if omitted != default or type(omitted) is not type(default):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"to_dict omits {field_name!r} when it equals "
                        f"{omitted!r}, but the declared default is "
                        f"{default!r}; serialised documents would drift",
                    )
                )
        return findings

    @staticmethod
    def _omission_clause(node: ast.If) -> Optional[Tuple[str, object]]:
        """``(field, omitted_value)`` for the shape
        ``if document["f"] <op> CONST: del document["f"]`` where ``<op>``
        is ``==`` or ``is``; None when the If is some other shape."""
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Eq, ast.Is))
            and isinstance(test.left, ast.Subscript)
            and isinstance(test.left.slice, ast.Constant)
            and isinstance(test.left.slice.value, str)
            and isinstance(test.comparators[0], ast.Constant)
        ):
            return None
        field_name = test.left.slice.value
        deletes_field = any(
            isinstance(statement, ast.Delete)
            and any(
                isinstance(target, ast.Subscript)
                and isinstance(target.slice, ast.Constant)
                and target.slice.value == field_name
                for target in statement.targets
            )
            for statement in node.body
        )
        if not deletes_field:
            return None
        return field_name, test.comparators[0].value
