"""Observability rules for the :mod:`repro.obs` instrumentation layer.

Two contracts keep the observability layer auditable and the rest of
the tree deterministic (see docs/INVARIANTS.md, family 6):

* span/metric/progress *names* are string literals at the call site.
  The catalogue in docs/OBSERVABILITY.md is maintained by grep; a name
  built at runtime is invisible to that audit and unbounded in
  cardinality (labels exist for the runtime-variable dimensions).
  The :mod:`repro.obs` modules themselves are exempt — the facade and
  the null objects *delegate* the name as a variable by design.
* ``repro.obs.clock`` is the only sanctioned ``import time`` in the
  package.  Everything else reaches wall-clock through the
  ``repro.obs.clock`` seam (``clock.perf_counter``/``clock.sleep``),
  which keeps timing monkeypatchable in one place and keeps DET003's
  no-entropy contract for ``core/`` meaningful — a stray ``import
  time`` is how nondeterministic timing quietly re-enters a hot path.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    SourceModule,
    register,
)

#: The name-taking observability methods: spans/instants on the tracer
#: (and the Observation facade), instruments on the metrics registry,
#: and the progress emitter's two emission methods.  The method names
#: are deliberately distinctive — generic verbs like ``set``/``get``/
#: ``event`` would collide with unrelated APIs.
NAMED_OBS_METHODS = frozenset(
    {"span", "instant", "counter", "gauge", "histogram", "heartbeat", "note"}
)


def _in_obs_package(module: SourceModule) -> bool:
    normalized = "/" + module.path.replace("\\", "/")
    return "/obs/" in normalized


@register
class LiteralObsNameRule(Rule):
    """OBS001: span/metric/progress names are string literals.

    Flags calls of the name-taking observability methods (``span``,
    ``instant``, ``counter``, ``gauge``, ``histogram``, ``heartbeat``,
    ``note``) whose first argument is not a string literal.  Literal
    names keep docs/OBSERVABILITY.md's catalogue grep-complete and
    bound the metric registry's cardinality by the source code; the
    runtime-variable dimensions (site, phase, case) belong in labels
    and span attributes.  The :mod:`repro.obs` modules are exempt:
    the ``Observation`` facade and the null recorders forward the name
    as a parameter by design.
    See docs/INVARIANTS.md (family 6).
    """

    id = "OBS001"
    title = "observability name is not a string literal"

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        if _in_obs_package(module):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in NAMED_OBS_METHODS
                or not node.args
            ):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    f".{func.attr}(...) name must be a string literal "
                    f"(docs/OBSERVABILITY.md is the grep-maintained "
                    f"catalogue); put runtime-variable dimensions in "
                    f"labels or span attributes",
                )
            )
        return findings


@register
class ClockSeamRule(Rule):
    """OBS002: ``import time`` only inside :mod:`repro.obs`.

    Flags any ``import time`` / ``from time import ...`` outside the
    ``repro/obs/`` package.  All wall-clock access goes through the
    ``repro.obs.clock`` seam — one rebindable module attribute set —
    so tests can freeze or script time in one place and timing can
    never silently perturb the deterministic mining paths.  Code that
    genuinely needs a clock imports ``from repro.obs import clock``
    and calls ``clock.perf_counter()``/``clock.sleep()``.
    See docs/INVARIANTS.md (family 6).
    """

    id = "OBS002"
    title = "import time outside the repro.obs clock seam"

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        if _in_obs_package(module):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [(node.module or "").split(".")[0]]
            else:
                continue
            if "time" not in names:
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    "import the clock seam instead (from repro.obs "
                    "import clock; clock.perf_counter()/clock.sleep()): "
                    "repro.obs.clock is the single sanctioned time "
                    "import",
                )
            )
        return findings
