"""Determinism rules: hash-seed-stable accumulation and ordering.

The PR-1 golden-file pin rests on one discipline (see
``docs/INVARIANTS.md``, family 1): every float accumulation or
serialised sequence that feeds a result document must run in an
explicitly sorted order, because float addition is order-sensitive and
``set``/``frozenset`` iteration (and, historically, dict iteration)
varies with ``PYTHONHASHSEED``.  The rules here are deliberately
*syntactic* — they flag the shapes that can go wrong rather than prove
they do — so they stay cheap and predictable; an order-free site (an
integer sum, say) carries a ``# repro: noqa[DET001]`` with its reason.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    SourceModule,
    dotted_name,
    register,
    walk_functions,
)

#: Modules whose description-length / serialisation arithmetic pins the
#: CLI golden file; every accumulation in them must be order-stable.
HASH_SENSITIVE_MODULES: Tuple[str, ...] = (
    "core/mdl.py",
    "core/result.py",
    "core/code_table.py",
    "core/astar.py",
    "config.py",
)

#: Functions that are serialisation paths wherever they live: their
#: output order lands verbatim in result documents.
SERIALIZER_FUNCTIONS = frozenset({"to_dict", "to_json"})

#: Method names whose call result has no guaranteed *semantic* order:
#: dict views (insertion order is real but encodes construction
#: history, not a contract) and the project's own database views
#: (``row_items`` walks a dict; ``coresets_of``/``leafsets_of`` return
#: frozensets).
UNORDERED_METHODS = frozenset(
    {
        "items",
        "keys",
        "values",
        "row_items",
        "coresets",
        "leafsets",
        "coresets_of",
        "leafsets_of",
    }
)

UNORDERED_CONSTRUCTORS = frozenset({"set", "frozenset"})

ACCUMULATOR_CALLS = frozenset({"sum", "fsum"})


def _is_unordered_iterable(node: ast.AST) -> bool:
    """Whether ``node`` is a syntactic shape with hash- or
    history-dependent iteration order (never true for ``sorted(...)``)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in UNORDERED_CONSTRUCTORS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in UNORDERED_METHODS:
            return True
    return False


def _first_generator_unordered(node: ast.AST) -> bool:
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return _is_unordered_iterable(node.generators[0].iter)
    return False


def _contains_augassign(nodes: Iterable[ast.stmt]) -> bool:
    for statement in nodes:
        for node in ast.walk(statement):
            if isinstance(node, ast.AugAssign):
                return True
    return False


@register
class UnsortedAccumulationRule(Rule):
    """DET001: unsorted set/dict iteration feeding an accumulator or a
    serialiser.

    In the hash-sensitive modules (``core/mdl.py``, ``core/result.py``,
    ``core/code_table.py``, ``core/astar.py``, ``config.py``) a ``for``
    loop over ``.items()``/``.keys()``/``.values()``/``row_items()``/
    a ``set`` that augments an accumulator (``total += ...``), and any
    ``sum(...)`` over such an iterable, must go through ``sorted(...)``
    first.  In functions named ``to_dict``/``to_json`` — serialisation
    paths wherever they live — *any* unsorted iteration of those shapes
    is flagged, because the iteration order lands in the document.
    Order-free sites (integer sums) carry ``# repro: noqa[DET001]``
    with the reason.  See docs/INVARIANTS.md (family 1).
    """

    id = "DET001"
    title = "unsorted set/dict iteration feeding an accumulator/serialiser"

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[int, int]] = set()

        def emit(node: ast.AST, message: str) -> None:
            key = (node.lineno, node.col_offset)
            if key not in seen:
                seen.add(key)
                findings.append(self.finding(module, node, message))

        sensitive = any(
            module.path_endswith(name) for name in HASH_SENSITIVE_MODULES
        )
        if sensitive:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.For):
                    if _is_unordered_iterable(node.iter) and _contains_augassign(
                        node.body
                    ):
                        emit(
                            node,
                            "unsorted iteration accumulates order-"
                            "sensitively in a hash-sensitive module; "
                            "iterate sorted(...) (or suppress with a "
                            "reason if the sum is order-free)",
                        )
                elif isinstance(node, ast.Call):
                    func = node.func
                    name = func.id if isinstance(func, ast.Name) else None
                    if name in ACCUMULATOR_CALLS and node.args:
                        argument = node.args[0]
                        if _is_unordered_iterable(
                            argument
                        ) or _first_generator_unordered(argument):
                            emit(
                                node,
                                f"{name}() over an unsorted set/dict view "
                                "in a hash-sensitive module; sort the "
                                "iterable (or suppress with a reason if "
                                "the sum is order-free)",
                            )
        for function in walk_functions(module.tree):
            if function.name not in SERIALIZER_FUNCTIONS:
                continue
            for node in ast.walk(function):
                if isinstance(node, ast.For) and _is_unordered_iterable(
                    node.iter
                ):
                    emit(
                        node,
                        f"unsorted iteration inside serialiser "
                        f"{function.name}(); the order lands in the "
                        "document — iterate sorted(...)",
                    )
                elif isinstance(
                    node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                ) and _is_unordered_iterable(node.generators[0].iter):
                    emit(
                        node,
                        f"unsorted comprehension inside serialiser "
                        f"{function.name}(); the order lands in the "
                        "document — iterate sorted(...)",
                    )
        return findings


@register
class HashDerivedOrderingRule(Rule):
    """DET002: ``hash()``/``id()`` used as an ordering key.

    ``sorted(..., key=hash)`` (or a key function calling ``hash()`` or
    ``id()``) produces a different order per process: ``hash`` is
    salted by ``PYTHONHASHSEED`` for str/bytes and ``id`` is an
    allocation address.  Sort keys must be value-derived — the project
    convention is ``repr`` (``leafset_sort_key``) or interned integer
    ids.  Applies to the whole tree.  See docs/INVARIANTS.md (family 1).
    """

    id = "DET002"
    title = "hash()/id()-derived ordering"

    _ORDERING_FUNCS = frozenset({"sorted", "min", "max"})

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_ordering = (
                isinstance(func, ast.Name) and func.id in self._ORDERING_FUNCS
            ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
            if not is_ordering:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                culprit = self._hash_or_id(keyword.value)
                if culprit is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"ordering key derives from {culprit}(), which "
                            "varies per process; use a value-derived key "
                            "(repr / interned ids)",
                        )
                    )
        return findings

    @staticmethod
    def _hash_or_id(key_node: ast.AST) -> Optional[str]:
        if isinstance(key_node, ast.Name) and key_node.id in ("hash", "id"):
            return key_node.id
        for node in ast.walk(key_node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("hash", "id")
            ):
                return node.func.id
        return None


@register
class UnseededEntropyRule(Rule):
    """DET003: unseeded randomness or wall-clock reads inside ``core/``.

    The mining core must be a pure function of (graph, config): global-
    RNG calls (``random.random()``, ``np.random.rand()``, an argument-
    less ``default_rng()``) and wall-clock reads (``time.time()`` and
    friends) make merges — and therefore golden files — irreproducible.
    Seeded generators (``random.Random(seed)``,
    ``np.random.default_rng(seed)``) pass; timing belongs in the
    pipeline/benchmark layers outside ``core/``.  See
    docs/INVARIANTS.md (family 1).
    """

    id = "DET003"
    title = "unseeded random / wall-clock time in core/"

    _TIME_FUNCS = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
        }
    )

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        if "core/" not in module.path and not module.path.startswith("core"):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            message = self._violation(name, node)
            if message is not None:
                findings.append(self.finding(module, node, message))
        return findings

    def _violation(self, name: str, call: ast.Call) -> Optional[str]:
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random":
                if not call.args and not call.keywords:
                    return (
                        "random.Random() without a seed in core/; pass an "
                        "explicit seed"
                    )
                return None
            if parts[1] == "seed":
                return None
            return (
                f"{name}() uses the global unseeded RNG in core/; use a "
                "seeded random.Random(seed) instance"
            )
        if len(parts) >= 2 and parts[-2] == "random":
            # numpy's legacy global RNG (np.random.rand etc.); the
            # seeded generator construction is the one allowed call.
            if parts[-1] == "default_rng":
                if call.args or call.keywords:
                    return None
                return (
                    "default_rng() without a seed in core/; pass an "
                    "explicit seed"
                )
            return (
                f"{name}() uses numpy's global RNG in core/; use "
                "np.random.default_rng(seed)"
            )
        if parts[0] == "time" and len(parts) == 2 and parts[1] in self._TIME_FUNCS:
            return (
                f"{name}() reads the wall clock in core/; timing belongs "
                "in the pipeline/benchmark layers"
            )
        return None
