"""The shipped rule families.

Importing this package registers every rule with
:data:`repro.analysis.core.RULE_REGISTRY`:

========  ===========================================================
family    rules
========  ===========================================================
DET       determinism: DET001 unsorted accumulation/serialisation,
          DET002 hash()/id() ordering, DET003 unseeded entropy in core/
MSK       mask backends: MSK001 protocol surface/arity, MSK002 pure-op
          mutation
FRK       fork/pickle safety: FRK001 pool callables, FRK002 worker
          payload types
CFG       config drift: CFG001 field/flag wiring, CFG002 to_dict
          omission defaults
RES       resilience: RES001 pool harvests without a timeout, RES002
          bare/BaseException handlers outside the supervisor
OBS       observability: OBS001 non-literal span/metric names, OBS002
          import time outside the repro.obs clock seam
========  ===========================================================

The contracts behind the families are written up in
``docs/INVARIANTS.md``; each rule's docstring is the per-rule detail.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    config_drift,
    determinism,
    fork_safety,
    mask_purity,
    observability,
    resilience,
)
