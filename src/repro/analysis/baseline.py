"""Baseline files: grandfathered findings that do not fail the lint.

A baseline is a committed JSON document listing findings that predate a
rule (or are accepted as-is); ``repro lint --baseline FILE`` subtracts
them from the reported set so CI can gate on *new* findings only.  The
shipped tree lints clean, so the committed ``lint_baseline.json`` is
empty — the file exists so the workflow (and the round-trip) stays
exercised, and so a future rule with pre-existing findings has a
grandfathering path that is not "weaken the rule".

Identity is the finding's :meth:`~repro.analysis.core.Finding.fingerprint`
— ``(rule, path, message)``, no line numbers — so baselined findings
survive unrelated edits elsewhere in the file.  Matching is count-aware:
two identical findings need two baseline entries.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def load_baseline(path: str) -> Counter:
    """The fingerprint multiset of a baseline document."""
    with open(path) as handle:
        document = json.load(handle)
    return baseline_from_dict(document)


def baseline_from_dict(document: Dict) -> Counter:
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    fingerprints: Counter = Counter()
    for entry in document.get("findings", ()):
        fingerprints[(entry["rule"], entry["path"], entry["message"])] += 1
    return fingerprints


def baseline_document(findings: Sequence[Finding]) -> Dict:
    """A baseline document grandfathering exactly ``findings``."""
    return {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in sorted(findings, key=Finding.sort_key)
        ],
    }


def save_baseline(path: str, findings: Sequence[Finding]) -> None:
    with open(path, "w") as handle:
        json.dump(baseline_document(findings), handle, indent=2)
        handle.write("\n")


def split_baselined(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """``(new, baselined)`` — each baseline entry absorbs one finding."""
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    return fresh, grandfathered
