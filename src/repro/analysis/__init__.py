"""``repro.analysis``: the project-specific invariant linter.

Five PRs of performance work made correctness hang on contracts that
were enforced only by convention: bit-exactness across mask backends,
hash-seed-stable sorted accumulation in the MDL code, purity of every
mask-backend read op, and pickle/fork safety of the partitioned
builder's worker payloads.  This package checks those contracts
mechanically over the source tree — ``repro lint`` in the CLI, the
``lint`` job in CI — so the ROADMAP's next refactors (sharded search,
CSR construction, out-of-core masks) trip a lint failure instead of a
randomized-test heisenbug.

Public surface::

    from repro.analysis import lint_paths, lint_sources

    report = lint_paths()          # lint the installed repro package
    report = lint_sources([("core/mdl.py", source_text)])
    report.findings                # non-baselined findings (fail CI)
    report.baselined               # grandfathered findings
    report.clean                   # no non-baselined findings

Rules are registered by :mod:`repro.analysis.rules`; suppression is
``# repro: noqa[RULEID]`` on the finding's line; the committed
``lint_baseline.json`` grandfathers nothing (the tree is clean) but
keeps the baseline path exercised.  See ``docs/INVARIANTS.md`` for the
contracts in prose.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.baseline import (
    baseline_document,
    load_baseline,
    save_baseline,
    split_baselined,
)
from repro.analysis.core import (
    RULE_REGISTRY,
    Finding,
    Rule,
    SourceModule,
    resolve_rules,
    run_rules,
)
from repro.analysis.report import render_json, render_text, report_document


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    baselined: List[Finding]
    modules: int
    rules: List[Rule] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def render_text(self) -> str:
        return render_text(self.findings, self.baselined, self.modules)

    def render_json(self) -> str:
        return render_json(
            self.findings, self.baselined, self.modules, self.rules
        )

    def to_dict(self) -> Dict:
        return report_document(
            self.findings, self.baselined, self.modules, self.rules
        )


def default_lint_root() -> Path:
    """The installed ``repro`` package directory — what ``repro lint``
    checks when no paths are given."""
    return Path(__file__).resolve().parent.parent


def _collect_sources(paths: Sequence[str]) -> List[Tuple[str, str]]:
    sources: List[Tuple[str, str]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file_path in sorted(path.rglob("*.py")):
                display = file_path.relative_to(path).as_posix()
                sources.append((display, file_path.read_text()))
        else:
            # Keep the path as given (posix) so scope suffixes like
            # ``core/mdl.py`` still match single-file invocations.
            sources.append((path.as_posix(), path.read_text()))
    return sources


def lint_sources(
    sources: Sequence[Tuple[str, str]],
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Counter] = None,
) -> LintReport:
    """Lint in-memory ``(display_path, source)`` pairs.

    The display path is what rules match scopes against (use
    ``core/mdl.py``-style suffixes) and what baselines key on.
    """
    selected = resolve_rules(rule_ids)
    modules = [SourceModule.parse(path, text) for path, text in sources]
    findings = run_rules(modules, selected)
    if baseline:
        fresh, grandfathered = split_baselined(findings, baseline)
    else:
        fresh, grandfathered = findings, []
    return LintReport(
        findings=fresh,
        baselined=grandfathered,
        modules=len(modules),
        rules=selected,
    )


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    rule_ids: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint files/directories (default: the installed repro package)."""
    if not paths:
        paths = [str(default_lint_root())]
    baseline = load_baseline(baseline_path) if baseline_path else None
    return lint_sources(_collect_sources(paths), rule_ids, baseline)


__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "RULE_REGISTRY",
    "baseline_document",
    "default_lint_root",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "render_json",
    "render_text",
    "resolve_rules",
    "run_rules",
    "save_baseline",
    "split_baselined",
]
