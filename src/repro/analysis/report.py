"""Reporters: the lint run rendered as text or as a JSON document.

The JSON form is what CI uploads as an artifact; its shape is::

    {
      "version": 1,
      "clean": true,
      "modules": 62,
      "rules": {"DET001": {"title": ..., "severity": ..., "count": 0}, ...},
      "findings": [ {rule, path, line, col, severity, message}, ... ],
      "baselined": [ ...same shape... ]
    }

``clean`` reflects the *non-baselined* findings only — exactly the
condition the lint exit code gates on.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.core import Finding, Rule

REPORT_VERSION = 1


def render_text(
    findings: Sequence[Finding],
    baselined: Sequence[Finding],
    modules: int,
) -> str:
    lines: List[str] = [finding.render() for finding in findings]
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {modules} module{'s' if modules != 1 else ''}"
    )
    if baselined:
        summary += f" ({len(baselined)} baselined, not counted)"
    lines.append(summary)
    return "\n".join(lines)


def report_document(
    findings: Sequence[Finding],
    baselined: Sequence[Finding],
    modules: int,
    rules: Sequence[Rule],
) -> Dict:
    per_rule: Dict[str, Dict] = {}
    for rule in rules:
        per_rule[rule.id] = {
            "title": rule.title,
            "severity": rule.severity,
            "count": 0,
        }
    for finding in findings:
        entry = per_rule.setdefault(
            finding.rule,
            {"title": "", "severity": finding.severity, "count": 0},
        )
        entry["count"] += 1
    return {
        "version": REPORT_VERSION,
        "clean": not findings,
        "modules": modules,
        "rules": per_rule,
        "findings": [finding.to_dict() for finding in findings],
        "baselined": [finding.to_dict() for finding in baselined],
    }


def render_json(
    findings: Sequence[Finding],
    baselined: Sequence[Finding],
    modules: int,
    rules: Sequence[Rule],
) -> str:
    return json.dumps(
        report_document(findings, baselined, modules, rules), indent=2
    )
