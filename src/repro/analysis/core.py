"""The invariant-linter framework: findings, rules, noqa, execution.

:mod:`repro.analysis` is a *project-specific* static-analysis pass over
the ``repro`` source tree.  Five PRs of performance work have left
correctness hanging on contracts that are enforced only by convention
and randomized tests — bit-exactness across mask backends, hash-seed-
stable sorted accumulation in the MDL code, purity of the mask-backend
protocol's read ops, pickle/fork safety of the partitioned builder.
The rules in :mod:`repro.analysis.rules` encode those contracts as
checkable artifacts so the next refactor trips a lint failure instead
of a randomized-test heisenbug (the contracts themselves are written
up in ``docs/INVARIANTS.md``).

This module carries the machinery the rules plug into:

* :class:`Finding` — one diagnostic, with a stable fingerprint for
  baselining;
* :class:`SourceModule` — a parsed file plus its per-line
  ``# repro: noqa[RULE]`` suppressions;
* :class:`Rule` and :func:`register` — the rule plugin surface.  A rule
  implements :meth:`Rule.check_module` (called once per file) and/or
  :meth:`Rule.check_project` (called once with every file in view —
  for cross-file contracts like config/CLI drift);
* :class:`LintContext` — the full module set handed to every rule;
* :func:`run_rules` — dispatch, noqa filtering, deterministic ordering.

Suppression syntax: a ``# repro: noqa`` comment suppresses every rule
on its line; ``# repro: noqa[DET001]`` (comma-separated ids allowed)
suppresses only the named rules.  Suppressions are matched against the
finding's *first* line, so put the comment on the first physical line
of a multi-line statement.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

SEVERITIES = ("error", "warning")

#: ``# repro: noqa`` / ``# repro: noqa[RULE1, RULE2]`` — the only
#: suppression syntax the linter honours.  Scanned per physical line (a
#: literal match inside a string constant would also suppress; keep the
#: marker out of string literals).
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def fingerprint(self) -> Tuple[str, str, str]:
        """The baseline identity: line numbers deliberately excluded so
        grandfathered findings survive unrelated edits above them."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class SourceModule:
    """A parsed source file plus its suppression table."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: line -> None (suppress all rules) or the suppressed rule ids.
        self.noqa: Dict[int, Optional[FrozenSet[str]]] = _collect_noqa(source)

    @classmethod
    def parse(cls, path: str, source: str) -> "SourceModule":
        return cls(path, source, ast.parse(source, filename=path))

    def path_endswith(self, suffix: str) -> bool:
        """Suffix match on the display path (``core/mdl.py`` matches
        both ``core/mdl.py`` and ``src/repro/core/mdl.py``)."""
        return self.path == suffix or self.path.endswith("/" + suffix)

    def suppresses(self, finding: Finding) -> bool:
        if finding.line not in self.noqa:
            return False
        rules = self.noqa[finding.line]
        return rules is None or finding.rule in rules


def _collect_noqa(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    table: Dict[int, Optional[FrozenSet[str]]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_PATTERN.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[number] = None
        else:
            names = frozenset(
                name.strip() for name in rules.split(",") if name.strip()
            )
            # ``noqa[]`` suppresses nothing rather than everything.
            table[number] = names if names else frozenset()
    return table


@dataclass
class LintContext:
    """Everything a rule may look at: the full parsed module set."""

    modules: List[SourceModule] = field(default_factory=list)

    def module_with_class(self, class_name: str):
        """``(module, ClassDef)`` of the first top-level class with this
        name, or ``(None, None)``."""
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == class_name:
                    return module, node
        return None, None

    def module_with_function(self, function_name: str):
        """``(module, FunctionDef)`` of the first top-level function with
        this name, or ``(None, None)``."""
        for module in self.modules:
            for node in module.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == function_name
                ):
                    return module, node
        return None, None


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`id` (the ``# repro: noqa[...]`` name),
    :attr:`title` (one line, shown by ``repro lint --list-rules``) and
    :attr:`severity`, then implement :meth:`check_module` and/or
    :meth:`check_project`.  The class docstring is the rule's long
    documentation; keep it cross-linked with ``docs/INVARIANTS.md``.
    """

    id: str = ""
    title: str = ""
    severity: str = "error"

    def check_module(
        self, module: SourceModule, context: LintContext
    ) -> Iterable[Finding]:
        return ()

    def check_project(self, context: LintContext) -> Iterable[Finding]:
        return ()

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


#: id -> rule instance, in registration order.
RULE_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"rule {rule.id}: severity must be one of {SEVERITIES}"
        )
    if rule.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULE_REGISTRY[rule.id] = rule
    return rule_cls


def resolve_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """The selected rules (all registered rules when ``rule_ids`` is
    None); unknown ids raise ``ValueError`` with the known set."""
    if rule_ids is None:
        return list(RULE_REGISTRY.values())
    unknown = sorted(set(rule_ids) - set(RULE_REGISTRY))
    if unknown:
        raise ValueError(
            f"unknown rule ids {unknown}; known: {sorted(RULE_REGISTRY)}"
        )
    return [RULE_REGISTRY[rule_id] for rule_id in dict.fromkeys(rule_ids)]


def run_rules(
    modules: Sequence[SourceModule],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run ``rules`` over ``modules``; noqa-filtered, sorted."""
    if rules is None:
        rules = list(RULE_REGISTRY.values())
    context = LintContext(modules=list(modules))
    by_path = {module.path: module for module in context.modules}
    findings: List[Finding] = []
    for rule in rules:
        for module in context.modules:
            findings.extend(rule.check_module(module, context))
        findings.extend(rule.check_project(context))
    kept = []
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and module.suppresses(finding):
            continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept


# ----------------------------------------------------------------------
# Shared AST helpers for rules
# ----------------------------------------------------------------------


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost ``Name`` id of an attribute/subscript/call chain
    (``a.b[c].d()`` -> ``"a"``), or None."""
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_functions(tree: ast.AST):
    """Every (async) function definition in the tree, any nesting."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def module_level_callables(tree: ast.Module) -> FrozenSet[str]:
    """Names statically known to resolve at module scope: top-level
    ``def``s and imported names (what a pickle of the callable can find
    again by qualified name in a worker process)."""
    names = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return frozenset(names)
