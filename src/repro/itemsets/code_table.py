"""The Krimp/SLIM code table and its MDL accounting.

A code table ``CT`` maps itemsets to codes whose lengths follow from
their *usage* in the cover of the database:

    L(X) = -log2(usage(X) / total_usage)

The total description length is ``L(CT|D) + L(D|CT)`` where the model
cost prices each in-use itemset by its standard (per-item Shannon)
codes plus its own code, and the data cost is the sum of the code
lengths of every cover element over all transactions.

Covers use Krimp's *standard cover order*: itemsets sorted by
cardinality (desc), support (desc), lexicographic — greedily matched
against the uncovered remainder of the transaction, so every cover is
a partition of the transaction.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.errors import EncodingError, MiningError
from repro.itemsets.transactions import TransactionDatabase

Item = Hashable
Itemset = FrozenSet[Item]


def _lex_key(itemset: Itemset) -> Tuple[str, ...]:
    return tuple(sorted(map(repr, itemset)))


class ItemsetCodeTable:
    """A code table over a fixed transaction database."""

    def __init__(self, database: TransactionDatabase) -> None:
        self._db = database
        frequencies = database.item_frequencies()
        total = database.total_item_occurrences()
        self._st_lengths: Dict[Item, float] = {
            item: -math.log2(count / total) for item, count in frequencies.items()
        }
        # Singletons are always present (Krimp's ST backbone).
        self._supports: Dict[Itemset, int] = {
            frozenset([item]): count for item, count in frequencies.items()
        }
        self._order: Optional[List[Itemset]] = None
        self._usages: Optional[Dict[Itemset, int]] = None
        self._covers: Optional[List[List[Itemset]]] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def database(self) -> TransactionDatabase:
        return self._db

    def itemsets(self) -> List[Itemset]:
        """All itemsets currently in the table (including singletons)."""
        return list(self._supports)

    def non_singletons(self) -> List[Itemset]:
        return [x for x in self._supports if len(x) > 1]

    def __contains__(self, itemset: Iterable[Item]) -> bool:
        return frozenset(itemset) in self._supports

    def __len__(self) -> int:
        return len(self._supports)

    def add(self, itemset: Iterable[Item]) -> None:
        """Insert ``itemset`` (support computed from the database)."""
        key = frozenset(itemset)
        if len(key) < 2:
            raise MiningError("only non-singleton itemsets can be added")
        if key in self._supports:
            raise MiningError(f"itemset {set(key)} already present")
        support = self._db.support(key)
        if support == 0:
            raise MiningError(f"itemset {set(key)} never occurs in the database")
        self._supports[key] = support
        self._invalidate()

    def remove(self, itemset: Iterable[Item]) -> None:
        """Remove a non-singleton itemset."""
        key = frozenset(itemset)
        if len(key) < 2:
            raise MiningError("singletons cannot be removed")
        if key not in self._supports:
            raise MiningError(f"itemset {set(key)} not present")
        del self._supports[key]
        self._invalidate()

    def _invalidate(self) -> None:
        self._order = None
        self._usages = None
        self._covers = None

    # ------------------------------------------------------------------
    # Covering
    # ------------------------------------------------------------------

    def cover_order(self) -> List[Itemset]:
        """Standard cover order: |X| desc, support desc, lexicographic."""
        if self._order is None:
            self._order = sorted(
                self._supports,
                key=lambda x: (-len(x), -self._supports[x], _lex_key(x)),
            )
        return self._order

    def cover(self, transaction: Itemset) -> List[Itemset]:
        """Greedy standard cover of ``transaction`` (a partition)."""
        remaining = set(transaction)
        cover: List[Itemset] = []
        for itemset in self.cover_order():
            if len(itemset) > len(remaining):
                continue
            if itemset <= remaining:
                cover.append(itemset)
                remaining -= itemset
                if not remaining:
                    break
        if remaining:
            missing = {item for item in remaining if item not in self._st_lengths}
            raise EncodingError(
                f"transaction contains unknown items {missing or remaining}"
            )
        return cover

    def _ensure_covered(self) -> None:
        if self._usages is not None:
            return
        usages: Dict[Itemset, int] = {key: 0 for key in self._supports}
        covers: List[List[Itemset]] = []
        for transaction in self._db:
            cover = self.cover(transaction)
            covers.append(cover)
            for itemset in cover:
                usages[itemset] += 1
        self._usages = usages
        self._covers = covers

    def usages(self) -> Dict[Itemset, int]:
        """Itemset -> usage count over the database cover."""
        self._ensure_covered()
        return dict(self._usages)

    def covers(self) -> List[List[Itemset]]:
        """The cover (partition) of each transaction."""
        self._ensure_covered()
        return [list(c) for c in self._covers]

    # ------------------------------------------------------------------
    # MDL
    # ------------------------------------------------------------------

    def st_length(self, item: Item) -> float:
        try:
            return self._st_lengths[item]
        except KeyError:
            raise EncodingError(f"unknown item {item!r}") from None

    def code_length(self, itemset: Iterable[Item]) -> float:
        """``L(X) = -log2(usage / total_usage)``; inf for unused sets."""
        self._ensure_covered()
        key = frozenset(itemset)
        usage = self._usages.get(key)
        if usage is None:
            raise EncodingError(f"itemset {set(key)} not in code table")
        total = sum(self._usages.values())
        if usage == 0 or total == 0:
            return math.inf
        return -math.log2(usage / total)

    def description_length(self) -> Tuple[float, float]:
        """``(L(CT|D), L(D|CT))`` in bits.

        Unused itemsets do not contribute (Krimp prices only in-use
        entries).
        """
        self._ensure_covered()
        total_usage = sum(self._usages.values())
        model_bits = 0.0
        data_bits = 0.0
        for itemset, usage in self._usages.items():
            if usage == 0:
                continue
            length = -math.log2(usage / total_usage)
            model_bits += length + sum(self._st_lengths[i] for i in itemset)
            data_bits += usage * length
        return model_bits, data_bits

    def total_bits(self) -> float:
        model_bits, data_bits = self.description_length()
        return model_bits + data_bits

    def __repr__(self) -> str:
        return (
            f"ItemsetCodeTable(itemsets={len(self._supports)}, "
            f"non_singletons={len(self.non_singletons())})"
        )
