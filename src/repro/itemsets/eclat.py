"""Eclat frequent-itemset mining (candidate source for Krimp).

Krimp requires a pre-mined candidate collection — the very property the
paper criticises (CSPM finds candidates on the fly).  We implement the
classic vertical-representation depth-first miner.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, List, Set, Tuple

from repro.errors import MiningError
from repro.itemsets.transactions import TransactionDatabase

Item = Hashable
Itemset = FrozenSet[Item]


def frequent_itemsets(
    database: TransactionDatabase,
    min_support: int = 2,
    max_size: int = 6,
    max_itemsets: int = 100_000,
) -> List[Tuple[Itemset, int]]:
    """All itemsets with support >= ``min_support`` and size <= ``max_size``.

    Returns ``(itemset, support)`` pairs.  ``max_itemsets`` bounds the
    output as a safety valve for dense databases.
    """
    if min_support < 1:
        raise MiningError("min_support must be >= 1")
    if max_size < 1:
        raise MiningError("max_size must be >= 1")
    items = [
        (item, database.tidlist(item))
        for item in database.items
        if len(database.tidlist(item)) >= min_support
    ]
    items.sort(key=lambda pair: (len(pair[1]), repr(pair[0])))
    results: List[Tuple[Itemset, int]] = []

    def recurse(prefix: Tuple[Item, ...], prefix_tids: Set[int], suffix) -> None:
        for index, (item, tids) in enumerate(suffix):
            if len(results) >= max_itemsets:
                return
            joined = prefix_tids & tids if prefix else set(tids)
            if len(joined) < min_support:
                continue
            itemset = prefix + (item,)
            results.append((frozenset(itemset), len(joined)))
            if len(itemset) < max_size:
                recurse(itemset, joined, suffix[index + 1 :])

    recurse((), set(), items)
    return results
