"""Krimp: mining itemsets that compress (Vreeken et al., 2011).

The classic two-phase procedure the paper builds on (Section II/III):

1. mine frequent itemsets with an external algorithm (here: Eclat);
2. consider them in *standard candidate order* (support desc, size
   desc, lexicographic) and greedily keep each candidate in the code
   table iff it lowers the total description length.

Note Krimp is **not** parameter-free — ``min_support`` shapes the
candidate collection, which is exactly the drawback CSPM avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.itemsets.code_table import ItemsetCodeTable, _lex_key
from repro.itemsets.eclat import frequent_itemsets
from repro.itemsets.transactions import TransactionDatabase


@dataclass
class KrimpReport:
    """Outcome of a Krimp run."""

    code_table: ItemsetCodeTable
    initial_bits: float = 0.0
    final_bits: float = 0.0
    candidates_considered: int = 0
    accepted: List[frozenset] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        if self.initial_bits <= 0:
            return 1.0
        return self.final_bits / self.initial_bits


class KrimpMiner:
    """Greedy MDL selection over a pre-mined candidate collection.

    Parameters
    ----------
    min_support / max_size:
        Candidate generation knobs forwarded to Eclat.
    prune:
        Whether to attempt removing previously accepted itemsets whose
        usage dropped (Krimp's post-acceptance pruning).
    """

    def __init__(
        self, min_support: int = 2, max_size: int = 6, prune: bool = True
    ) -> None:
        self.min_support = min_support
        self.max_size = max_size
        self.prune = prune

    def fit(self, database: TransactionDatabase) -> KrimpReport:
        """Run Krimp and return the report (with the final code table)."""
        code_table = ItemsetCodeTable(database)
        report = KrimpReport(code_table=code_table)
        report.initial_bits = code_table.total_bits()
        candidates = self._candidates(database)
        report.candidates_considered = len(candidates)
        best_bits = report.initial_bits
        for itemset, _support in candidates:
            if itemset in code_table:
                continue
            code_table.add(itemset)
            bits = code_table.total_bits()
            if bits < best_bits - 1e-9:
                best_bits = bits
                report.accepted.append(itemset)
                if self.prune:
                    best_bits = self._prune(code_table, report, best_bits)
            else:
                code_table.remove(itemset)
        report.final_bits = best_bits
        return report

    def _candidates(self, database: TransactionDatabase) -> List[Tuple[frozenset, int]]:
        """Non-singleton frequent itemsets in standard candidate order."""
        mined = [
            (itemset, support)
            for itemset, support in frequent_itemsets(
                database, min_support=self.min_support, max_size=self.max_size
            )
            if len(itemset) > 1
        ]
        mined.sort(key=lambda pair: (-pair[1], -len(pair[0]), _lex_key(pair[0])))
        return mined

    def _prune(
        self, code_table: ItemsetCodeTable, report: KrimpReport, best_bits: float
    ) -> float:
        """Drop previously accepted itemsets that no longer pay off."""
        usages = code_table.usages()
        for candidate in sorted(
            (x for x in code_table.non_singletons() if usages.get(x, 0) == 0),
            key=_lex_key,
        ):
            code_table.remove(candidate)
            bits = code_table.total_bits()
            if bits <= best_bits + 1e-9:
                best_bits = min(best_bits, bits)
                if candidate in report.accepted:
                    report.accepted.remove(candidate)
            else:
                code_table.add(candidate)
        return best_bits
