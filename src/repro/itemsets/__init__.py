"""MDL itemset mining: Krimp and SLIM, built from scratch.

These serve three roles in the reproduction:

* the optional multi-value coreset encoder of CSPM (Section IV-F,
  step 1: "a traditional compressing pattern mining algorithm can be
  applied on a transaction database composed of the attribute values of
  vertices — several algorithms can be used such as Krimp and SLIM");
* the SLIM runtime baseline of Table III;
* a reference MDL system whose invariants (cover partitions, DL
  monotonicity) mirror CSPM's and are tested the same way.
"""

from repro.itemsets.code_table import ItemsetCodeTable
from repro.itemsets.krimp import KrimpMiner
from repro.itemsets.slim import SlimMiner
from repro.itemsets.transactions import TransactionDatabase

__all__ = [
    "ItemsetCodeTable",
    "KrimpMiner",
    "SlimMiner",
    "TransactionDatabase",
    "cover_database",
    "mine_code_table",
]


def mine_code_table(transactions, algorithm: str = "slim", **kwargs):
    """Mine an :class:`ItemsetCodeTable` with SLIM or Krimp.

    ``transactions`` is an iterable of value iterables.  Extra keyword
    arguments are forwarded to the chosen miner.
    """
    database = TransactionDatabase(transactions)
    if algorithm == "slim":
        return SlimMiner(**kwargs).fit(database).code_table
    if algorithm == "krimp":
        return KrimpMiner(**kwargs).fit(database).code_table
    raise ValueError(f"unknown itemset algorithm {algorithm!r}")


def cover_database(code_table, transactions):
    """Cover each transaction with the code table (list of itemsets)."""
    return [code_table.cover(frozenset(t)) for t in transactions]
