"""SLIM: directly mining descriptive patterns (Smets & Vreeken, 2012).

SLIM is the on-the-fly variant of Krimp that inspired CSPM's candidate
generation (paper, Section II): instead of a pre-mined candidate
collection, each round considers *pairwise unions* of code table
elements, ranked by an estimated gain from their co-usage in the
current cover, and accepts the best union that actually lowers the
total description length.

This implementation follows that loop:

1. cover the database, count pairwise co-usage of cover elements;
2. estimate each union's gain from usage counts alone (cheap);
3. try candidates in descending estimated gain; accept the first whose
   *actual* recomputed DL improves, then repeat;
4. stop when no candidate improves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Tuple

from repro.itemsets.code_table import ItemsetCodeTable, _lex_key
from repro.itemsets.transactions import TransactionDatabase

Item = Hashable
Itemset = FrozenSet[Item]


def _xlog2x(x: float) -> float:
    if x <= 0:
        return 0.0
    return x * math.log2(x)


@dataclass
class SlimReport:
    """Outcome of a SLIM run."""

    code_table: ItemsetCodeTable
    initial_bits: float = 0.0
    final_bits: float = 0.0
    rounds: int = 0
    accepted: List[Itemset] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        if self.initial_bits <= 0:
            return 1.0
        return self.final_bits / self.initial_bits


class SlimMiner:
    """On-the-fly MDL itemset mining by pairwise code-table unions.

    Parameters
    ----------
    max_rounds:
        Safety cap on accepted candidates (``None`` = to convergence).
    max_trials_per_round:
        How many top estimated candidates to verify exactly per round
        before declaring convergence.
    """

    def __init__(self, max_rounds: int = None, max_trials_per_round: int = 25) -> None:
        self.max_rounds = max_rounds
        self.max_trials_per_round = max_trials_per_round

    def fit(self, database: TransactionDatabase) -> SlimReport:
        """Run SLIM and return the report (with the final code table)."""
        code_table = ItemsetCodeTable(database)
        report = SlimReport(code_table=code_table)
        best_bits = code_table.total_bits()
        report.initial_bits = best_bits
        while self.max_rounds is None or report.rounds < self.max_rounds:
            improved = False
            for union in self._ranked_candidates(code_table):
                if union in code_table:
                    continue
                code_table.add(union)
                bits = code_table.total_bits()
                if bits < best_bits - 1e-9:
                    best_bits = bits
                    report.accepted.append(union)
                    report.rounds += 1
                    improved = True
                    break
                code_table.remove(union)
            if not improved:
                break
        report.final_bits = best_bits
        return report

    # ------------------------------------------------------------------

    def _ranked_candidates(self, code_table: ItemsetCodeTable) -> List[Itemset]:
        """Top candidate unions by estimated gain (desc)."""
        co_usage = self._co_usage(code_table)
        usages = code_table.usages()
        total_usage = sum(usages.values())
        scored: List[Tuple[float, Tuple, Itemset]] = []
        for (x, y), xy in co_usage.items():
            if xy < 2:
                continue
            estimate = self._estimated_gain(usages[x], usages[y], xy, total_usage)
            if estimate <= 0:
                continue
            union = x | y
            scored.append((estimate, _lex_key(union), union))
        scored.sort(key=lambda entry: (-entry[0], entry[1]))
        seen = set()
        ranked = []
        for _estimate, _key, union in scored:
            if union in seen:
                continue
            seen.add(union)
            ranked.append(union)
            if len(ranked) >= self.max_trials_per_round:
                break
        return ranked

    @staticmethod
    def _co_usage(code_table: ItemsetCodeTable) -> Dict[Tuple[Itemset, Itemset], int]:
        """How often two cover elements co-occur in a transaction cover."""
        counts: Dict[Tuple[Itemset, Itemset], int] = {}
        for cover in code_table.covers():
            ordered = sorted(cover, key=_lex_key)
            for i, x in enumerate(ordered):
                for y in ordered[i + 1 :]:
                    counts[(x, y)] = counts.get((x, y), 0) + 1
        return counts

    @staticmethod
    def _estimated_gain(x_usage: int, y_usage: int, xy: int, total: int) -> float:
        """Estimated data-cost delta of adding ``x | y`` (bits saved).

        Assumes the union takes over all ``xy`` co-usages, so
        ``x``/``y`` usages drop by ``xy`` and the total usage drops by
        ``xy`` as well — the same accounting that is exact in CSPM's
        inverted database (Eq. 9-15).
        """
        new_total = total - xy
        old_cost = (
            _xlog2x(total)
            - _xlog2x(x_usage)
            - _xlog2x(y_usage)
        )
        new_cost = (
            _xlog2x(new_total)
            - _xlog2x(x_usage - xy)
            - _xlog2x(y_usage - xy)
            - _xlog2x(xy)
        )
        return old_cost - new_cost


def slim_on_graph(graph, **kwargs) -> SlimReport:
    """Run SLIM on an attributed graph, the way Table III's baseline does.

    Each adjacency-list tuple (a star) becomes one transaction holding
    the attribute values of the core and its leaves.
    """
    transactions = []
    for vertex in graph.vertices():
        values = set(graph.attributes_of(vertex)) | set(graph.neighbor_values(vertex))
        if values:
            transactions.append(values)
    database = TransactionDatabase(transactions)
    return SlimMiner(**kwargs).fit(database)
