"""Transaction databases for the itemset miners."""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Set

from repro.errors import MiningError

Item = Hashable
Itemset = FrozenSet[Item]


class TransactionDatabase:
    """An immutable list of transactions (sets of items).

    Keeps the vertical representation (item -> transaction ids) used by
    support counting and the Eclat candidate miner.
    """

    def __init__(self, transactions: Iterable[Iterable[Item]]) -> None:
        self._transactions: List[Itemset] = [
            frozenset(t) for t in transactions
        ]
        if not self._transactions:
            raise MiningError("transaction database is empty")
        self._tidlists: Dict[Item, Set[int]] = {}
        for tid, transaction in enumerate(self._transactions):
            for item in transaction:
                self._tidlists.setdefault(item, set()).add(tid)
        if not self._tidlists:
            raise MiningError("all transactions are empty")

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._transactions)

    def __getitem__(self, tid: int) -> Itemset:
        return self._transactions[tid]

    @property
    def items(self) -> List[Item]:
        """All distinct items, in deterministic order."""
        return sorted(self._tidlists, key=repr)

    def item_frequencies(self) -> Counter:
        """Item -> number of transactions containing it."""
        return Counter({item: len(tids) for item, tids in self._tidlists.items()})

    def total_item_occurrences(self) -> int:
        return sum(len(t) for t in self._transactions)

    def tidlist(self, item: Item) -> FrozenSet[int]:
        return frozenset(self._tidlists.get(item, ()))

    def support(self, itemset: Iterable[Item]) -> int:
        """Number of transactions containing every item of ``itemset``."""
        tids: Set[int] = None  # type: ignore[assignment]
        for item in itemset:
            item_tids = self._tidlists.get(item)
            if not item_tids:
                return 0
            tids = set(item_tids) if tids is None else tids & item_tids
            if not tids:
                return 0
        if tids is None:
            return len(self._transactions)
        return len(tids)
