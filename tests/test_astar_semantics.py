"""Edge-case tests for the AStar pattern type."""

import pytest

from repro.core.astar import AStar
from repro.graphs.attributed_graph import AttributedGraph


@pytest.fixture()
def graph():
    return AttributedGraph.from_edges(
        [(0, 1), (1, 2)],
        {0: {"x"}, 1: {"y"}, 2: {"x", "z"}},
    )


class TestMatching:
    def test_requires_all_core_values(self, graph):
        star = AStar(coreset={"x", "z"}, leafset={"y"})
        assert star.matches_at(graph, 2)
        assert not star.matches_at(graph, 0)

    def test_leaf_values_may_split_across_neighbours(self, graph):
        star = AStar(coreset={"y"}, leafset={"x", "z"})
        assert star.matches_at(graph, 1)

    def test_missing_leaf_value_fails(self, graph):
        star = AStar(coreset={"x"}, leafset={"z"})
        assert not star.matches_at(graph, 0)  # neighbour 1 has only y

    def test_empty_leafset_matches_trivially(self, graph):
        star = AStar(coreset={"x"}, leafset=set())
        assert star.matches_at(graph, 0)

    def test_isolated_vertex_only_matches_empty_leafset(self):
        isolated = AttributedGraph()
        isolated.add_vertex(9)
        isolated.set_attributes(9, {"x"})
        assert AStar(coreset={"x"}, leafset=set()).matches_at(isolated, 9)
        assert not AStar(coreset={"x"}, leafset={"y"}).matches_at(isolated, 9)


class TestValueSemantics:
    def test_sets_coerced_to_frozensets(self):
        star = AStar(coreset={"a"}, leafset={"b"})
        assert isinstance(star.coreset, frozenset)
        assert isinstance(star.leafset, frozenset)

    def test_equality_ignores_code_length(self):
        left = AStar(coreset={"a"}, leafset={"b"}, frequency=1,
                     coreset_frequency=2, code_length=1.0)
        right = AStar(coreset={"a"}, leafset={"b"}, frequency=1,
                      coreset_frequency=2, code_length=9.0)
        assert left == right

    def test_hashable(self):
        star = AStar(coreset={"a"}, leafset={"b"})
        assert star in {star}

    def test_confidence_degenerate(self):
        assert AStar(coreset={"a"}, leafset={"b"}).confidence == 0.0

    def test_sort_key_orders_by_code_then_sets(self):
        short = AStar(coreset={"a"}, leafset={"b"}, code_length=1.0)
        long = AStar(coreset={"a"}, leafset={"b"}, code_length=2.0)
        assert short.sort_key() < long.sort_key()
