"""Tests of the two search procedures and their equivalence.

The headline invariants:

* both variants converge to a state where no pair has positive gain;
* CSPM-Basic and CSPM-Partial (exhaustive scope) reach identical DL;
* every accepted merge strictly decreases the tracked DL, and the
  incremental DL equals a from-scratch recomputation at termination.
"""

import pytest

from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_basic import run_basic
from repro.core.cspm_partial import run_partial
from repro.core.gain import pair_gain
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import description_length
from repro.errors import MiningError
from repro.graphs.generators import PlantedAStar, planted_astar_graph


def setup(graph):
    return (
        InvertedDatabase.from_graph(graph),
        StandardCodeTable.from_graph(graph),
        CoreCodeTable.singletons_from_graph(graph),
    )


def random_graph(seed):
    graph, _ = planted_astar_graph(
        50,
        120,
        [
            PlantedAStar("p", ("q", "r"), strength=0.9),
            PlantedAStar("s", ("t",), strength=0.85),
        ],
        noise_values=("n1", "n2"),
        noise_rate=0.2,
        seed=seed,
    )
    return graph


class TestBasic:
    def test_paper_graph_final_dl(self, paper_graph):
        db, standard, core = setup(paper_graph)
        trace = run_basic(db, standard, core)
        assert trace.num_iterations == 2
        assert trace.final_dl_bits == pytest.approx(55.201097653, abs=1e-6)

    def test_dl_strictly_decreases(self, paper_graph):
        db, standard, core = setup(paper_graph)
        trace = run_basic(db, standard, core)
        dls = [trace.initial_dl_bits] + [t.total_dl_bits for t in trace.iterations]
        assert all(later < earlier for earlier, later in zip(dls, dls[1:]))

    def test_tracked_dl_matches_reference(self, paper_graph):
        db, standard, core = setup(paper_graph)
        trace = run_basic(db, standard, core)
        reference = description_length(db, standard, core).total_bits
        assert trace.final_dl_bits == pytest.approx(reference, abs=1e-6)

    def test_no_positive_pair_remains(self, paper_graph):
        db, standard, core = setup(paper_graph)
        run_basic(db, standard, core)
        leafsets = db.leafsets()
        for i, leaf_x in enumerate(leafsets):
            for leaf_y in leafsets[i + 1 :]:
                gain = pair_gain(db, leaf_x, leaf_y, standard, core)
                assert gain.net(True) <= 1e-9

    def test_max_iterations_caps_merges(self, paper_graph):
        db, standard, core = setup(paper_graph)
        trace = run_basic(db, standard, core, max_iterations=1)
        assert trace.num_iterations == 1


class TestPartial:
    @pytest.mark.parametrize("scope", ["lazy", "exhaustive"])
    @pytest.mark.parametrize("seed", range(5))
    def test_model_preserving_scopes_match_basic(self, seed, scope):
        graph = random_graph(seed)
        db_b, standard, core = setup(graph)
        trace_b = run_basic(db_b, standard, core)
        db_p, _, _ = setup(graph)
        trace_p = run_partial(db_p, standard, core, update_scope=scope)
        assert trace_p.final_dl_bits == pytest.approx(
            trace_b.final_dl_bits, abs=1e-6
        )
        assert db_p.snapshot() == db_b.snapshot()

    def test_related_scope_never_beats_basic(self):
        graph = random_graph(7)
        db_b, standard, core = setup(graph)
        trace_b = run_basic(db_b, standard, core)
        db_r, _, _ = setup(graph)
        trace_r = run_partial(db_r, standard, core, update_scope="related")
        assert trace_r.final_dl_bits >= trace_b.final_dl_bits - 1e-6

    def test_partial_dl_matches_reference(self):
        graph = random_graph(3)
        db, standard, core = setup(graph)
        trace = run_partial(db, standard, core)
        reference = description_length(db, standard, core).total_bits
        assert trace.final_dl_bits == pytest.approx(reference, abs=1e-6)

    def test_invalid_scope_rejected(self, paper_graph):
        db, standard, core = setup(paper_graph)
        with pytest.raises(MiningError):
            run_partial(db, standard, core, update_scope="bogus")

    def test_database_valid_after_search(self):
        graph = random_graph(11)
        db, standard, core = setup(graph)
        run_partial(db, standard, core)
        db.validate(graph)

    def test_without_model_cost_compresses_at_least_as_much_data(
        self, paper_graph
    ):
        db_with, standard, core = setup(paper_graph)
        run_partial(db_with, standard, core, include_model_cost=True)
        db_without, _, _ = setup(paper_graph)
        run_partial(db_without, standard, core, include_model_cost=False)
        with_bits = description_length(db_with, standard, core).data_leaf_bits
        without_bits = description_length(db_without, standard, core).data_leaf_bits
        assert without_bits <= with_bits + 1e-9


class TestInstrumentation:
    def test_partial_updates_fewer_gains_than_basic(self):
        graph = random_graph(5)
        db_b, standard, core = setup(graph)
        trace_b = run_basic(db_b, standard, core)
        db_p, _, _ = setup(graph)
        trace_p = run_partial(db_p, standard, core)
        assert trace_p.total_gain_computations < trace_b.total_gain_computations

    def test_update_ratios_within_unit_interval(self):
        graph = random_graph(6)
        db, standard, core = setup(graph)
        trace = run_partial(db, standard, core)
        ratios = trace.update_ratios()
        assert ratios
        assert all(0.0 <= ratio <= 1.0 for ratio in ratios)

    def test_basic_full_scan_ratio_is_one(self, paper_graph):
        # The reference configuration: quadratic enumeration with the
        # seed's re-scan-everything strategy touches every pair.
        db, standard, core = setup(paper_graph)
        trace = run_basic(db, standard, core, pair_source="full", rescan="full")
        assert all(t.update_ratio == 1.0 for t in trace.iterations)

    def test_basic_restricted_rescan_never_exceeds_full(self, paper_graph):
        # The touched-neighbourhood rescan computes at most as many
        # gains per iteration as the full re-enumeration.
        trace = run_basic(*setup(paper_graph), rescan="restricted")
        full = run_basic(*setup(paper_graph), rescan="full")
        for restricted_it, full_it in zip(trace.iterations, full.iterations):
            assert restricted_it.gains_computed <= full_it.gains_computed

    def test_basic_rejects_unknown_rescan(self, paper_graph):
        with pytest.raises(MiningError, match="rescan"):
            run_basic(*setup(paper_graph), rescan="partial")

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_basic_restricted_rescan_bit_exact(self, seed):
        # Satellite regression: the touched-neighbourhood rescan must
        # reproduce the full re-enumeration bit-for-bit — identical
        # merge sequence, DL floats and final database — with only the
        # per-iteration gain-computation counters allowed to differ.
        graph = random_graph(seed)
        traces = {}
        snapshots = {}
        for rescan in ("restricted", "full"):
            db, standard, core = setup(graph)
            traces[rescan] = run_basic(db, standard, core, rescan=rescan)
            snapshots[rescan] = db.snapshot()
        assert snapshots["restricted"] == snapshots["full"]
        restricted, full = traces["restricted"], traces["full"]
        assert restricted.initial_dl_bits == full.initial_dl_bits
        assert restricted.final_dl_bits == full.final_dl_bits
        assert restricted.initial_candidate_gains == full.initial_candidate_gains
        assert len(restricted.iterations) == len(full.iterations)
        for left, right in zip(restricted.iterations, full.iterations):
            assert left.merged_pair == right.merged_pair
            assert left.gain == right.gain
            assert left.total_dl_bits == right.total_dl_bits
            assert left.gains_computed <= right.gains_computed

    def test_basic_overlap_scan_never_exceeds_full(self, paper_graph):
        # Overlap-driven generation touches at most all possible pairs.
        db, standard, core = setup(paper_graph)
        trace = run_basic(db, standard, core)
        assert all(t.gains_computed <= t.possible_pairs for t in trace.iterations)
        assert all(0.0 < t.update_ratio <= 1.0 for t in trace.iterations)

    def test_partial_records_peak_queue_size(self):
        graph = random_graph(4)
        db, standard, core = setup(graph)
        trace = run_partial(db, standard, core)
        assert trace.peak_queue_size >= 1
        basic_trace = run_basic(*setup(graph))
        assert basic_trace.peak_queue_size == 0  # no queue in basic

    def test_compression_ratio_below_one(self):
        graph = random_graph(8)
        db, standard, core = setup(graph)
        trace = run_partial(db, standard, core)
        assert 0.0 < trace.compression_ratio < 1.0
