"""CLI tests for the ``mine`` subcommand, including the --json golden file.

The golden file pins the exact serialised output of ``mine --json`` on
the paper's running example — config, ranked a-stars, trace and DL
accounting.  If an intentional change to the output format or to the
MDL accounting moves it, regenerate with::

    PYTHONPATH=src python -m repro.cli mine <paper_graph.json> --json \
        > tests/data/mine_paper_golden.json
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import CSPMConfig
from repro.graphs.builders import paper_running_example
from repro.graphs.io import save_json

DATA_DIR = Path(__file__).parent / "data"


@pytest.fixture()
def paper_graph_file(tmp_path):
    path = tmp_path / "paper.json"
    save_json(paper_running_example(), path)
    return str(path)


class TestMineJson:
    def test_golden_file(self, paper_graph_file, capsys):
        assert main(["mine", paper_graph_file, "--json"]) == 0
        out = capsys.readouterr().out
        golden = (DATA_DIR / "mine_paper_golden.json").read_text()
        assert out == golden

    def test_output_is_valid_json_with_config(self, paper_graph_file, capsys):
        main(["mine", paper_graph_file, "--json", "--top", "3"])
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == 1
        config = CSPMConfig.from_dict(document["config"])
        assert config.top_k == 3
        assert len(document["astars"]) <= 3

    def test_round_trips_through_result(self, paper_graph_file, capsys):
        from repro import CSPM, CSPMResult

        main(["mine", paper_graph_file, "--json", "--top", "0"])
        restored = CSPMResult.from_json(capsys.readouterr().out)
        reference = CSPM().fit(paper_running_example())
        assert restored.astars == reference.astars
        assert restored.final_dl == reference.final_dl

    def test_json_default_serialises_everything(self, paper_graph_file, capsys):
        from repro import CSPM

        main(["mine", paper_graph_file, "--json"])
        document = json.loads(capsys.readouterr().out)
        assert document["config"]["top_k"] is None
        reference = CSPM().fit(paper_running_example())
        assert len(document["astars"]) == len(reference.astars)

    def test_method_and_scope_flow_into_config(self, paper_graph_file, capsys):
        main(
            [
                "mine",
                paper_graph_file,
                "--json",
                "--method",
                "basic",
                "--scope",
                "related",
            ]
        )
        document = json.loads(capsys.readouterr().out)
        assert document["config"]["method"] == "basic"
        assert document["trace"]["algorithm"].startswith("cspm-basic")


class TestMineText:
    def test_summary_and_stars_printed(self, paper_graph_file, capsys):
        assert main(["mine", paper_graph_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("CSPM (cspm-partial")
        assert "->" in out

    def test_min_leafset_filter_applies(self, paper_graph_file, capsys):
        main(["mine", paper_graph_file, "--min-leafset", "2"])
        out = capsys.readouterr().out
        star_lines = [l for l in out.splitlines() if l.startswith("  (")]
        for line in star_lines:
            leaf = line.split("-> {", 1)[1].split("}", 1)[0]
            assert len(leaf.split(",")) >= 2
