"""Overlap-driven candidate generation: equivalence and maintenance.

The headline guarantee: searching with the sparse-aware generator
(:func:`repro.core.pairgen.overlap_pairs`) is *bit-exact* with the
quadratic full scan — identical merge sequences and identical final DL
— for both CSPM-Basic and CSPM-Partial/exhaustive, on many randomized
graphs.  Alongside: unit tests of the incremental adjacency/id-list
maintenance in :class:`InvertedDatabase.merge` (row-vanishing and
partial-survivor cases) and of the generator's ordering contract.
"""

import pytest

from repro.core.candidates import enumerate_pairs
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_basic import run_basic
from repro.core.cspm_partial import run_partial
from repro.core.gain import pair_gain
from repro.core.inverted_db import InvertedDatabase
from repro.core.pairgen import generate_pairs, overlap_pairs
from repro.datasets.synthetic import community_attributed_graph
from repro.errors import MiningError
from repro.graphs.builders import star_graph
from repro.graphs.generators import PlantedAStar, planted_astar_graph


def fs(*values):
    return frozenset(values)


def setup(graph):
    return (
        InvertedDatabase.from_graph(graph),
        StandardCodeTable.from_graph(graph),
        CoreCodeTable.singletons_from_graph(graph),
    )


def planted_graph(seed, noise_rate=0.2):
    graph, _ = planted_astar_graph(
        40,
        90,
        [
            PlantedAStar("p", ("q", "r"), strength=0.9),
            PlantedAStar("s", ("t", "u"), strength=0.8),
        ],
        noise_values=("n1", "n2", "n3"),
        noise_rate=noise_rate,
        seed=seed,
    )
    return graph


def community_graph(seed, communities=6, pool=5):
    pools = [[f"c{c}v{i}" for i in range(pool)] for c in range(communities)]
    return community_attributed_graph(
        [12] * communities,
        pools,
        values_per_vertex=(2, 3),
        intra_degree=2.5,
        inter_degree=0.2,
        seed=seed,
    )


def merge_sequence(trace):
    return [t.merged_pair for t in trace.iterations]


class TestGeneratorContract:
    def test_sorted_by_interned_ids(self, paper_db):
        interner = paper_db.interner
        pairs = overlap_pairs(paper_db)
        keys = [interner.pair_key(pair) for pair in pairs]
        assert keys == sorted(keys)
        assert all(key[0] < key[1] for key in keys)

    def test_subset_of_full_scan(self):
        db, _, _ = setup(community_graph(0))
        full = set(enumerate_pairs(db.leafsets(), interner=db.interner))
        overlap = set(overlap_pairs(db))
        assert overlap <= full

    @pytest.mark.parametrize("seed", range(4))
    def test_omitted_pairs_have_zero_gain(self, seed):
        graph = community_graph(seed)
        db, standard, core = setup(graph)
        overlap = set(overlap_pairs(db))
        for pair in enumerate_pairs(db.leafsets(), interner=db.interner):
            if pair not in overlap:
                gain = pair_gain(db, *pair, standard, core)
                assert gain.data_leaf_gain == 0.0
                assert gain.data_core_gain == 0.0

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_union_mask_brute_force(self, seed):
        # Both enumeration strategies must equal the exact overlap
        # predicate: union masks intersect.  community_graph picks the
        # adjacency walk, planted_graph (small value universe) the mask
        # sweep; the predicate is strategy-independent.
        for graph in (community_graph(seed), planted_graph(seed)):
            db, _, _ = setup(graph)
            expected = [
                pair
                for pair in enumerate_pairs(db.leafsets(), interner=db.interner)
                if db.leaf_union_mask(pair[0]) & db.leaf_union_mask(pair[1])
            ]
            assert overlap_pairs(db) == expected

    def test_still_exact_after_merges(self):
        db, standard, core = setup(community_graph(1))
        run_partial(db.copy(), standard, core)  # sanity: converges
        for _ in range(5):
            pairs = overlap_pairs(db)
            best = None
            for pair in pairs:
                gain = pair_gain(db, *pair, standard, core).net(True)
                if gain > 1e-9 and (best is None or gain > best[1]):
                    best = (pair, gain)
            if best is None:
                break
            db.merge(*best[0])
            expected = [
                pair
                for pair in enumerate_pairs(db.leafsets(), interner=db.interner)
                if db.leaf_union_mask(pair[0]) & db.leaf_union_mask(pair[1])
            ]
            assert overlap_pairs(db) == expected

    def test_generate_pairs_rejects_unknown_source(self, paper_db):
        with pytest.raises(MiningError):
            generate_pairs(paper_db, "bogus")

    def test_disjoint_leafsets_yield_nothing(self):
        # {x} lives only at the core vertex, {c} only at the leaves:
        # no shared coreset, disjoint unions, no candidates.
        db, _, _ = setup(star_graph(["c"], [["x"], ["x"]]))
        assert len(db.leafsets()) == 2
        assert overlap_pairs(db) == []


class TestSearchEquivalence:
    """Overlap-driven search is bit-exact with the full scan."""

    @pytest.mark.parametrize("seed", range(10))
    def test_basic_same_merges_and_dl(self, seed):
        graph = planted_graph(seed) if seed % 2 else community_graph(seed)
        db_full, standard, core = setup(graph)
        trace_full = run_basic(db_full, standard, core, pair_source="full")
        db_overlap, _, _ = setup(graph)
        trace_overlap = run_basic(db_overlap, standard, core, pair_source="overlap")
        assert merge_sequence(trace_overlap) == merge_sequence(trace_full)
        assert trace_overlap.final_dl_bits == trace_full.final_dl_bits
        assert db_overlap.snapshot() == db_full.snapshot()
        assert (
            trace_overlap.initial_candidate_gains
            <= trace_full.initial_candidate_gains
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_partial_exhaustive_same_merges_and_dl(self, seed):
        graph = community_graph(seed) if seed % 2 else planted_graph(seed)
        db_full, standard, core = setup(graph)
        trace_full = run_partial(db_full, standard, core, pair_source="full")
        db_overlap, _, _ = setup(graph)
        trace_overlap = run_partial(db_overlap, standard, core, pair_source="overlap")
        assert merge_sequence(trace_overlap) == merge_sequence(trace_full)
        assert trace_overlap.final_dl_bits == trace_full.final_dl_bits
        assert db_overlap.snapshot() == db_full.snapshot()

    @pytest.mark.parametrize("seed", [0, 3, 6])
    def test_partial_related_scope_same_merges(self, seed):
        graph = community_graph(seed)
        db_full, standard, core = setup(graph)
        trace_full = run_partial(
            db_full, standard, core, update_scope="related", pair_source="full"
        )
        db_overlap, _, _ = setup(graph)
        trace_overlap = run_partial(
            db_overlap, standard, core, update_scope="related", pair_source="overlap"
        )
        assert merge_sequence(trace_overlap) == merge_sequence(trace_full)
        assert trace_overlap.final_dl_bits == trace_full.final_dl_bits

    def test_sparse_seeding_is_cheaper(self):
        db, standard, core = setup(community_graph(2, communities=10))
        trace_full = run_partial(db.copy(), standard, core, pair_source="full")
        trace_overlap = run_partial(db.copy(), standard, core, pair_source="overlap")
        assert (
            trace_overlap.initial_candidate_gains
            < trace_full.initial_candidate_gains / 2
        )


class TestIncrementalAdjacency:
    """merge() keeps the coreset id-lists and interner in sync."""

    def test_initial_index_matches_adjacency(self, paper_db):
        paper_db.validate()
        index = paper_db.coreset_leaf_ids()
        adjacency = paper_db.coreset_leafset_index()
        assert set(index) == set(adjacency)
        for core, leaves in adjacency.items():
            assert index[core] == sorted(
                paper_db.interner.intern(leaf) for leaf in leaves
            )

    def test_partial_survivor_keeps_ids(self, paper_db):
        # Fig. 4: merging {b} and {c} leaves survivors under some
        # coresets; the merged leafset id must appear exactly where the
        # new row exists and survivors stay listed where rows remain.
        outcome = paper_db.merge(fs("b"), fs("c"))
        paper_db.validate()
        new_id = paper_db.interner.intern(outcome.new_leafset)
        for core, leaves in paper_db.coreset_leafset_index().items():
            ids = paper_db.coreset_leaf_ids()[core]
            assert (new_id in ids) == (outcome.new_leafset in leaves)

    def test_row_vanishing_removes_ids(self):
        # Total merge: every x-row and y-row disappears, so both ids
        # must vanish from every coreset list.
        graph = star_graph(["c"], [["x", "y"], ["x", "y"]])
        db, _, _ = setup(graph)
        outcome = db.merge(fs("x"), fs("y"))
        assert outcome.removed_leafsets == {fs("x"), fs("y")}
        db.validate()
        id_x = db.interner.intern(fs("x"))
        id_y = db.interner.intern(fs("y"))
        for ids in db.coreset_leaf_ids().values():
            assert id_x not in ids
            assert id_y not in ids
        assert not db.has_leafset(fs("x"))

    def test_coreset_disappears_with_last_row(self):
        # One coreset whose only two rows merge totally: the coreset
        # keeps exactly the merged row's id.
        graph = star_graph(["c"], [["x"], ["y"]])
        db, _, _ = setup(graph)
        # x and y co-occur at the core vertex, so that pair (and only
        # that pair) is generated.
        assert overlap_pairs(db) == [(fs("x"), fs("y"))]
        db.merge(fs("x"), fs("y"))
        db.validate()
        index = db.coreset_leaf_ids()
        assert index[fs("c")] == [db.interner.intern(fs("x", "y"))]
        assert index[fs("x")] == [db.interner.intern(fs("c"))]
        assert fs("x") not in db.leafsets()

    @pytest.mark.parametrize("seed", range(5))
    def test_validate_after_random_merge_storm(self, seed):
        graph = community_graph(seed, communities=4)
        db, standard, core = setup(graph)
        run_partial(db, standard, core)
        db.validate(graph)

    def test_copy_isolates_index_and_interner(self, paper_db):
        clone = paper_db.copy()
        clone.merge(fs("b"), fs("c"))
        clone.validate()
        paper_db.validate()
        assert fs("b", "c") not in paper_db.interner
        assert all(
            fs("b", "c") not in leaves
            for leaves in paper_db.coreset_leafset_index().values()
        )
