"""Tests for neural modules, optimisers and losses."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.autograd import Tensor
from repro.nn.layers import (
    MLP,
    Dropout,
    GATConv,
    GCNConv,
    Linear,
    SAGEConv,
    Sequential,
    adjacency_with_self_loops,
    mean_adjacency,
    normalized_adjacency,
)
from repro.nn.losses import bce_with_logits, gaussian_kl, mse
from repro.nn.optim import SGD, Adam


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


PATH_ADJACENCY = np.array(
    [
        [0.0, 1.0, 0.0],
        [1.0, 0.0, 1.0],
        [0.0, 1.0, 0.0],
    ]
)


class TestStructureHelpers:
    def test_normalized_adjacency_symmetric(self):
        a_norm = normalized_adjacency(PATH_ADJACENCY)
        assert np.allclose(a_norm, a_norm.T)
        # Row of an isolated-with-self-loop vertex sums to 1.
        isolated = normalized_adjacency(np.zeros((2, 2)))
        assert np.allclose(isolated, np.eye(2))

    def test_mean_adjacency_rows_sum_to_one(self):
        a_mean = mean_adjacency(PATH_ADJACENCY)
        assert np.allclose(a_mean.sum(axis=1), [1.0, 1.0, 1.0])

    def test_mean_adjacency_isolated_row_zero(self):
        adjacency = np.zeros((2, 2))
        assert np.allclose(mean_adjacency(adjacency), 0.0)

    def test_self_loop_mask(self):
        mask = adjacency_with_self_loops(PATH_ADJACENCY)
        assert mask.dtype == bool
        assert mask[0, 0] and mask[0, 1] and not mask[0, 2]


class TestLayers:
    def test_linear_shapes_and_grad(self, rng):
        layer = Linear(4, 3, rng)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        out = layer(x)
        assert out.shape == (5, 3)
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_gcn_conv_propagates(self, rng):
        conv = GCNConv(2, 2, rng)
        a_norm = Tensor(normalized_adjacency(PATH_ADJACENCY))
        x = Tensor(np.eye(3, 2))
        out = conv(x, a_norm)
        assert out.shape == (3, 2)

    def test_sage_conv_concatenates(self, rng):
        conv = SAGEConv(3, 4, rng)
        x = Tensor(rng.normal(size=(3, 3)))
        out = conv(x, Tensor(mean_adjacency(PATH_ADJACENCY)))
        assert out.shape == (3, 4)

    def test_gat_attention_rows_normalised(self, rng):
        conv = GATConv(3, 4, rng)
        mask = adjacency_with_self_loops(PATH_ADJACENCY)
        x = Tensor(rng.normal(size=(3, 3)))
        out = conv(x, mask)
        assert out.shape == (3, 4)

    def test_gat_gradients_flow(self, rng):
        conv = GATConv(2, 2, rng)
        mask = adjacency_with_self_loops(PATH_ADJACENCY)
        x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        conv(x, mask).sum().backward()
        assert x.grad is not None
        assert conv.att_src.grad is not None

    def test_dropout_train_vs_eval(self, rng):
        layer = Dropout(0.5, rng)
        x = Tensor(np.ones((100, 10)))
        layer.train()
        dropped = layer(x).numpy()
        assert (dropped == 0).any()
        layer.eval()
        assert np.allclose(layer(x).numpy(), 1.0)

    def test_dropout_rate_validation(self, rng):
        with pytest.raises(ModelError):
            Dropout(1.0, rng)

    def test_sequential_and_mlp(self, rng):
        mlp = MLP([4, 8, 2], rng, final_activation="sigmoid")
        out = mlp(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)
        assert (out.numpy() > 0).all() and (out.numpy() < 1).all()

    def test_mlp_needs_two_sizes(self, rng):
        with pytest.raises(ModelError):
            MLP([4], rng)

    def test_module_parameter_collection(self, rng):
        model = Sequential(Linear(2, 3, rng), Linear(3, 1, rng))
        assert len(list(model.parameters())) == 4  # 2 weights + 2 biases


class TestOptimisers:
    def _quadratic_step(self, optimizer_factory):
        x = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = optimizer_factory([x])
        for _ in range(200):
            optimizer.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            optimizer.step()
        return float(x.data[0])

    def test_sgd_converges(self):
        final = self._quadratic_step(lambda p: SGD(p, lr=0.1))
        assert abs(final) < 1e-3

    def test_sgd_momentum_converges(self):
        final = self._quadratic_step(lambda p: SGD(p, lr=0.05, momentum=0.9))
        assert abs(final) < 1e-2

    def test_adam_converges(self):
        final = self._quadratic_step(lambda p: Adam(p, lr=0.2))
        assert abs(final) < 1e-2

    def test_empty_parameters_rejected(self):
        with pytest.raises(ModelError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        x = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ModelError):
            Adam([x], lr=0.0)

    def test_weight_decay_shrinks_weights(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam([x], lr=0.01, weight_decay=10.0)
        optimizer.zero_grad()
        (x * 0.0).sum().backward()
        optimizer.step()
        assert abs(float(x.data[0])) < 1.0


class TestLosses:
    def test_bce_matches_reference(self):
        logits = Tensor(np.array([[0.0, 2.0], [-3.0, 1.0]]))
        targets = np.array([[0.0, 1.0], [1.0, 0.0]])
        value = bce_with_logits(logits, targets).item()
        probabilities = 1 / (1 + np.exp(-logits.numpy()))
        reference = -(
            targets * np.log(probabilities)
            + (1 - targets) * np.log(1 - probabilities)
        ).mean()
        assert value == pytest.approx(reference, rel=1e-6)

    def test_bce_mask_selects_rows(self):
        logits = Tensor(np.array([[10.0], [0.0]]))
        targets = np.array([[0.0], [0.0]])
        full = bce_with_logits(logits, targets).item()
        masked = bce_with_logits(logits, targets, mask=np.array([0, 1])).item()
        assert masked < full  # the bad row was excluded

    def test_bce_extreme_logits_stable(self):
        logits = Tensor(np.array([[500.0, -500.0]]))
        targets = np.array([[1.0, 0.0]])
        assert bce_with_logits(logits, targets).item() == pytest.approx(0.0, abs=1e-9)

    def test_mse(self):
        prediction = Tensor(np.array([[1.0, 2.0]]))
        assert mse(prediction, np.array([[0.0, 0.0]])).item() == pytest.approx(2.5)

    def test_gaussian_kl_zero_at_standard_normal(self):
        mu = Tensor(np.zeros((4, 3)))
        logvar = Tensor(np.zeros((4, 3)))
        assert gaussian_kl(mu, logvar).item() == pytest.approx(0.0)

    def test_gaussian_kl_positive_otherwise(self):
        mu = Tensor(np.ones((4, 3)))
        logvar = Tensor(np.zeros((4, 3)) - 1.0)
        assert gaussian_kl(mu, logvar).item() > 0.0
