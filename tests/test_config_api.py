"""Tests for the typed configuration and the CSPM constructor shim."""

import dataclasses

import pytest

from repro import CSPM, CSPMConfig, ConfigError, MiningError
from repro.graphs.builders import paper_running_example


class TestValidation:
    def test_defaults_are_valid(self):
        config = CSPMConfig()
        assert config.method == "partial"
        assert config.coreset_encoder == "singleton"
        assert config.include_model_cost is True
        assert config.max_iterations is None
        assert config.partial_update_scope == "lazy"
        assert config.top_k is None
        assert config.min_leafset == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"method": "alien"},
            {"coreset_encoder": "alien"},
            {"partial_update_scope": "alien"},
            {"include_model_cost": "yes"},
            {"max_iterations": -1},
            {"max_iterations": 2.5},
            {"top_k": 0},
            {"top_k": -3},
            {"top_k": True},
            {"min_leafset": 0},
            {"min_leafset": None},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CSPMConfig(**kwargs)

    def test_config_error_is_a_mining_error(self):
        with pytest.raises(MiningError):
            CSPMConfig(method="alien")

    def test_frozen(self):
        config = CSPMConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.method = "basic"

    def test_replace_revalidates(self):
        config = CSPMConfig()
        assert config.replace(method="basic").method == "basic"
        with pytest.raises(ConfigError):
            config.replace(method="alien")
        with pytest.raises(ConfigError):
            config.replace(no_such_field=1)


class TestRoundTrip:
    def test_default_round_trip(self):
        config = CSPMConfig()
        assert CSPMConfig.from_dict(config.to_dict()) == config

    def test_custom_round_trip(self):
        config = CSPMConfig(
            method="basic",
            coreset_encoder="slim",
            include_model_cost=False,
            max_iterations=7,
            partial_update_scope="related",
            top_k=10,
            min_leafset=2,
        )
        assert CSPMConfig.from_dict(config.to_dict()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            CSPMConfig.from_dict({"method": "basic", "typo_field": 1})

    def test_to_dict_is_json_ready(self):
        import json

        text = json.dumps(CSPMConfig(top_k=3).to_dict())
        assert CSPMConfig.from_dict(json.loads(text)) == CSPMConfig(top_k=3)


class TestFacadeShim:
    """Legacy keyword construction must keep working unchanged."""

    def test_legacy_keywords(self):
        miner = CSPM(method="basic", coreset_encoder="slim")
        assert miner.config == CSPMConfig(method="basic", coreset_encoder="slim")
        # legacy attribute access
        assert miner.method == "basic"
        assert miner.coreset_encoder == "slim"
        assert miner.include_model_cost is True
        assert miner.max_iterations is None
        assert miner.partial_update_scope == "lazy"

    def test_legacy_positional(self):
        assert CSPM("basic").config.method == "basic"

    def test_legacy_invalid_still_mining_error(self):
        with pytest.raises(MiningError):
            CSPM(method="alien")
        with pytest.raises(MiningError):
            CSPM(coreset_encoder="alien")

    def test_config_object(self):
        config = CSPMConfig(method="basic")
        assert CSPM(config=config).config is config

    def test_config_plus_overrides(self):
        miner = CSPM(config=CSPMConfig(method="basic"), top_k=5)
        assert miner.config == CSPMConfig(method="basic", top_k=5)

    def test_config_wrong_type_rejected(self):
        with pytest.raises(ConfigError):
            CSPM(config={"method": "basic"})

    def test_legacy_and_config_fits_match(self, paper_graph):
        legacy = CSPM(method="basic").fit(paper_graph)
        typed = CSPM(config=CSPMConfig(method="basic")).fit(paper_graph)
        assert legacy.astars == typed.astars
        assert legacy.final_dl.total_bits == typed.final_dl.total_bits


class TestReprs:
    def test_cspm_repr_defaults(self):
        assert repr(CSPM()) == "CSPM(defaults)"

    def test_cspm_repr_shows_non_defaults(self):
        text = repr(CSPM(method="basic", top_k=5))
        assert "method='basic'" in text
        assert "top_k=5" in text
        assert "coreset_encoder" not in text  # defaults stay hidden

    def test_result_repr_is_compact(self):
        result = CSPM().fit(paper_running_example())
        text = repr(result)
        assert text.startswith("<CSPMResult:")
        assert f"{len(result.astars)} a-stars" in text
        assert "merges" in text
        # Not the dataclass wall: no field dump of tables or stars.
        assert "standard_table" not in text
        assert len(text) < 120
