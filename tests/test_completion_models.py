"""Tests for the six completion baselines on a learnable toy instance."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.models import make_model
from repro.nn.models.base import model_names


def toy_instance(seed=0, n=40, d=6):
    """A two-block graph: block 0 carries values {0,1,2}, block 1
    carries {3,4,5}; edges stay within blocks.  Any sensible model
    should score in-block values above out-of-block ones."""
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((n, n))
    half = n // 2
    for block in (range(half), range(half, n)):
        block = list(block)
        for i in block:
            for j in rng.choice(block, size=3, replace=False):
                if i != j:
                    adjacency[i, j] = adjacency[j, i] = 1.0
    targets = np.zeros((n, d))
    for i in range(n):
        pool = [0, 1, 2] if i < half else [3, 4, 5]
        for value in rng.choice(pool, size=2, replace=False):
            targets[i, value] = 1.0
    test_mask = np.zeros(n, dtype=bool)
    test_mask[rng.choice(n, size=n // 4, replace=False)] = True
    train_mask = ~test_mask
    features = targets.copy()
    features[test_mask] = 0.0
    return adjacency, features, targets, train_mask, test_mask


def block_accuracy(scores, targets, test_mask):
    """Fraction of test nodes whose top-2 values are in-block."""
    hits = 0
    rows = np.where(test_mask)[0]
    for row in rows:
        top2 = np.argsort(-scores[row])[:2]
        truth = set(np.where(targets[row] > 0)[0])
        hits += len(truth & set(top2)) / 2
    return hits / len(rows)


class TestFactory:
    def test_model_names_order(self):
        names = model_names()
        assert names[:6] == ["neighaggre", "vae", "gcn", "gat", "graphsage", "sat"]

    def test_unknown_model(self):
        with pytest.raises(ModelError):
            make_model("transformer")

    def test_all_models_instantiable(self):
        for name in model_names():
            assert make_model(name, seed=1).name == name


@pytest.mark.parametrize("name", model_names())
class TestEveryModel:
    def test_fit_predict_shapes(self, name):
        adjacency, features, targets, train_mask, _ = toy_instance()
        model = make_model(name, seed=0)
        if name != "neighaggre":
            model.epochs = 30  # keep the suite fast
        model.fit(adjacency, features, train_mask)
        scores = model.predict()
        assert scores.shape == targets.shape
        assert np.isfinite(scores).all()

    def test_beats_random_on_blocks(self, name):
        adjacency, features, targets, train_mask, test_mask = toy_instance(seed=2)
        model = make_model(name, seed=0)
        if name != "neighaggre":
            model.epochs = 60
        model.fit(adjacency, features, train_mask)
        accuracy = block_accuracy(model.predict(), targets, test_mask)
        # Random top-2 of 6 values hits ~ 1/3; block structure should
        # lift every model clearly above that.
        assert accuracy > 0.45, f"{name} accuracy {accuracy:.2f}"

    def test_predict_before_fit_raises(self, name):
        model = make_model(name, seed=0)
        with pytest.raises(RuntimeError):
            model.predict()


class TestInputValidation:
    def test_bad_shapes_rejected(self):
        model = make_model("neighaggre")
        with pytest.raises(ModelError):
            model.fit(np.zeros((3, 2)), np.zeros((3, 2)), np.ones(3, dtype=bool))
        with pytest.raises(ModelError):
            model.fit(np.zeros((3, 3)), np.zeros((2, 2)), np.ones(3, dtype=bool))

    def test_empty_train_mask_rejected(self):
        model = make_model("neighaggre")
        with pytest.raises(ModelError):
            model.fit(
                np.zeros((3, 3)), np.zeros((3, 2)), np.zeros(3, dtype=bool)
            )

    def test_determinism_per_seed(self):
        adjacency, features, _targets, train_mask, _ = toy_instance()
        runs = []
        for _ in range(2):
            model = make_model("gcn", seed=7)
            model.epochs = 10
            model.fit(adjacency, features, train_mask)
            runs.append(model.predict())
        assert np.allclose(runs[0], runs[1])
