"""Tests for run instrumentation and the completion report object."""

import pytest

from repro.completion.experiment import CompletionReport
from repro.core.instrumentation import IterationTrace, RunTrace


def trace(iteration, gains, possible, dl):
    return IterationTrace(
        iteration=iteration,
        gains_computed=gains,
        possible_pairs=possible,
        num_leafsets=10,
        merged_pair=(("'a'",), ("'b'",)),
        gain=1.0,
        total_dl_bits=dl,
    )


class TestIterationTrace:
    def test_update_ratio(self):
        assert trace(1, 5, 10, 100.0).update_ratio == 0.5

    def test_update_ratio_clamped(self):
        assert trace(1, 20, 10, 100.0).update_ratio == 1.0

    def test_update_ratio_no_pairs(self):
        assert trace(1, 5, 0, 100.0).update_ratio == 0.0


class TestRunTrace:
    def build(self):
        run = RunTrace(algorithm="test")
        run.initial_dl_bits = 200.0
        run.initial_candidate_gains = 45
        run.iterations = [trace(1, 5, 45, 150.0), trace(2, 3, 36, 120.0)]
        run.final_dl_bits = 120.0
        return run

    def test_counts(self):
        run = self.build()
        assert run.num_iterations == 2
        assert run.total_gain_computations == 45 + 5 + 3

    def test_compression_ratio(self):
        assert self.build().compression_ratio == pytest.approx(0.6)

    def test_compression_ratio_degenerate(self):
        run = RunTrace(algorithm="x")
        assert run.compression_ratio == 1.0

    def test_update_ratios_series(self):
        ratios = self.build().update_ratios()
        assert ratios == [pytest.approx(5 / 45), pytest.approx(3 / 36)]


class TestCompletionReport:
    def build(self):
        report = CompletionReport(dataset="toy", ks=(5,))
        report.plain["m"] = {"Recall@5": 0.5, "NDCG@5": 0.4}
        report.fused["m"] = {"Recall@5": 0.6, "NDCG@5": 0.5}
        report.plain["z"] = {"Recall@5": 0.2, "NDCG@5": 0.1}
        report.fused["z"] = {"Recall@5": 0.3, "NDCG@5": 0.2}
        return report

    def test_improvement_percentages(self):
        improvement = self.build().improvement()
        # m: +20%, z: +50% -> average +35% for Recall@5.
        assert improvement["Recall@5"] == pytest.approx(35.0)

    def test_table_rows(self):
        table = self.build().as_table()
        assert "CSPM+m" in table
        assert "Avg.improvement(%)" in table
        assert "0.6000" in table

    def test_zero_baseline_skipped(self):
        report = self.build()
        report.plain["zero"] = {"Recall@5": 0.0, "NDCG@5": 0.0}
        report.fused["zero"] = {"Recall@5": 0.1, "NDCG@5": 0.1}
        improvement = report.improvement()
        assert improvement["Recall@5"] == pytest.approx(35.0)
