"""Gradient checks and semantics tests for the numpy autograd."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.autograd import Tensor, concat, no_grad


def numeric_gradient(function, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        x[index] += eps
        plus = function(x)
        x[index] -= 2 * eps
        minus = function(x)
        x[index] += eps
        grad[index] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build, shape, seed=0, tol=1e-6):
    """Compare autograd and numeric gradients of a scalar function."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=shape)

    def value(x_arr):
        return build(Tensor(x_arr.copy(), requires_grad=True)).item()

    x = Tensor(x0.copy(), requires_grad=True)
    out = build(x)
    out.backward()
    numeric = numeric_gradient(value, x0.copy())
    assert np.allclose(x.grad, numeric, atol=tol), (
        f"max err {np.abs(x.grad - numeric).max()}"
    )


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda x: (x * 3.0 + x * x).sum(), (3, 4))

    def test_sub_div(self):
        check_gradient(lambda x: ((x - 0.5) / (x * x + 2.0)).sum(), (2, 5))

    def test_pow(self):
        check_gradient(lambda x: (x**3).sum(), (4,))

    def test_exp_log(self):
        check_gradient(lambda x: ((x.exp() + 1.0).log()).sum(), (3, 3))

    def test_sigmoid_tanh(self):
        check_gradient(lambda x: (x.sigmoid() * x.tanh()).sum(), (6,))

    def test_relu_and_leaky(self):
        check_gradient(lambda x: (x.relu() + x.leaky_relu(0.1)).sum(), (10,), seed=3)

    def test_clip(self):
        check_gradient(lambda x: x.clip(-0.5, 0.5).sum(), (8,), seed=2)


class TestShapedGradients:
    def test_matmul(self):
        w = np.random.default_rng(1).normal(size=(4, 2))
        check_gradient(lambda x: (x @ Tensor(w)).sum(), (3, 4))

    def test_transpose(self):
        check_gradient(lambda x: (x.T @ x).sum(), (3, 4))

    def test_broadcast_add(self):
        bias = Tensor(np.array([1.0, -1.0, 0.5]))
        check_gradient(lambda x: (x + bias).sum(), (4, 3))

    def test_broadcast_bias_gradient(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        bias = Tensor(np.zeros(3), requires_grad=True)
        ((x + bias) * 2.0).sum().backward()
        assert np.allclose(bias.grad, [8.0, 8.0, 8.0])

    def test_sum_axis(self):
        check_gradient(lambda x: (x.sum(axis=0) ** 2).sum(), (5, 3))

    def test_mean(self):
        check_gradient(lambda x: x.mean() * 7.0, (4, 4))

    def test_reshape(self):
        check_gradient(lambda x: (x.reshape(6) ** 2).sum(), (2, 3))

    def test_getitem_rows(self):
        idx = np.array([0, 2])
        check_gradient(lambda x: (x[idx] ** 2).sum(), (4, 3))

    def test_getitem_repeated_rows_accumulate(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        idx = np.array([1, 1])
        x[idx].sum().backward()
        assert np.allclose(x.grad, [[0, 0], [2, 2], [0, 0]])

    def test_softmax(self):
        check_gradient(lambda x: (x.softmax(axis=1) ** 2).sum(), (3, 4))

    def test_masked_fill(self):
        mask = np.array([[True, False], [False, True]])
        check_gradient(
            lambda x: x.masked_fill(mask, -5.0).softmax(axis=1).sum(), (2, 2)
        )

    def test_concat(self):
        def build(x):
            return concat([x, x * 2.0], axis=1).sum()

        check_gradient(build, (3, 2))


class TestSemantics:
    def test_no_grad_disables_graph(self):
        with no_grad():
            x = Tensor(np.ones(3), requires_grad=True)
            y = x * 2.0
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ModelError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor(self):
        x = Tensor(np.ones(3))
        with pytest.raises(ModelError):
            x.backward()

    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.sum().backward()
        assert np.allclose(x.grad, [7.0])

    def test_detach_blocks_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x.detach() * 5.0 + x).sum().backward()
        assert np.allclose(x.grad, [1.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        assert np.allclose(x.grad, [1.0])

    def test_numpy_and_item(self):
        x = Tensor([[1.0, 2.0]])
        assert x.numpy().shape == (1, 2)
        assert Tensor([3.0]).item() == 3.0
