"""Per-rule fixtures for the invariant linter (``repro.analysis``).

Every rule family gets a true positive (the shape the rule exists to
catch), a true negative (the compliant spelling), a noqa-suppression
check and a baseline round-trip; a self-check pins that the shipped
tree lints clean; and one test mutates the real ``core/mdl.py`` source
back to the unsorted iteration the linter was built to prevent and
asserts DET001 fires on it.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULE_REGISTRY,
    lint_paths,
    lint_sources,
    load_baseline,
    save_baseline,
)
from repro.analysis.baseline import baseline_document, baseline_from_dict
from repro.cli import main as cli_main


def rules_of(report):
    return sorted({finding.rule for finding in report.findings})


def lint_one(path, source, rule_ids=None):
    return lint_sources([(path, source)], rule_ids=rule_ids)


# ----------------------------------------------------------------------
# DET: determinism
# ----------------------------------------------------------------------

DET001_LOOP_TP = """
def data_bits(rows):
    total = 0.0
    for key, frequency in rows.items():
        total += frequency * 1.5
    return total
"""

DET001_LOOP_TN = """
def data_bits(rows):
    total = 0.0
    for key, frequency in sorted(rows.items()):
        total += frequency * 1.5
    return total
"""

DET001_SUM_TP = """
def total_bits(lengths):
    return sum(length * 2.0 for length in lengths.values())
"""

DET001_SERIALIZER_TP = """
class Result:
    def to_dict(self):
        return {"stars": [repr(star) for star in self.stars_by_id.values()]}
"""

DET001_SERIALIZER_TN = """
class Result:
    def to_dict(self):
        return {"stars": [repr(s) for s in sorted(self.stars_by_id.values())]}
"""


class TestDET001:
    def test_unsorted_loop_accumulation_in_sensitive_module(self):
        report = lint_one("core/mdl.py", DET001_LOOP_TP, ["DET001"])
        assert rules_of(report) == ["DET001"]

    def test_sorted_loop_is_clean(self):
        assert lint_one("core/mdl.py", DET001_LOOP_TN, ["DET001"]).clean

    def test_sum_over_unsorted_view(self):
        report = lint_one("core/code_table.py", DET001_SUM_TP, ["DET001"])
        assert rules_of(report) == ["DET001"]

    def test_sensitive_scope_is_path_gated(self):
        # The same accumulation outside the hash-sensitive modules is
        # not DET001's business (to_dict/to_json are checked anywhere).
        assert lint_one("perf/suite.py", DET001_LOOP_TP, ["DET001"]).clean

    def test_serializer_flagged_in_any_module(self):
        report = lint_one("anywhere.py", DET001_SERIALIZER_TP, ["DET001"])
        assert rules_of(report) == ["DET001"]
        assert lint_one("anywhere.py", DET001_SERIALIZER_TN, ["DET001"]).clean

    def test_noqa_suppresses_on_the_finding_line(self):
        suppressed = DET001_LOOP_TP.replace(
            "for key, frequency in rows.items():",
            "for key, frequency in rows.items():  # repro: noqa[DET001]",
        )
        assert lint_one("core/mdl.py", suppressed, ["DET001"]).clean

    def test_bare_noqa_suppresses_every_rule(self):
        suppressed = DET001_LOOP_TP.replace(
            "for key, frequency in rows.items():",
            "for key, frequency in rows.items():  # repro: noqa",
        )
        assert lint_one("core/mdl.py", suppressed).clean

    def test_noqa_for_other_rule_does_not_suppress(self):
        other = DET001_LOOP_TP.replace(
            "for key, frequency in rows.items():",
            "for key, frequency in rows.items():  # repro: noqa[DET002]",
        )
        report = lint_one("core/mdl.py", other, ["DET001"])
        assert rules_of(report) == ["DET001"]


class TestDET002:
    def test_hash_key_flagged(self):
        report = lint_one(
            "util.py", "order = sorted(values, key=hash)\n", ["DET002"]
        )
        assert rules_of(report) == ["DET002"]

    def test_id_inside_lambda_key_flagged(self):
        report = lint_one(
            "util.py",
            "values.sort(key=lambda item: (id(item), item))\n",
            ["DET002"],
        )
        assert rules_of(report) == ["DET002"]

    def test_value_derived_key_is_clean(self):
        assert lint_one(
            "util.py", "order = sorted(values, key=repr)\n", ["DET002"]
        ).clean


class TestDET003:
    def test_global_rng_in_core_flagged(self):
        report = lint_one(
            "core/search.py",
            "import random\n\ndef jitter():\n    return random.random()\n",
            ["DET003"],
        )
        assert rules_of(report) == ["DET003"]

    def test_wall_clock_in_core_flagged(self):
        report = lint_one(
            "core/search.py",
            "import time\n\ndef stamp():\n    return time.time()\n",
            ["DET003"],
        )
        assert rules_of(report) == ["DET003"]

    def test_seeded_rng_is_clean(self):
        assert lint_one(
            "core/search.py",
            "import random\n\nrng = random.Random(42)\n",
            ["DET003"],
        ).clean

    def test_outside_core_is_not_in_scope(self):
        assert lint_one(
            "perf/suite.py",
            "import time\n\ndef stamp():\n    return time.time()\n",
            ["DET003"],
        ).clean


# ----------------------------------------------------------------------
# MSK: mask-backend protocol conformance and purity
# ----------------------------------------------------------------------

MASK_BASE = """
class MaskBackend:
    def empty(self):
        raise NotImplementedError

    def make(self, bits):
        raise NotImplementedError

    def set_bit(self, mask, bit):
        raise NotImplementedError

    def or_(self, a, b):
        raise NotImplementedError

    def make_batch(self, rows):
        return [self.make(bits) for bits in rows]
"""

MSK_COMPLETE = """
class GoodBackend(MaskBackend):
    def empty(self):
        return 0

    def make(self, bits):
        value = 0
        for bit in bits:
            value |= 1 << bit
        return value

    def set_bit(self, mask, bit):
        return mask | (1 << bit)

    def or_(self, a, b):
        return a | b
"""

MSK_MISSING = """
class PartialBackend(MaskBackend):
    def empty(self):
        return 0

    def make(self, bits):
        return 0

    def set_bit(self, mask, bit):
        return mask | (1 << bit)
"""

MSK_ARITY = """
class WrongArity(MaskBackend):
    def empty(self):
        return 0

    def make(self, bits):
        return 0

    def set_bit(self, mask, bit):
        return mask | (1 << bit)

    def or_(self, a):
        return a
"""

MSK_MUTATES = """
class MutatingBackend(MaskBackend):
    def empty(self):
        return set()

    def make(self, bits):
        return set(bits)

    def set_bit(self, mask, bit):
        mask.add(bit)
        return mask

    def or_(self, a, b):
        a.update(b)
        return a
"""

MSK_AUGASSIGN = """
class AugBackend(MaskBackend):
    def empty(self):
        return 0

    def make(self, bits):
        return 0

    def set_bit(self, mask, bit):
        return mask | (1 << bit)

    def or_(self, a, b):
        a |= b
        return a
"""


def lint_backend(source, rule_ids):
    return lint_sources(
        [("core/masks/base.py", MASK_BASE), ("core/masks/impl.py", source)],
        rule_ids=rule_ids,
    )


class TestMSK001:
    def test_complete_backend_is_clean(self):
        assert lint_backend(MSK_COMPLETE, ["MSK001"]).clean

    def test_missing_required_method_flagged(self):
        report = lint_backend(MSK_MISSING, ["MSK001"])
        assert rules_of(report) == ["MSK001"]
        assert "or_()" in report.findings[0].message

    def test_arity_mismatch_flagged(self):
        report = lint_backend(MSK_ARITY, ["MSK001"])
        assert rules_of(report) == ["MSK001"]
        assert "positional parameters" in report.findings[0].message

    def test_optional_override_not_required(self):
        # make_batch has a default body in the base -> not required.
        report = lint_backend(MSK_COMPLETE, ["MSK001"])
        assert not any(
            "make_batch" in finding.message for finding in report.findings
        )


class TestMSK002:
    def test_mutating_pure_op_flagged(self):
        report = lint_backend(MSK_MUTATES, ["MSK002"])
        assert rules_of(report) == ["MSK002"]
        # set_bit is a construction op: its mask.add() is allowed, so
        # the only finding is or_'s a.update(b).
        assert len(report.findings) == 1
        assert "or_()" in report.findings[0].message

    def test_inplace_operator_on_argument_flagged(self):
        report = lint_backend(MSK_AUGASSIGN, ["MSK002"])
        assert rules_of(report) == ["MSK002"]
        assert "in-place operator" in report.findings[0].message

    def test_pure_backend_is_clean(self):
        assert lint_backend(MSK_COMPLETE, ["MSK002"]).clean


# ----------------------------------------------------------------------
# FRK: fork/pickle safety
# ----------------------------------------------------------------------

FRK_LAMBDA = """
from concurrent.futures import ProcessPoolExecutor

def run(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(lambda item: item * 2, items))
"""

FRK_CLOSURE = """
from concurrent.futures import ProcessPoolExecutor

def run(items, factor):
    def scale(item):
        return item * factor

    with ProcessPoolExecutor() as pool:
        return list(pool.map(scale, items))
"""

FRK_MODULE_LEVEL = """
from concurrent.futures import ProcessPoolExecutor

def scale(item):
    return item * 2

def run(items):
    with ProcessPoolExecutor(initializer=scale) as pool:
        return list(pool.map(scale, items))
"""

FRK_PAYLOAD_BAD = """
from dataclasses import dataclass
from typing import Callable, List

@dataclass
class PartitionResult:
    rows: List[int]
    callback: Callable
"""

FRK_PAYLOAD_GOOD = """
from dataclasses import dataclass
from typing import List, Tuple

@dataclass
class PartitionResult:
    rows: List[Tuple[int, Value, Mask, int]]
    core_freq: List[Tuple[int, int]]
"""


class TestFRK001:
    def test_lambda_to_pool_map_flagged(self):
        report = lint_one("core/construction.py", FRK_LAMBDA, ["FRK001"])
        assert rules_of(report) == ["FRK001"]
        assert "lambda" in report.findings[0].message

    def test_closure_to_pool_map_flagged(self):
        report = lint_one("core/construction.py", FRK_CLOSURE, ["FRK001"])
        assert rules_of(report) == ["FRK001"]
        assert "closure" in report.findings[0].message

    def test_module_level_callable_is_clean(self):
        assert lint_one(
            "core/construction.py", FRK_MODULE_LEVEL, ["FRK001"]
        ).clean

    def test_rule_gated_on_multiprocessing_import(self):
        # A pool-shaped call with no multiprocessing/concurrent import
        # is some other API -- not this rule's business.
        source = "def run(pool, items):\n    return pool.map(len, items)\n"
        assert lint_one("core/construction.py", source, ["FRK001"]).clean


class TestFRK002:
    def test_non_allowlisted_payload_type_flagged(self):
        report = lint_one("core/construction.py", FRK_PAYLOAD_BAD, ["FRK002"])
        assert rules_of(report) == ["FRK002"]
        assert "Callable" in report.findings[0].message

    def test_allowlisted_payload_is_clean(self):
        assert lint_one(
            "core/construction.py", FRK_PAYLOAD_GOOD, ["FRK002"]
        ).clean

    def test_scoped_to_worker_modules(self):
        assert lint_one("core/other.py", FRK_PAYLOAD_BAD, ["FRK002"]).clean

    def test_gates_sharded_search_module(self):
        # core/search_shard.py ships the ComponentRun worker payload,
        # so its dataclasses fall under the same contract.
        report = lint_one("core/search_shard.py", FRK_PAYLOAD_BAD, ["FRK002"])
        assert rules_of(report) == ["FRK002"]
        assert lint_one(
            "core/search_shard.py", FRK_PAYLOAD_GOOD, ["FRK002"]
        ).clean


# ----------------------------------------------------------------------
# CFG: config/CLI drift
# ----------------------------------------------------------------------

CFG_CONFIG = """
from dataclasses import dataclass

@dataclass(frozen=True)
class CSPMConfig:
    method: str = "partial"
    shiny_knob: int = 3

    def to_dict(self):
        document = {"method": self.method, "shiny_knob": self.shiny_knob}
        if document["shiny_knob"] == 3:
            del document["shiny_knob"]
        return document
"""

CFG_CLI_WIRED = """
def _add_mine(subparsers):
    parser = subparsers.add_parser("mine")
    parser.add_argument("--method")
    parser.add_argument("--shiny-knob", type=int)
"""

CFG_CLI_MISSING = """
def _add_mine(subparsers):
    parser = subparsers.add_parser("mine")
    parser.add_argument("--method")
"""

CFG_CONFIG_DRIFTED = CFG_CONFIG.replace(
    'if document["shiny_knob"] == 3:', 'if document["shiny_knob"] == 4:'
)


class TestCFG001:
    def test_unwired_field_flagged(self):
        report = lint_sources(
            [("config.py", CFG_CONFIG), ("cli.py", CFG_CLI_MISSING)],
            rule_ids=["CFG001"],
        )
        assert rules_of(report) == ["CFG001"]
        assert "shiny_knob" in report.findings[0].message

    def test_wired_field_is_clean(self):
        assert lint_sources(
            [("config.py", CFG_CONFIG), ("cli.py", CFG_CLI_WIRED)],
            rule_ids=["CFG001"],
        ).clean

    def test_gated_on_flag_function_in_view(self):
        # Linting the config file alone must not report every field.
        assert lint_one("config.py", CFG_CONFIG, ["CFG001"]).clean


class TestCFG002:
    def test_omission_constant_drift_flagged(self):
        report = lint_one("config.py", CFG_CONFIG_DRIFTED, ["CFG002"])
        assert rules_of(report) == ["CFG002"]
        assert "declared default is 3" in report.findings[0].message

    def test_matching_omission_is_clean(self):
        assert lint_one("config.py", CFG_CONFIG, ["CFG002"]).clean

    def test_unknown_field_in_omission_flagged(self):
        drifted = CFG_CONFIG.replace(
            'document["shiny_knob"] == 3', 'document["ghost"] == 3'
        ).replace('del document["shiny_knob"]', 'del document["ghost"]')
        report = lint_one("config.py", drifted, ["CFG002"])
        assert rules_of(report) == ["CFG002"]
        assert "unknown" in report.findings[0].message


# ----------------------------------------------------------------------
# RES: resilience (supervised runtime)
# ----------------------------------------------------------------------

RES001_TP = """
from concurrent.futures import ProcessPoolExecutor

def harvest(futures):
    return [future.result() for future in futures]
"""

RES001_TN = """
from concurrent.futures import ProcessPoolExecutor

def harvest(futures, deadline):
    return [future.result(timeout=deadline) for future in futures]
"""

RES001_DICT_GET = """
from concurrent.futures import ProcessPoolExecutor

def lookup(table, key):
    return table.get(key)
"""

RES002_BARE_TP = """
def swallow(job):
    try:
        job()
    except:
        pass
"""

RES002_BASE_TP = """
def swallow(job):
    try:
        job()
    except BaseException:
        return None
"""

RES002_RERAISE_TN = """
def cleanup_then_reraise(job, pool):
    try:
        job()
    except BaseException:
        pool.terminate()
        raise
"""

RES002_EXCEPTION_TN = """
def tolerate(job):
    try:
        job()
    except Exception:
        return None
"""


class TestRES001:
    def test_argless_result_flagged_in_pool_modules(self):
        report = lint_one("runtime/supervisor.py", RES001_TP, ["RES001"])
        assert rules_of(report) == ["RES001"]
        assert "timeout" in report.findings[0].message

    def test_timeout_keyword_is_clean(self):
        assert lint_one("runtime/supervisor.py", RES001_TN, ["RES001"]).clean

    def test_argless_get_flagged(self):
        source = RES001_TP.replace(".result()", ".get()")
        report = lint_one("core/construction.py", source, ["RES001"])
        assert rules_of(report) == ["RES001"]

    def test_dict_get_with_key_is_clean(self):
        assert lint_one(
            "runtime/supervisor.py", RES001_DICT_GET, ["RES001"]
        ).clean

    def test_scope_is_path_and_import_gated(self):
        # Outside the worker-pool modules the same call is fine, and a
        # pool-module file that never imports a pool API is too.
        assert lint_one("perf/suite.py", RES001_TP, ["RES001"]).clean
        no_import = RES001_TP.replace(
            "from concurrent.futures import ProcessPoolExecutor", ""
        )
        assert lint_one(
            "runtime/supervisor.py", no_import, ["RES001"]
        ).clean


class TestRES002:
    def test_bare_except_flagged(self):
        report = lint_one("batch.py", RES002_BARE_TP, ["RES002"])
        assert rules_of(report) == ["RES002"]
        assert "bare except:" in report.findings[0].message

    def test_base_exception_flagged_anywhere(self):
        report = lint_one("perf/suite.py", RES002_BASE_TP, ["RES002"])
        assert rules_of(report) == ["RES002"]
        assert "except BaseException" in report.findings[0].message

    def test_cleanup_then_reraise_is_clean(self):
        assert lint_one("batch.py", RES002_RERAISE_TN, ["RES002"]).clean

    def test_catching_exception_is_clean(self):
        assert lint_one("batch.py", RES002_EXCEPTION_TN, ["RES002"]).clean

    def test_noqa_suppresses_the_supervisor_boundary(self):
        suppressed = RES002_BASE_TP.replace(
            "except BaseException:",
            "except BaseException:  # repro: noqa[RES002]",
        )
        assert lint_one("batch.py", suppressed, ["RES002"]).clean


# ----------------------------------------------------------------------
# OBS: observability (literal names, clock seam)
# ----------------------------------------------------------------------

OBS001_TP = """
def instrument(obs, phase):
    with obs.span("mine." + phase):
        obs.metrics.counter(phase).inc()
"""

OBS001_TN = """
def instrument(obs, site):
    with obs.span("mine.search", site=site):
        obs.metrics.counter("runtime.retries").inc(site=site)
        obs.progress.heartbeat("search", merges=3)
"""

OBS001_UNRELATED_TN = """
def melody(piano):
    piano.note(61)
    return piano.span(2, 9)
"""

OBS002_TP = """
import time

def stamp():
    return time.perf_counter()
"""

OBS002_FROM_TP = """
from time import perf_counter
"""

OBS002_TN = """
from repro.obs import clock

def stamp():
    return clock.perf_counter()
"""


class TestOBS001:
    def test_computed_names_flagged(self):
        report = lint_one("core/search.py", OBS001_TP, ["OBS001"])
        assert rules_of(report) == ["OBS001"]
        assert len(report.findings) == 2
        assert "string literal" in report.findings[0].message

    def test_literal_names_with_label_kwargs_are_clean(self):
        assert lint_one("core/search.py", OBS001_TN, ["OBS001"]).clean

    def test_unrelated_apis_sharing_method_names_are_flagged(self):
        # Non-string first arguments to .span()/.note() are flagged even
        # on foreign objects -- the rule is name-based on purpose, and
        # the tree has no such APIs; noqa is the escape hatch.
        report = lint_one("synth.py", OBS001_UNRELATED_TN, ["OBS001"])
        assert rules_of(report) == ["OBS001"]
        assert len(report.findings) == 2

    def test_obs_package_delegation_is_exempt(self):
        assert lint_one("obs/session.py", OBS001_TP, ["OBS001"]).clean

    def test_noqa_suppresses(self):
        suppressed = OBS001_TP.replace(
            'obs.metrics.counter(phase).inc()',
            'obs.metrics.counter(phase).inc()  # repro: noqa[OBS001]',
        ).replace(
            'with obs.span("mine." + phase):',
            'with obs.span("mine." + phase):  # repro: noqa[OBS001]',
        )
        assert lint_one("core/search.py", suppressed, ["OBS001"]).clean


class TestOBS002:
    def test_import_time_flagged(self):
        report = lint_one("perf/suite.py", OBS002_TP, ["OBS002"])
        assert rules_of(report) == ["OBS002"]
        assert "clock" in report.findings[0].message

    def test_from_time_import_flagged(self):
        report = lint_one("batch.py", OBS002_FROM_TP, ["OBS002"])
        assert rules_of(report) == ["OBS002"]

    def test_clock_seam_import_is_clean(self):
        assert lint_one("runtime/supervisor.py", OBS002_TN, ["OBS002"]).clean

    def test_obs_clock_module_is_exempt(self):
        assert lint_one("obs/clock.py", OBS002_TP, ["OBS002"]).clean


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_grandfathers_exact_findings(self, tmp_path):
        report = lint_one("core/mdl.py", DET001_LOOP_TP, ["DET001"])
        assert not report.clean
        baseline_path = tmp_path / "baseline.json"
        save_baseline(str(baseline_path), report.findings)
        baseline = load_baseline(str(baseline_path))
        again = lint_sources(
            [("core/mdl.py", DET001_LOOP_TP)],
            rule_ids=["DET001"],
            baseline=baseline,
        )
        assert again.clean
        assert len(again.baselined) == len(report.findings)

    def test_baseline_survives_line_shifts(self):
        report = lint_one("core/mdl.py", DET001_LOOP_TP, ["DET001"])
        document = baseline_document(report.findings)
        assert all("line" not in entry for entry in document["findings"])
        shifted = "\n\n\n" + DET001_LOOP_TP
        again = lint_sources(
            [("core/mdl.py", shifted)],
            rule_ids=["DET001"],
            baseline=baseline_from_dict(document),
        )
        assert again.clean and len(again.baselined) == 1

    def test_count_aware_matching(self):
        doubled = DET001_LOOP_TP + DET001_LOOP_TP.replace(
            "def data_bits", "def data_bits_again"
        )
        report = lint_one("core/mdl.py", doubled, ["DET001"])
        assert len(report.findings) == 2
        # One baseline entry absorbs exactly one of the two identical
        # findings; the other still fails the lint.
        document = baseline_document(report.findings[:1])
        again = lint_sources(
            [("core/mdl.py", doubled)],
            rule_ids=["DET001"],
            baseline=baseline_from_dict(document),
        )
        assert len(again.findings) == 1 and len(again.baselined) == 1

    def test_unsupported_version_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            load_baseline(str(bad))


# ----------------------------------------------------------------------
# The shipped tree, and the regression the linter exists to prevent
# ----------------------------------------------------------------------


class TestShippedTree:
    def test_repro_lint_is_clean_on_the_shipped_tree(self):
        report = lint_paths()
        assert report.clean, report.render_text()
        assert report.modules > 50

    def test_every_registered_rule_has_title_and_docs(self):
        assert set(RULE_REGISTRY) == {
            "DET001",
            "DET002",
            "DET003",
            "MSK001",
            "MSK002",
            "FRK001",
            "FRK002",
            "CFG001",
            "CFG002",
            "RES001",
            "RES002",
            "OBS001",
            "OBS002",
        }
        for rule in RULE_REGISTRY.values():
            assert rule.title
            assert "INVARIANTS.md" in (type(rule).__doc__ or "")

    def test_mutated_mdl_unsorted_iteration_is_caught(self):
        """Reverting conditional_entropy to unsorted db.row_items()
        iteration -- the true positive this PR fixed -- must fail
        DET001."""
        import repro.core.mdl as mdl_module

        source = Path(mdl_module.__file__).read_text()
        target = "for core, _leaf, l_ij in _sorted_rows(db):"
        assert target in source
        mutated = source.replace(
            target, "for core, _leaf, l_ij in db.row_items():"
        )
        assert lint_one("core/mdl.py", source, ["DET001"]).clean
        report = lint_one("core/mdl.py", mutated, ["DET001"])
        assert rules_of(report) == ["DET001"]


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestLintCLI:
    def test_violating_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "util.py"
        bad.write_text("order = sorted(values, key=hash)\n")
        assert cli_main(["lint", str(bad)]) == 1
        assert "DET002" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "util.py"
        good.write_text("order = sorted(values, key=repr)\n")
        assert cli_main(["lint", str(good)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_report_shape(self, tmp_path, capsys):
        bad = tmp_path / "util.py"
        bad.write_text("order = sorted(values, key=hash)\n")
        assert cli_main(["lint", "--json", str(bad)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["clean"] is False
        assert document["findings"][0]["rule"] == "DET002"
        assert document["rules"]["DET002"]["count"] == 1

    def test_write_then_use_baseline(self, tmp_path, capsys):
        bad = tmp_path / "util.py"
        bad.write_text("order = sorted(values, key=hash)\n")
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                ["lint", "--write-baseline", str(baseline), str(bad)]
            )
            == 0
        )
        assert cli_main(
            ["lint", "--baseline", str(baseline), str(bad)]
        ) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "util.py"
        bad.write_text("order = sorted(values, key=hash)\n")
        assert cli_main(["lint", "--rule", "DET001", str(bad)]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_REGISTRY:
            assert rule_id in out

    def test_shipped_tree_via_cli_with_committed_baseline(self, capsys):
        repo_root = Path(__file__).resolve().parent.parent
        baseline = repo_root / "lint_baseline.json"
        assert baseline.is_file()
        # The committed baseline is empty: the tree itself is clean.
        assert json.loads(baseline.read_text())["findings"] == []
        assert cli_main(["lint", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
