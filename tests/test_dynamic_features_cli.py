"""Tests for the extension modules: dynamic mining, a-star features
for graph classification, and the CLI."""

import numpy as np
import pytest

from repro.core.dynamic import disjoint_union, mine_dynamic
from repro.core.features import AStarFeaturizer, LogisticAStarClassifier
from repro.errors import MiningError
from repro.graphs.builders import star_graph
from repro.graphs.generators import PlantedAStar, planted_astar_graph


def snapshot(seed, strength=0.95):
    graph, _ = planted_astar_graph(
        30,
        70,
        [PlantedAStar("core", ("l1", "l2"), strength=strength)],
        noise_values=("n1", "n2"),
        noise_rate=0.2,
        seed=seed,
    )
    return graph


class TestDisjointUnion:
    def test_sizes_add_up(self):
        parts = [snapshot(0), snapshot(1)]
        union = disjoint_union(parts)
        assert union.num_vertices == sum(p.num_vertices for p in parts)
        assert union.num_edges == sum(p.num_edges for p in parts)

    def test_vertices_are_tagged(self):
        union = disjoint_union([snapshot(0)])
        assert all(isinstance(v, tuple) and v[0] == 0 for v in union.vertices())

    def test_empty_rejected(self):
        with pytest.raises(MiningError):
            disjoint_union([])


class TestDynamicMining:
    def test_stable_pattern_detected(self):
        """A correlation planted in every snapshot is highly stable."""
        snapshots = [snapshot(seed) for seed in range(4)]
        result = mine_dynamic(snapshots, top_k=40)
        assert result.num_snapshots == 4
        core_patterns = [
            t
            for t in result.temporal
            if "core" in t.astar.coreset and len(t.astar.leafset) >= 2
        ]
        assert core_patterns
        assert max(t.stability for t in core_patterns) >= 0.75

    def test_bursty_pattern_detected(self):
        """A correlation planted in one snapshot only is bursty."""
        snapshots = [snapshot(seed) for seed in range(3)]
        burst, _ = planted_astar_graph(
            30,
            70,
            [PlantedAStar("burst-core", ("b1", "b2"), strength=1.0)],
            noise_values=("n1",),
            seed=99,
        )
        snapshots.append(burst)
        result = mine_dynamic(snapshots)
        burst_patterns = [
            t for t in result.temporal if "burst-core" in t.astar.coreset
        ]
        assert burst_patterns
        assert all(t.stability <= 0.25 for t in burst_patterns)
        assert any(t in result.bursty() for t in burst_patterns)

    def test_counts_sum_to_frequency(self):
        result = mine_dynamic([snapshot(0), snapshot(1)])
        for temporal in result.temporal:
            assert temporal.total_occurrences == temporal.astar.frequency

    def test_stable_filter_threshold(self):
        result = mine_dynamic([snapshot(0), snapshot(1)])
        for temporal in result.stable(min_stability=1.0):
            assert temporal.stability == 1.0


def labelled_graphs(count, seed):
    """Class 0: p->q correlation; class 1: p->r correlation."""
    graphs, labels = [], []
    for index in range(count):
        label = index % 2
        leaves = ("q",) if label == 0 else ("r",)
        graph, _ = planted_astar_graph(
            25,
            55,
            [PlantedAStar("p", leaves, strength=0.95)],
            noise_values=("n1", "n2"),
            noise_rate=0.2,
            seed=seed + index,
        )
        graphs.append(graph)
        labels.append(label)
    return graphs, labels


class TestFeaturizer:
    def test_shapes(self):
        graphs, _ = labelled_graphs(6, seed=0)
        featurizer = AStarFeaturizer(vocabulary_size=12)
        matrix = featurizer.fit_transform(graphs)
        assert matrix.shape == (6, len(featurizer.vocabulary))
        assert (matrix >= 0).all()

    def test_transform_before_fit(self):
        with pytest.raises(MiningError):
            AStarFeaturizer().transform([star_graph(["x"], [["a"]])])

    def test_fit_empty(self):
        with pytest.raises(MiningError):
            AStarFeaturizer().fit([])

    def test_discriminative_features_exist(self):
        graphs, labels = labelled_graphs(10, seed=3)
        matrix = AStarFeaturizer(vocabulary_size=30).fit_transform(graphs)
        labels = np.asarray(labels)
        gaps = np.abs(
            matrix[labels == 0].mean(axis=0) - matrix[labels == 1].mean(axis=0)
        )
        assert gaps.max() > 0


class TestClassifier:
    def test_learns_planted_classes(self):
        train_graphs, train_labels = labelled_graphs(16, seed=10)
        test_graphs, test_labels = labelled_graphs(8, seed=200)
        classifier = LogisticAStarClassifier(
            featurizer=AStarFeaturizer(vocabulary_size=30), seed=0
        )
        classifier.fit(train_graphs, train_labels)
        accuracy = classifier.score(test_graphs, test_labels)
        assert accuracy >= 0.75, accuracy

    def test_label_validation(self):
        graphs, _ = labelled_graphs(4, seed=0)
        classifier = LogisticAStarClassifier()
        with pytest.raises(MiningError):
            classifier.fit(graphs, [0, 1])
        with pytest.raises(MiningError):
            classifier.fit(graphs, [0, 1, 2, 3])

    def test_predict_before_fit(self):
        with pytest.raises(MiningError):
            LogisticAStarClassifier().predict_proba([])


class TestCLI:
    def test_datasets_listing(self, capsys):
        from repro.cli import main

        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "dblp" in out and "pokec" in out

    def test_generate_stats_mine_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "usflight.json"
        assert main(["generate", "usflight", str(path), "--seed", "1"]) == 0
        assert main(["stats", str(path)]) == 0
        assert "#Nodes" in capsys.readouterr().out
        assert main(["mine", str(path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "a-stars" in out and "->" in out

    def test_mine_basic_method(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs.builders import paper_running_example
        from repro.graphs.io import save_json

        path = tmp_path / "paper.json"
        save_json(paper_running_example(), path)
        assert main(["mine", str(path), "--method", "basic"]) == 0
        assert "cspm-basic" in capsys.readouterr().out
