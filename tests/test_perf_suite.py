"""Tests for the perf-benchmark subsystem (``repro.perf.suite``).

The full suite is exercised by CI's perf-smoke job; here we cover the
building blocks on tiny inputs: measurement of one workload size, the
document shape, the counter-bound checker, and workload determinism.
"""

import json

import pytest

from repro.perf.suite import (
    SCHEMA_VERSION,
    _measure_size,
    _pokec_backend,
    check_bounds,
    construction_report,
    merge_into,
    pokec_sparse_graph,
    run_suite,
    sparse_scaling_graph,
    summarize,
)


@pytest.fixture(scope="module")
def tiny_entry():
    graph = sparse_scaling_graph(3)
    return _measure_size(graph, "communities=3", run_basic_too=True)


class TestMeasureSize:
    def test_runs_all_variants(self, tiny_entry):
        assert set(tiny_entry["runs"]) == {
            "partial/overlap",
            "partial/full",
            "basic/overlap",
            "basic/full",
        }

    def test_counters_present_and_consistent(self, tiny_entry):
        for run in tiny_entry["runs"].values():
            assert run["wall_seconds"] >= 0.0
            assert run["initial_candidate_gains"] >= 0
            assert run["total_gain_computations"] >= run["initial_candidate_gains"]
            assert run["refreshes_skipped"] >= 0
            assert run["dirty_revalidations"] >= 0
        # Peak queue size only exists for the partial variants.
        assert tiny_entry["runs"]["partial/overlap"]["peak_queue_size"] >= 1
        assert tiny_entry["runs"]["basic/overlap"]["peak_queue_size"] == 0

    def test_schema_version_and_lazy_counters(self, tiny_entry):
        assert SCHEMA_VERSION == 7
        partial = tiny_entry["runs"]["partial/overlap"]
        # Partial runs use (and record) the library default scope, and
        # the bound-driven refresh skips at least something on any
        # non-trivial workload.
        assert partial["update_scope"] == "lazy"
        assert partial["refreshes_skipped"] > 0
        # Basic has no queue, so no refreshes to skip or revalidate.
        basic = tiny_entry["runs"]["basic/overlap"]
        assert "update_scope" not in basic
        assert basic["refreshes_skipped"] == 0
        assert basic["dirty_revalidations"] == 0

    def test_schema_v3_mask_fields(self, tiny_entry):
        # The tiny graph resolves "auto" to bigint masks; every run
        # records the backend it executed on and its peak mask bytes,
        # and the entry carries the whole-graph bigint reference.
        assert tiny_entry["mask_backend"] == "bigint"
        assert tiny_entry["bigint_mask_bytes_estimate"] > 0
        for run in tiny_entry["runs"].values():
            assert run["mask_backend"] == "bigint"
            assert run["mask_peak_bytes"] > 0

    def test_schema_v4_construction_seconds(self, tiny_entry):
        # Every series entry records the BuildInvertedDB wall-clock;
        # the tiny label has no recorded pre-columnar baseline.
        assert tiny_entry["construction_seconds"] >= 0.0
        assert "construction_baseline_seconds" not in tiny_entry

    def test_schema_v5_search_fields(self, tiny_entry):
        # Component statistics live on the series entry; the search
        # wall-clock and mode on every run (mode on partial runs only,
        # and the worker knob only when sharded).
        assert tiny_entry["num_components"] >= 1
        assert 0.0 < tiny_entry["largest_component_frac"] <= 1.0
        for run in tiny_entry["runs"].values():
            assert run["search_seconds"] >= 0.0
        partial = tiny_entry["runs"]["partial/overlap"]
        assert partial["search"] == "serial"
        assert "search_workers" not in partial
        assert "search" not in tiny_entry["runs"]["basic/overlap"]

    def test_schema_v5_sharded_counters_identical(self):
        # The sharded path must reproduce the serial counters exactly
        # -- the property the CI sharded smoke gates on at scale.
        graph = sparse_scaling_graph(3)
        serial = _measure_size(graph, "communities=3", run_basic_too=False)
        sharded = _measure_size(
            graph,
            "communities=3",
            run_basic_too=False,
            search="sharded",
            search_workers=2,
        )
        run = sharded["runs"]["partial/overlap"]
        assert run["search"] == "sharded"
        assert run["search_workers"] == 2
        volatile = ("wall_seconds", "search_seconds", "search", "search_workers")
        for name in ("partial/overlap", "partial/full"):
            left = {
                k: v
                for k, v in serial["runs"][name].items()
                if k not in volatile
            }
            right = {
                k: v
                for k, v in sharded["runs"][name].items()
                if k not in volatile
            }
            assert left == right

    def test_recorded_baselines_attach_to_pokec_labels(self):
        from repro.perf.suite import PRE_COLUMNAR_CONSTRUCTION_SECONDS

        graph = pokec_sparse_graph(4)
        entry = _measure_size(
            graph,
            "communities=800",  # label with a recorded baseline
            run_basic_too=False,
            mask_backend="chunked",
            pair_sources=("overlap",),
            workload="pokec-sparse",
        )
        assert entry["construction_baseline_seconds"] == (
            PRE_COLUMNAR_CONSTRUCTION_SECONDS[
                ("pokec-sparse", "communities=800")
            ]
        )

    def test_counters_identical_across_mask_backends(self):
        graph = sparse_scaling_graph(3)
        structural = (
            "initial_candidate_gains",
            "total_gain_computations",
            "peak_queue_size",
            "refreshes_skipped",
            "dirty_revalidations",
            "iterations",
            "final_dl_bits",
        )
        entries = {
            backend: _measure_size(
                graph, "communities=3", run_basic_too=False, mask_backend=backend
            )
            for backend in ("bigint", "chunked", "numpy")
        }
        reference = entries["bigint"]["runs"]["partial/overlap"]
        for backend, entry in entries.items():
            assert entry["mask_backend"] == backend
            run = entry["runs"]["partial/overlap"]
            for field in structural:
                assert run[field] == reference[field], (backend, field)

    def test_bit_exactness_across_sources(self, tiny_entry):
        runs = tiny_entry["runs"]
        assert (
            runs["partial/overlap"]["final_dl_bits"]
            == runs["partial/full"]["final_dl_bits"]
        )
        assert (
            runs["basic/overlap"]["final_dl_bits"]
            == runs["basic/full"]["final_dl_bits"]
        )

    def test_overlap_seeding_never_costlier(self, tiny_entry):
        runs = tiny_entry["runs"]
        assert (
            runs["partial/overlap"]["initial_candidate_gains"]
            <= runs["partial/full"]["initial_candidate_gains"]
        )
        assert tiny_entry["seeding_gain_reduction"] >= 1.0

    def test_entry_is_json_serialisable(self, tiny_entry):
        restored = json.loads(json.dumps(tiny_entry))
        assert restored["label"] == "communities=3"

    def test_summary_renders(self, tiny_entry):
        document = {
            "workloads": [
                {"workload": "sparse-scaling", "series": [tiny_entry]}
            ]
        }
        text = summarize(document)
        assert "sparse-scaling" in text and "communities=3" in text


class TestAcceptance:
    def test_sparse_seeding_gains_cut_at_least_5x(self):
        # The PR's headline counter criterion on the sparse Fig. 5
        # style workload: overlap-driven generation evaluates >=5x
        # fewer gains at seeding than the full scan, bit-exactly.
        from repro.core.cspm_partial import run_partial
        from repro.perf.suite import _prepare

        db0, standard, core, bits, _build_seconds = _prepare(
            sparse_scaling_graph(24)
        )
        overlap = run_partial(
            db0.copy(), standard, core, initial_dl_bits=bits, pair_source="overlap"
        )
        full = run_partial(
            db0.copy(), standard, core, initial_dl_bits=bits, pair_source="full"
        )
        assert overlap.initial_candidate_gains * 5 <= full.initial_candidate_gains
        assert overlap.final_dl_bits == full.final_dl_bits


class TestWorkloadFilter:
    def test_only_restricts_the_run(self):
        document = run_suite(quick=True, only=["usflight"])
        assert [w["workload"] for w in document["workloads"]] == ["usflight"]
        assert document["schema_version"] == SCHEMA_VERSION

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_suite(quick=True, only=["nope"])

    def test_merge_into_preserves_other_workloads(self):
        existing = {
            "schema_version": 1,
            "workloads": [
                {"workload": "sparse-scaling", "series": ["old-sparse"]},
                {"workload": "dblp", "series": ["old-dblp"]},
            ],
        }
        fresh = {
            "schema_version": SCHEMA_VERSION,
            "quick": True,
            "workloads": [{"workload": "dblp", "series": ["new-dblp"]}],
        }
        merged = merge_into(existing, fresh)
        assert merged["schema_version"] == SCHEMA_VERSION
        assert [w["workload"] for w in merged["workloads"]] == [
            "sparse-scaling",
            "dblp",
        ]
        assert merged["workloads"][0]["series"] == ["old-sparse"]
        assert merged["workloads"][1]["series"] == ["new-dblp"]

    def test_merge_into_appends_new_workloads(self):
        existing = {"workloads": [{"workload": "dblp", "series": []}]}
        fresh = {
            "schema_version": SCHEMA_VERSION,
            "workloads": [
                {"workload": "dblp", "series": ["new"]},
                {"workload": "usflight", "series": ["added"]},
            ],
        }
        merged = merge_into(existing, fresh)
        assert [w["workload"] for w in merged["workloads"]] == [
            "dblp",
            "usflight",
        ]


class TestBenchCli:
    def test_workload_filter_merges_into_existing_output(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--output", str(out),
                     "--workload", "usflight"]) == 0
        first = json.loads(out.read_text())
        assert [w["workload"] for w in first["workloads"]] == ["usflight"]
        # Re-measuring another family keeps the usflight entry.
        assert main(["bench", "--quick", "--output", str(out),
                     "--workload", "dblp"]) == 0
        second = json.loads(out.read_text())
        assert sorted(w["workload"] for w in second["workloads"]) == [
            "dblp",
            "usflight",
        ]
        capsys.readouterr()


class TestPokecSparse:
    """The paper-scale family (measured tiny here; CI runs the smoke)."""

    @pytest.fixture(scope="class")
    def pokec_entry(self):
        graph = pokec_sparse_graph(4)
        return _measure_size(
            graph,
            "communities=4",
            run_basic_too=False,
            mask_backend="chunked",
            pair_sources=("overlap",),
        )

    def test_backend_upgrade_rule(self):
        assert _pokec_backend("auto") == "chunked"
        assert _pokec_backend("bigint") == "chunked"
        assert _pokec_backend("chunked") == "chunked"
        assert _pokec_backend("numpy") == "numpy"

    def test_overlap_only_runs(self, pokec_entry):
        assert set(pokec_entry["runs"]) == {"partial/overlap"}
        assert pokec_entry["seeding_gain_reduction"] is None
        assert pokec_entry["partial_wall_speedup"] is None
        assert pokec_entry["basic_wall_speedup"] is None

    def test_chunked_masks_recorded(self, pokec_entry):
        run = pokec_entry["runs"]["partial/overlap"]
        assert pokec_entry["mask_backend"] == "chunked"
        assert run["mask_backend"] == "chunked"
        assert run["mask_peak_bytes"] > 0
        assert pokec_entry["bigint_mask_bytes_estimate"] > 0

    def test_summary_handles_null_ratios(self, pokec_entry):
        text = summarize(
            {"workloads": [{"workload": "pokec-sparse", "series": [pokec_entry]}]}
        )
        assert "pokec-sparse" in text and "chunked" in text

    def test_deterministic(self):
        first = pokec_sparse_graph(3)
        second = pokec_sparse_graph(3)
        assert first.num_vertices == second.num_vertices
        assert sorted(first.edges()) == sorted(second.edges())


class TestSparseScalingGraph:
    def test_deterministic(self):
        first = sparse_scaling_graph(3)
        second = sparse_scaling_graph(3)
        assert first.num_vertices == second.num_vertices
        assert sorted(first.edges()) == sorted(second.edges())

    def test_scales_value_universe(self):
        small = sparse_scaling_graph(2)
        large = sparse_scaling_graph(4)
        assert len(large.attribute_values()) > len(small.attribute_values())


class TestCheckBounds:
    def document(
        self, seed_gains=100, reduction=8.0, total=500, skipped=900, dirty=40
    ):
        return {
            "workloads": [
                {
                    "workload": "sparse-scaling",
                    "series": [
                        {
                            "label": "communities=48",
                            "seeding_gain_reduction": reduction,
                            "bigint_mask_bytes_estimate": 1000,
                            "runs": {
                                "partial/overlap": {
                                    "initial_candidate_gains": seed_gains,
                                    "total_gain_computations": total,
                                    "refreshes_skipped": skipped,
                                    "dirty_revalidations": dirty,
                                    "mask_backend": "chunked",
                                    "mask_peak_bytes": 100,
                                }
                            },
                        }
                    ],
                }
            ]
        }

    def test_passes_within_bounds(self):
        bounds = {
            "__comment": "ignored",
            "sparse-scaling": {
                "communities=48": {
                    "max_initial_candidate_gains": 150,
                    "min_seeding_gain_reduction": 5.0,
                    "max_total_gain_computations": 600,
                }
            },
        }
        assert check_bounds(self.document(), bounds) == []

    def test_flags_each_regression(self):
        bounds = {
            "sparse-scaling": {
                "communities=48": {
                    "max_initial_candidate_gains": 50,
                    "min_seeding_gain_reduction": 10.0,
                    "max_total_gain_computations": 400,
                }
            }
        }
        failures = check_bounds(self.document(), bounds)
        assert len(failures) == 3
        assert any("initial_candidate_gains" in f for f in failures)

    def test_lazy_counter_bounds_flagged(self):
        bounds = {
            "sparse-scaling": {
                "communities=48": {
                    "min_refreshes_skipped": 1000,
                    "max_dirty_revalidations": 30,
                }
            }
        }
        failures = check_bounds(self.document(), bounds)
        assert len(failures) == 2
        assert any("refreshes_skipped" in f for f in failures)
        assert any("dirty_revalidations" in f for f in failures)

    def test_lazy_counter_bounds_pass(self):
        bounds = {
            "sparse-scaling": {
                "communities=48": {
                    "min_refreshes_skipped": 500,
                    "max_dirty_revalidations": 50,
                }
            }
        }
        assert check_bounds(self.document(), bounds) == []

    def test_seeding_bound_on_overlap_only_entry_reports_not_crashes(self):
        # pokec-sparse entries are overlap-only: seeding_gain_reduction
        # is None.  A (mistaken) bound on it must surface as a failure
        # message, not a TypeError.
        document = self.document()
        entry = document["workloads"][0]["series"][0]
        entry["seeding_gain_reduction"] = None
        bounds = {
            "sparse-scaling": {
                "communities=48": {"min_seeding_gain_reduction": 2.0}
            }
        }
        failures = check_bounds(document, bounds)
        assert len(failures) == 1 and "not measured" in failures[0]

    def test_mask_memory_reduction_bound(self):
        # The fixture document holds a 10x reduction (1000 / 100).
        bounds = {
            "sparse-scaling": {
                "communities=48": {"min_mask_memory_reduction": 5.0}
            }
        }
        assert check_bounds(self.document(), bounds) == []
        bounds["sparse-scaling"]["communities=48"][
            "min_mask_memory_reduction"
        ] = 20.0
        failures = check_bounds(self.document(), bounds)
        assert len(failures) == 1 and "mask memory reduction" in failures[0]

    def test_required_mask_backend(self):
        bounds = {
            "sparse-scaling": {
                "communities=48": {"require_mask_backend": "chunked"}
            }
        }
        assert check_bounds(self.document(), bounds) == []
        bounds["sparse-scaling"]["communities=48"][
            "require_mask_backend"
        ] = "numpy"
        failures = check_bounds(self.document(), bounds)
        assert len(failures) == 1 and "mask_backend" in failures[0]

    def test_missing_workload_or_series_reported(self):
        bounds = {
            "nope": {"x": {"max_initial_candidate_gains": 1}},
            "sparse-scaling": {
                "communities=99": {"max_total_gain_computations": 1}
            },
        }
        failures = check_bounds(self.document(), bounds)
        assert len(failures) == 2

    def test_report_only_series_may_be_absent(self):
        # A full-suite-only label carrying just a construction
        # reference must not fail the quick flavour's check.
        bounds = {
            "sparse-scaling": {
                "communities=99": {"max_construction_seconds": 1.0}
            }
        }
        assert check_bounds(self.document(), bounds) == []

    def test_report_only_workload_may_be_absent(self):
        # Same at the workload level: pokec-xl is skipped entirely
        # under --quick, so a bounds section holding only construction
        # references must not fail the quick check — but a section
        # with any enforceable key still must.
        report_only = {
            "pokec-xl": {
                "communities=32000": {"max_construction_seconds": 30.0}
            }
        }
        assert check_bounds(self.document(), report_only) == []
        enforceable = {
            "pokec-xl": {
                "communities=32000": {"max_total_gain_computations": 1}
            }
        }
        assert len(check_bounds(self.document(), enforceable)) == 1

    def test_repo_bounds_file_is_wellformed(self):
        from pathlib import Path

        path = Path(__file__).parents[1] / "benchmarks" / "perf_bounds.json"
        bounds = json.loads(path.read_text())
        constrained = [k for k in bounds if not k.startswith("__")]
        assert constrained == ["sparse-scaling", "pokec-sparse", "pokec-xl"]
        # pokec-xl never runs under --quick, so its section must stay
        # purely report-only (check_bounds would otherwise fail CI).
        for constraints in bounds["pokec-xl"].values():
            assert set(constraints) <= {"max_construction_seconds"}
        pokec = bounds["pokec-sparse"]["communities=800"]
        # The acceptance-criterion floor: chunked masks must stay at
        # least 5x below the whole-graph bigint estimate.
        assert pokec["min_mask_memory_reduction"] >= 5.0
        assert pokec["require_mask_backend"] == "chunked"


class TestWorkloadCatalog:
    """Satellite: --list-workloads / --list discoverability."""

    def test_catalog_covers_every_registered_family(self):
        from repro.perf.suite import WORKLOAD_NAMES, workload_catalog

        names = [record["workload"] for record in workload_catalog()]
        assert names == list(WORKLOAD_NAMES)

    def test_catalog_lists_quick_and_full_sizes(self):
        from repro.perf.suite import workload_catalog

        by_name = {r["workload"]: r for r in workload_catalog()}
        sparse = by_name["sparse-scaling"]
        assert any("communities=16" in label for label in sparse["quick"])
        assert any("communities=64" in label for label in sparse["full"])
        xl = by_name["pokec-xl"]
        assert xl["quick"] == []  # full suite only
        assert any("communities=32000" in label for label in xl["full"])
        assert any("1600000 vertices" in label for label in xl["full"])

    def test_format_renders_every_family(self):
        from repro.perf.suite import WORKLOAD_NAMES, format_workload_catalog

        text = format_workload_catalog()
        for name in WORKLOAD_NAMES:
            assert name in text
        assert "skipped under --quick" in text

    def test_bench_cli_list_workloads(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "pokec-xl" in out and "sparse-scaling" in out

    def test_perf_suite_script_list_alias(self, capsys):
        from repro.perf.suite import main as suite_main

        assert suite_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "pokec-xl" in out

    def test_pokec_xl_skipped_under_quick(self):
        document = run_suite(quick=True, only=["pokec-xl"])
        assert document["workloads"] == []


class TestConstructionReporting:
    """Satellite: report-only max_construction_seconds handling."""

    def entry(self, seconds, baseline=None):
        entry = {"label": "communities=800", "construction_seconds": seconds}
        if baseline is not None:
            entry["construction_baseline_seconds"] = baseline
        return {
            "workloads": [
                {"workload": "pokec-sparse", "series": [entry]}
            ]
        }

    BOUNDS = {
        "__comment": "x",
        "pokec-sparse": {
            "communities=800": {"max_construction_seconds": 1.0}
        },
    }

    def test_within_reference_reports_and_never_fails(self):
        document = self.entry(0.5, baseline=1.5)
        lines = construction_report(document, self.BOUNDS)
        assert len(lines) == 1
        assert "within" in lines[0]
        assert "3.00x" in lines[0]  # baseline ratio 1.5 / 0.5
        assert check_bounds(document, self.BOUNDS) == []

    def test_over_reference_is_report_only(self):
        document = self.entry(2.0)
        lines = construction_report(document, self.BOUNDS)
        assert len(lines) == 1
        assert "OVER (report-only)" in lines[0]
        # The counter checker never fails on wall-clock.
        assert check_bounds(document, self.BOUNDS) == []

    def test_missing_entries_are_silently_skipped(self):
        assert construction_report({"workloads": []}, self.BOUNDS) == []


class TestPartitionedSuite:
    """The suite-level construction knob is a bit-exactness gate."""

    def test_partitioned_counters_identical_to_serial(self):
        graph = sparse_scaling_graph(3)
        serial = _measure_size(
            graph, "communities=3", run_basic_too=False
        )
        partitioned = _measure_size(
            graph,
            "communities=3",
            run_basic_too=False,
            construction="partitioned",
            construction_workers=2,
        )
        structural = (
            "initial_candidate_gains",
            "total_gain_computations",
            "peak_queue_size",
            "refreshes_skipped",
            "dirty_revalidations",
            "iterations",
            "final_dl_bits",
        )
        for field in structural:
            assert (
                partitioned["runs"]["partial/overlap"][field]
                == serial["runs"]["partial/overlap"][field]
            ), field

    def test_run_suite_records_construction_knobs(self):
        document = run_suite(
            quick=True,
            only=["usflight"],
            construction="partitioned",
            construction_workers=2,
        )
        assert document["construction"] == "partitioned"
        assert document["construction_workers"] == 2

    def test_unknown_construction_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="unknown construction"):
            run_suite(quick=True, only=["usflight"], construction="sharded")


class TestAtomicWrite:
    """A failed output write must leave no orphaned ``.tmp`` file and
    must not touch an existing output document."""

    def test_failed_write_cleans_tmp_and_preserves_output(
        self, tmp_path, monkeypatch, capsys
    ):
        import argparse

        import repro.perf.suite as suite_module

        out = tmp_path / "bench.json"
        out.write_text('{"previous": true}')
        monkeypatch.setattr(
            suite_module,
            "run_suite",
            lambda **kwargs: {"schema_version": SCHEMA_VERSION, "workloads": []},
        )

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(suite_module.json, "dump", explode)
        args = argparse.Namespace(
            quick=True,
            seed=0,
            workloads=None,
            mask_backend=None,
            construction=None,
            construction_workers=None,
            search=None,
            search_workers=None,
            out=str(out),
            check=None,
            list_workloads=False,
        )
        with pytest.raises(OSError, match="disk full"):
            suite_module.execute(args)
        assert not (tmp_path / "bench.json.tmp").exists()
        assert json.loads(out.read_text()) == {"previous": True}
        capsys.readouterr()
