"""Tests for the fit_many batch entry point."""

import pytest

from repro import CSPM, CSPMConfig, MiningError, fit_many
from repro.batch import BatchResult, BatchRun
from repro.graphs.builders import paper_running_example
from repro.graphs.generators import PlantedAStar, planted_astar_graph


def small_graphs():
    graphs = [paper_running_example()]
    for seed in (1, 2):
        graph, _ = planted_astar_graph(
            40,
            90,
            [PlantedAStar("core", ("l1", "l2"), strength=0.9)],
            noise_values=("n1", "n2"),
            noise_rate=0.2,
            seed=seed,
        )
        graphs.append(graph)
    return graphs


class TestSerial:
    def test_matches_per_graph_fits(self):
        graphs = small_graphs()
        config = CSPMConfig()
        batch = fit_many(graphs, config)
        assert len(batch) == len(graphs)
        for index, (run, graph) in enumerate(zip(batch, graphs)):
            reference = CSPM(config=config).fit(graph)
            assert run.index == index
            assert run.result.astars == reference.astars
            assert (
                run.result.final_dl.total_bits == reference.final_dl.total_bits
            )

    def test_timing_recorded(self):
        batch = fit_many(small_graphs())
        assert all(run.seconds >= 0 for run in batch)
        assert batch.total_seconds == pytest.approx(
            sum(run.seconds for run in batch)
        )

    def test_default_config(self):
        batch = fit_many([paper_running_example()])
        assert batch.config == CSPMConfig()
        assert batch[0].result.config == CSPMConfig()

    def test_results_property_order(self):
        graphs = small_graphs()
        batch = fit_many(graphs)
        assert batch.results == [run.result for run in batch.runs]

    def test_summary_mentions_every_run(self):
        batch = fit_many(small_graphs())
        text = batch.summary()
        for run in batch:
            assert f"[{run.index}]" in text

    def test_run_to_dict_round_trips_result(self):
        run = fit_many([paper_running_example()])[0]
        document = run.to_dict()
        assert document["index"] == 0
        assert document["result"]["astars"]


class TestProcess:
    def test_process_executor_matches_serial(self):
        graphs = small_graphs()
        config = CSPMConfig(top_k=15)
        serial = fit_many(graphs, config, executor="serial")
        parallel = fit_many(graphs, config, n_jobs=2, executor="process")
        for left, right in zip(serial, parallel):
            assert left.result.astars == right.result.astars
            assert (
                left.result.final_dl.total_bits
                == right.result.final_dl.total_bits
            )

    def test_single_graph_short_circuits(self):
        # one payload never spawns workers, whatever the executor
        batch = fit_many([paper_running_example()], n_jobs=4, executor="process")
        assert len(batch) == 1


class TestValidation:
    def test_unknown_executor(self):
        with pytest.raises(MiningError):
            fit_many([paper_running_example()], executor="threads")

    def test_bad_n_jobs(self):
        with pytest.raises(MiningError):
            fit_many([paper_running_example()], n_jobs=0)

    def test_empty_input_is_empty_batch(self):
        batch = fit_many([])
        assert isinstance(batch, BatchResult)
        assert len(batch) == 0
        assert batch.total_seconds == 0.0

    def test_getitem(self):
        batch = fit_many([paper_running_example()])
        assert isinstance(batch[0], BatchRun)
