"""Tests of the MDL accounting: Eq. 1-8 identities and properties."""

import math

import pytest

from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import (
    astar_code_length,
    conditional_entropy,
    data_leaf_bits,
    description_length,
    row_code_length,
    xlog2x,
)


def fs(*values):
    return frozenset(values)


class TestXlog2x:
    def test_zero_convention(self):
        assert xlog2x(0) == 0.0
        assert xlog2x(-1) == 0.0

    def test_values(self):
        assert xlog2x(2) == pytest.approx(2.0)
        assert xlog2x(8) == pytest.approx(24.0)


class TestEquationEight:
    def test_entropy_identity(self, paper_db):
        """Eq. 8: L(I|M) == s * H(Y|X)."""
        s = paper_db.total_frequency()
        assert data_leaf_bits(paper_db) == pytest.approx(
            s * conditional_entropy(paper_db)
        )

    def test_identity_survives_merges(self, paper_db):
        paper_db.merge(fs("b"), fs("c"))
        s = paper_db.total_frequency()
        assert data_leaf_bits(paper_db) == pytest.approx(
            s * conditional_entropy(paper_db)
        )

    def test_manual_value_on_paper_graph(self, paper_db):
        """Recompute Eq. 8 by hand from the Fig. 2 rows."""
        expected = 0.0
        by_core = {}
        for core, _leaf, frequency in paper_db.row_items():
            by_core.setdefault(core, []).append(frequency)
        for frequencies in by_core.values():
            c = sum(frequencies)
            expected += c * math.log2(c)
            expected -= sum(f * math.log2(f) for f in frequencies)
        assert data_leaf_bits(paper_db) == pytest.approx(expected)

    def test_data_cost_nonnegative(self, paper_db):
        assert data_leaf_bits(paper_db) >= 0.0


class TestRowCodes:
    def test_row_code_length_eq6(self, paper_db):
        # Row ({c} core, {a} leaf): fL=2, fc=3.
        assert row_code_length(paper_db, fs("c"), fs("a")) == pytest.approx(
            -math.log2(2 / 3)
        )

    def test_astar_code_length_eq4(self, paper_db, paper_tables):
        _standard, core_table = paper_tables
        total = astar_code_length(paper_db, core_table, fs("c"), fs("a"))
        assert total == pytest.approx(
            core_table.code_length(fs("c")) + row_code_length(paper_db, fs("c"), fs("a"))
        )

    def test_missing_row_raises(self, paper_db):
        with pytest.raises(ValueError):
            row_code_length(paper_db, fs("c"), fs("zzz"))


class TestDescriptionLength:
    def test_breakdown_sums(self, paper_db, paper_tables):
        standard, core = paper_tables
        breakdown = description_length(paper_db, standard, core)
        assert breakdown.total_bits == pytest.approx(
            breakdown.model_bits + breakdown.data_bits
        )
        assert breakdown.model_bits == pytest.approx(
            breakdown.model_core_bits + breakdown.model_leaf_bits
        )

    def test_all_components_nonnegative(self, paper_db, paper_tables):
        standard, core = paper_tables
        breakdown = description_length(paper_db, standard, core)
        assert breakdown.model_core_bits >= 0
        assert breakdown.model_leaf_bits >= 0
        assert breakdown.data_leaf_bits >= 0
        assert breakdown.data_core_bits >= 0

    def test_merging_compressible_pair_reduces_total(
        self, paper_db, paper_tables
    ):
        standard, core = paper_tables
        before = description_length(paper_db, standard, core).total_bits
        paper_db.merge(fs("b"), fs("c"))  # the paper's chosen merge
        after = description_length(paper_db, standard, core).total_bits
        assert after < before

    def test_without_core_table(self, paper_db, paper_tables):
        standard, _core = paper_tables
        breakdown = description_length(paper_db, standard, None)
        assert breakdown.model_core_bits == 0.0
        assert breakdown.data_core_bits == 0.0
        assert breakdown.data_leaf_bits > 0


class TestOrderIndependence:
    """DET001 regression: conditional_entropy sums in sorted order, so
    the float it returns is bit-identical whatever insertion order (and
    hence dict iteration order) the database was built with."""

    def test_conditional_entropy_identical_across_insertion_orders(self):
        from repro.graphs.attributed_graph import AttributedGraph

        edges = [(1, 2), (1, 3), (1, 4), (3, 5), (4, 5), (2, 5)]
        attributes = {
            1: {"a"},
            2: {"a", "c"},
            3: {"c"},
            4: {"b"},
            5: {"a", "b"},
        }
        forward = AttributedGraph.from_edges(
            edges=edges, attributes=attributes
        )
        backward = AttributedGraph.from_edges(
            edges=list(reversed(edges)),
            attributes=dict(reversed(list(attributes.items()))),
        )
        db_forward = InvertedDatabase.from_graph(forward)
        db_backward = InvertedDatabase.from_graph(backward)
        # Bit-identical, not approx: the sorted iteration makes the
        # float summation order canonical.
        assert conditional_entropy(db_forward) == conditional_entropy(
            db_backward
        )

    def test_entropy_matches_data_leaf_bits_exactly_after_merges(
        self, paper_db
    ):
        paper_db.merge(fs("b"), fs("c"))
        s = paper_db.total_frequency()
        assert data_leaf_bits(paper_db) == pytest.approx(
            s * conditional_entropy(paper_db)
        )
