"""Tests for the completion split, metrics and fusion."""

import math

import numpy as np
import pytest

from repro.completion.fusion import (
    cspm_score_matrix,
    fuse_scores,
    normalize_scores,
)
from repro.completion.metrics import evaluate_all, ndcg_at_k, recall_at_k
from repro.completion.task import make_completion_data
from repro.core.miner import CSPM
from repro.core.scoring import AStarScorer
from repro.errors import DatasetError, ModelError


class TestSplit:
    def test_masks_partition_nodes(self, planted):
        graph, _ = planted
        data = make_completion_data(graph, test_fraction=0.4, seed=0)
        assert (data.train_mask ^ data.test_mask).all()
        assert data.test_mask.sum() == pytest.approx(
            0.4 * data.num_nodes, abs=2
        )

    def test_features_zeroed_on_test_rows(self, planted):
        graph, _ = planted
        data = make_completion_data(graph, seed=1)
        assert (data.features[data.test_mask] == 0).all()
        rows = np.where(data.train_mask)[0]
        assert np.allclose(data.features[rows], data.targets[rows])

    def test_observed_graph_hides_test_attributes(self, planted):
        graph, _ = planted
        data = make_completion_data(graph, seed=2)
        for row in data.test_rows():
            vertex = data.vertex_order[row]
            assert not data.observed_graph.attributes_of(vertex)

    def test_adjacency_symmetric_and_matches_graph(self, planted):
        graph, _ = planted
        data = make_completion_data(graph, seed=0)
        assert np.allclose(data.adjacency, data.adjacency.T)
        assert data.adjacency.sum() == 2 * graph.num_edges

    def test_targets_match_graph(self, planted):
        graph, _ = planted
        data = make_completion_data(graph, seed=0)
        index = {value: i for i, value in enumerate(data.value_order)}
        for row, vertex in enumerate(data.vertex_order):
            expected = {index[v] for v in graph.attributes_of(vertex)}
            assert set(np.where(data.targets[row] > 0)[0]) == expected

    def test_split_is_seeded(self, planted):
        graph, _ = planted
        first = make_completion_data(graph, seed=5)
        second = make_completion_data(graph, seed=5)
        assert (first.test_mask == second.test_mask).all()

    def test_invalid_fraction(self, planted):
        graph, _ = planted
        with pytest.raises(DatasetError):
            make_completion_data(graph, test_fraction=0.0)
        with pytest.raises(DatasetError):
            make_completion_data(graph, test_fraction=1.0)


class TestMetrics:
    def test_recall_perfect_ranking(self):
        scores = np.array([[0.9, 0.8, 0.1, 0.0]])
        targets = np.array([[1, 1, 0, 0]])
        assert recall_at_k(scores, targets, 2) == 1.0

    def test_recall_partial(self):
        scores = np.array([[0.9, 0.1, 0.8, 0.0]])
        targets = np.array([[1, 1, 0, 0]])
        assert recall_at_k(scores, targets, 2) == 0.5

    def test_ndcg_position_sensitivity(self):
        targets = np.array([[1, 0, 0]])
        first = ndcg_at_k(np.array([[0.9, 0.5, 0.1]]), targets, 3)
        second = ndcg_at_k(np.array([[0.5, 0.9, 0.1]]), targets, 3)
        assert first == 1.0
        assert second < first

    def test_ndcg_ideal_normalisation(self):
        # Two relevant items ranked top-2 -> NDCG 1 regardless of order.
        targets = np.array([[1, 1, 0]])
        assert ndcg_at_k(np.array([[0.9, 0.8, 0.1]]), targets, 2) == 1.0

    def test_empty_target_rows_skipped(self):
        scores = np.array([[0.9, 0.1], [0.5, 0.5]])
        targets = np.array([[1, 0], [0, 0]])
        assert recall_at_k(scores, targets, 1) == 1.0

    def test_all_empty_targets_raise(self):
        with pytest.raises(ModelError):
            recall_at_k(np.ones((2, 2)), np.zeros((2, 2)), 1)

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            ndcg_at_k(np.ones((2, 3)), np.ones((3, 2)), 1)

    def test_evaluate_all_keys(self):
        metrics = evaluate_all(np.array([[0.9, 0.1]]), np.array([[1, 0]]), (1, 2))
        assert set(metrics) == {"Recall@1", "Recall@2", "NDCG@1", "NDCG@2"}


class TestNormalisation:
    def test_range_and_infinity_handling(self):
        scores = np.array([[1.0, 3.0, -math.inf], [2.0, 2.0, 2.0]])
        normalized = normalize_scores(scores)
        assert normalized[0, 1] == pytest.approx(1.0)
        assert normalized[0, 2] == 0.0
        assert normalized[0, 0] < normalized[0, 1]
        # Constant rows become uniform 0.5.
        assert np.allclose(normalized[1], 0.5)

    def test_all_infinite_row_is_zero(self):
        normalized = normalize_scores(np.array([[-math.inf, -math.inf]]))
        assert np.allclose(normalized, 0.0)

    def test_monotone(self):
        scores = np.array([[1.0, 2.0, 3.0]])
        normalized = normalize_scores(scores)[0]
        assert normalized[0] < normalized[1] < normalized[2]


class TestFusion:
    def test_fusion_prefers_agreement(self):
        model = np.array([[0.9, 0.8, 0.1]])
        cspm = np.array([[3.0, -1.0, -1.0]])
        fused = fuse_scores(model, cspm)[0]
        assert fused[0] > fused[1] > fused[2]

    def test_silent_cspm_rows_fall_back_to_model(self):
        model = np.array([[0.9, 0.2, 0.4]])
        cspm = np.full((1, 3), -math.inf)
        fused = fuse_scores(model, cspm)
        assert np.allclose(fused, normalize_scores(model))

    def test_cspm_score_matrix_masks_unseen(self, planted):
        graph, _ = planted
        data = make_completion_data(graph, seed=0)
        result = CSPM().fit(data.observed_graph)
        matrix = cspm_score_matrix(AStarScorer(result), data, rows=data.test_rows())
        # Untouched rows stay -inf everywhere.
        untouched = np.where(data.train_mask)[0][0]
        assert not np.isfinite(matrix[untouched]).any()
        # Scored rows have at least one finite entry.
        scored = data.test_rows()[0]
        assert np.isfinite(matrix[scored]).any()
