"""Tests of the exception hierarchy and public package surfaces."""

import importlib

import pytest

from repro.errors import (
    DatasetError,
    EncodingError,
    GraphError,
    MiningError,
    ModelError,
    ReproError,
)

SUBPACKAGES = [
    "repro.graphs",
    "repro.core",
    "repro.itemsets",
    "repro.nn",
    "repro.nn.models",
    "repro.completion",
    "repro.alarms",
    "repro.datasets",
]


class TestHierarchy:
    @pytest.mark.parametrize(
        "error",
        [DatasetError, EncodingError, GraphError, MiningError, ModelError],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_catchable_at_boundary(self):
        from repro import CSPM
        from repro.graphs.attributed_graph import AttributedGraph

        with pytest.raises(ReproError):
            CSPM().fit(AttributedGraph())


class TestPublicSurfaces:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol}"

    def test_top_level_docstrings(self):
        for name in SUBPACKAGES:
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} lacks a module docstring"

    def test_public_classes_documented(self):
        from repro.core.inverted_db import InvertedDatabase
        from repro.core.miner import CSPM, CSPMResult
        from repro.core.scoring import AStarScorer

        for obj in (InvertedDatabase, CSPM, CSPMResult, AStarScorer):
            assert obj.__doc__
            for attr_name in dir(obj):
                attr = getattr(obj, attr_name)
                if attr_name.startswith("_") or not callable(attr):
                    continue
                assert attr.__doc__, f"{obj.__name__}.{attr_name} undocumented"
