"""Tests for candidate pair enumeration and the gain priority queue."""

from repro.core.candidates import (
    CandidateQueue,
    LeafsetInterner,
    canonical_pair,
    enumerate_pairs,
    leafset_sort_key,
    pair_sort_key,
)


def fs(*values):
    return frozenset(values)


class TestLeafsetInterner:
    def test_ids_are_stable_first_sight(self):
        interner = LeafsetInterner()
        assert interner.intern(fs("b")) == 0
        assert interner.intern(fs("a")) == 1
        assert interner.intern(fs("b")) == 0  # unchanged on re-intern
        assert interner.leafset_of(1) == fs("a")
        assert len(interner) == 2 and fs("a") in interner

    def test_canonical_pair_follows_ids_not_repr(self):
        interner = LeafsetInterner()
        interner.intern_all([fs("z"), fs("a")])
        # z was seen first, so it sorts first regardless of repr order.
        assert interner.canonical_pair(fs("a"), fs("z")) == (fs("z"), fs("a"))
        assert interner.pair_key((fs("z"), fs("a"))) == (0, 1)

    def test_order_sorts_by_id(self):
        interner = LeafsetInterner()
        interner.intern_all([fs("c"), fs("a"), fs("b")])
        assert interner.order([fs("b"), fs("a"), fs("c")]) == [
            fs("c"),
            fs("a"),
            fs("b"),
        ]

    def test_copy_is_independent(self):
        interner = LeafsetInterner()
        interner.intern(fs("a"))
        clone = interner.copy()
        clone.intern(fs("b"))
        assert fs("b") in clone and fs("b") not in interner

    def test_scoped_ordering_no_module_state(self):
        # Two registries assign ids independently: ordering state is
        # per-database, not leaked through a module-level cache.
        first = LeafsetInterner()
        second = LeafsetInterner()
        first.intern_all([fs("a"), fs("b")])
        second.intern_all([fs("b"), fs("a")])
        assert first.sort_key(fs("a")) == 0
        assert second.sort_key(fs("a")) == 1


class TestOrdering:
    def test_leafset_sort_key_deterministic(self):
        assert leafset_sort_key(fs("b", "a")) == ("'a'", "'b'")

    def test_canonical_pair_is_order_insensitive(self):
        assert canonical_pair(fs("b"), fs("a")) == canonical_pair(fs("a"), fs("b"))

    def test_enumerate_pairs_count_and_order(self):
        leafsets = [fs("c"), fs("a"), fs("b")]
        pairs = list(enumerate_pairs(leafsets))
        assert len(pairs) == 3
        assert pairs[0] == (fs("a"), fs("b"))
        assert all(pair == canonical_pair(*pair) for pair in pairs)

    def test_pair_sort_key_orders_lexicographically(self):
        early = (fs("a"), fs("b"))
        late = (fs("a"), fs("c"))
        assert pair_sort_key(early) < pair_sort_key(late)


class TestCandidateQueue:
    def test_pop_returns_best_gain(self):
        queue = CandidateQueue()
        queue.set(canonical_pair(fs("a"), fs("b")), 1.0)
        queue.set(canonical_pair(fs("a"), fs("c")), 3.0)
        queue.set(canonical_pair(fs("b"), fs("c")), 2.0)
        pair, gain = queue.pop()
        assert gain == 3.0
        assert pair == canonical_pair(fs("a"), fs("c"))
        assert len(queue) == 2

    def test_update_replaces_gain(self):
        queue = CandidateQueue()
        pair = canonical_pair(fs("a"), fs("b"))
        queue.set(pair, 1.0)
        queue.set(pair, 5.0)
        assert queue.gain_of(pair) == 5.0
        popped_pair, gain = queue.pop()
        assert popped_pair == pair and gain == 5.0
        assert queue.pop() is None

    def test_discard_removes_lazily(self):
        queue = CandidateQueue()
        best = canonical_pair(fs("a"), fs("b"))
        other = canonical_pair(fs("a"), fs("c"))
        queue.set(best, 9.0)
        queue.set(other, 1.0)
        queue.discard(best)
        assert best not in queue
        pair, gain = queue.pop()
        assert pair == other and gain == 1.0

    def test_peek_does_not_remove(self):
        queue = CandidateQueue()
        pair = canonical_pair(fs("a"), fs("b"))
        queue.set(pair, 2.0)
        assert queue.peek() == (pair, 2.0)
        assert len(queue) == 1

    def test_tie_break_is_deterministic(self):
        queue = CandidateQueue()
        first = canonical_pair(fs("a"), fs("b"))
        second = canonical_pair(fs("a"), fs("c"))
        queue.set(second, 1.0)
        queue.set(first, 1.0)
        pair, _gain = queue.pop()
        assert pair == first  # lexicographically smaller wins ties

    def test_empty_queue(self):
        queue = CandidateQueue()
        assert queue.pop() is None
        assert queue.pop_entry() is None
        assert queue.peek() is None
        assert len(queue) == 0

    def test_payload_travels_with_entry(self):
        queue = CandidateQueue()
        pair = canonical_pair(fs("a"), fs("b"))
        queue.set(pair, 2.0, payload=("breakdown", 7))
        assert queue.payload_of(pair) == ("breakdown", 7)
        popped_pair, gain, payload = queue.pop_entry()
        assert popped_pair == pair and gain == 2.0
        assert payload == ("breakdown", 7)
        assert queue.payload_of(pair) is None

    def test_payload_replaced_on_update(self):
        queue = CandidateQueue()
        pair = canonical_pair(fs("a"), fs("b"))
        queue.set(pair, 2.0, payload="old")
        queue.set(pair, 3.0, payload="new")
        assert queue.payload_of(pair) == "new"
        assert queue.pop_entry() == (pair, 3.0, "new")

    def test_payload_defaults_to_none(self):
        queue = CandidateQueue()
        pair = canonical_pair(fs("a"), fs("b"))
        queue.set(pair, 1.0)
        assert queue.payload_of(pair) is None
        assert queue.pop_entry() == (pair, 1.0, None)

    def test_interner_tiebreak_follows_ids(self):
        interner = LeafsetInterner()
        interner.intern_all([fs("z"), fs("a"), fs("m")])
        queue = CandidateQueue(interner)
        first = interner.canonical_pair(fs("z"), fs("m"))
        second = interner.canonical_pair(fs("a"), fs("m"))
        queue.set(second, 1.0)
        queue.set(first, 1.0)
        pair, _gain = queue.pop()
        assert pair == first  # (0, 2) beats (1, 2) on equal gain

    def test_peak_size_tracks_high_water_mark(self):
        queue = CandidateQueue()
        queue.set(canonical_pair(fs("a"), fs("b")), 1.0)
        queue.set(canonical_pair(fs("a"), fs("c")), 2.0)
        queue.pop()
        queue.pop()
        queue.set(canonical_pair(fs("b"), fs("c")), 3.0)
        assert len(queue) == 1
        assert queue.peak_size == 2
