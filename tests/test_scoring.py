"""Tests for the Algorithm 5 scoring module."""

import math

import pytest

from repro.core.astar import AStar
from repro.core.scoring import AStarScorer, leafset_weight
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph


def star(core, leaves, code_length):
    return AStar(
        coreset=frozenset(core),
        leafset=frozenset(leaves),
        frequency=2,
        coreset_frequency=4,
        code_length=code_length,
    )


@pytest.fixture()
def small_graph():
    return AttributedGraph.from_edges(
        [(0, 1), (0, 2), (3, 4)],
        {0: set(), 1: {"x"}, 2: {"y"}, 3: set(), 4: {"z"}},
    )


class TestLeafsetWeight:
    def test_full_match_has_minimal_weight(self):
        assert leafset_weight(frozenset({"x"}), frozenset({"x", "y"})) == 1.0

    def test_no_match_has_maximal_weight(self):
        assert leafset_weight(frozenset({"q"}), frozenset({"x"})) == 2.0

    def test_partial_match_in_between(self):
        weight = leafset_weight(frozenset({"x", "q"}), frozenset({"x"}))
        assert 1.0 < weight < 2.0

    def test_empty_leafset_maximal(self):
        assert leafset_weight(frozenset(), frozenset({"x"})) == 2.0

    def test_monotone_in_containment(self):
        neighbours = frozenset({"x", "y", "z"})
        weights = [
            leafset_weight(frozenset({"x", "y", "q", "r"}), neighbours),
            leafset_weight(frozenset({"x", "q"}), neighbours),
            leafset_weight(frozenset({"x", "y"}), neighbours),
        ]
        assert weights[2] < weights[0]
        assert weights[2] < weights[1]


class TestScorer:
    def test_empty_model_rejected(self):
        with pytest.raises(MiningError):
            AStarScorer([])

    def test_matching_core_scores_higher(self, small_graph):
        scorer = AStarScorer(
            [
                star({"a"}, {"x", "y"}, code_length=3.0),
                star({"b"}, {"q"}, code_length=3.0),
            ]
        )
        scores = scorer.score(small_graph, 0)
        # a's leafset fully matches vertex 0's neighbourhood {x, y};
        # b's does not match at all -> a must score higher.
        assert scores["a"] > scores["b"]

    def test_shorter_code_scores_higher_when_match_equal(self, small_graph):
        scorer = AStarScorer(
            [
                star({"a"}, {"x"}, code_length=2.0),
                star({"b"}, {"x"}, code_length=6.0),
            ]
        )
        scores = scorer.score(small_graph, 0)
        assert scores["a"] > scores["b"]

    def test_best_astar_wins_per_value(self, small_graph):
        scorer = AStarScorer(
            [
                star({"a"}, {"q"}, code_length=2.0),  # mismatch: -4.0
                star({"a"}, {"x"}, code_length=3.0),  # match: -3.0
            ]
        )
        scores = scorer.score(small_graph, 0)
        assert scores["a"] == pytest.approx(-3.0)

    def test_explicit_neighbour_values_override(self, small_graph):
        scorer = AStarScorer([star({"a"}, {"z"}, code_length=2.0)])
        via_graph = scorer.score(small_graph, 0)
        via_override = scorer.score(small_graph, 0, neighbour_values={"z"})
        assert via_override["a"] > via_graph["a"]

    def test_score_array_alignment(self, small_graph):
        scorer = AStarScorer([star({"a"}, {"x"}, code_length=2.0)])
        array = scorer.score_array(["a", "zzz"], small_graph, 0)
        assert array[0] > -math.inf
        assert array[1] == -math.inf

    def test_core_values_property(self):
        scorer = AStarScorer([star({"a", "b"}, {"x"}, code_length=1.0)])
        assert scorer.core_values == frozenset({"a", "b"})

    def test_scorer_accepts_cspm_result(self, planted_result, planted):
        graph, _ = planted
        scorer = AStarScorer(planted_result)
        vertex = next(iter(graph.vertices()))
        scores = scorer.score(graph, vertex)
        assert scores
        assert all(math.isfinite(v) for v in scores.values())

    def test_planted_core_recovered_by_scoring(self, planted, planted_result):
        """Hiding a core carrier's attributes, the scorer should rank
        the planted core value near the top given its neighbours."""
        graph, truth = planted
        scorer = AStarScorer(planted_result)
        pattern = truth.patterns[0]
        carriers = [
            v
            for v in truth.core_positions[pattern.core_value]
            if set(pattern.leaf_values) <= set(graph.neighbor_values(v))
        ]
        if not carriers:
            pytest.skip("no fully-expressed carrier in this seed")
        vertex = carriers[0]
        scores = scorer.score(graph, vertex)
        ranked = sorted(scores, key=lambda value: -scores[value])
        assert pattern.core_value in ranked[: max(3, len(ranked) // 3)]
