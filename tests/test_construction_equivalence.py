"""Construction-equivalence suite: batched == triples == partitioned.

The columnar batch builder (``InvertedDatabase.from_graph``) and the
coreset-partitioned worker-process path must reproduce the pre-columnar
reference builder (``_from_graph_triples`` — one ``_add_position`` per
(coreset, vertex, leaf-value) triple) *exactly*: identical row masks,
row frequencies, interner ids, ``_initial_row_order``, snapshots, leaf
unions and initial ``description_length`` floats, on every mask backend
including the 64-bit-chunk stress variants.  The vectorised grouping
and its pure-Python fallback are both pinned, as is the frozen
vertex-order contract the batch path relies on.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CSPMConfig
from repro.core import inverted_db as inverted_db_module
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.construction import partition_plan
from repro.core.cspm_partial import run_partial
from repro.core.inverted_db import InvertedDatabase
from repro.core.masks import BigintMaskBackend, ChunkedMaskBackend, get_backend
from repro.core.masks.numpy_chunked import NumpyChunkedMaskBackend
from repro.core.mdl import description_length, initial_description_length
from repro.errors import ConfigError, MiningError
from repro.graphs.attributed_graph import AttributedGraph
from repro.graphs.builders import paper_running_example
from repro.graphs.generators import PlantedAStar, planted_astar_graph

# Production defaults plus the chunk-boundary stress variants from
# tests/test_mask_backends.py.
ALL_BACKENDS = [
    BigintMaskBackend(),
    ChunkedMaskBackend(),
    ChunkedMaskBackend(chunk_bits=64),
    NumpyChunkedMaskBackend(),
    NumpyChunkedMaskBackend(chunk_bits=64),
]


def random_graph(seed, num_vertices=40, num_edges=95):
    graph, _ = planted_astar_graph(
        num_vertices,
        num_edges,
        [
            PlantedAStar("p", ("q", "r"), strength=0.9),
            PlantedAStar("s", ("t",), strength=0.85),
        ],
        noise_values=("n1", "n2", "n3"),
        noise_rate=0.25,
        seed=seed,
    )
    return graph


def fingerprint(db):
    """Everything the acceptance criteria pin, in comparable form."""
    backend = db.mask_backend
    return (
        db.snapshot(),
        {key: db.row_frequency(*key) for key in db.snapshot()},
        db.initial_row_order(),
        {core: db.coreset_frequency(core) for core in db.coresets()},
        {
            leaf: db.interner.intern(leaf)
            for leaf in sorted(db.leafsets(), key=repr)
        },
        dict(db.vertex_bit_table()),
        {
            leaf: frozenset(backend.iter_bits(db.leaf_union_mask(leaf)))
            for leaf in db.leafsets()
        },
    )


def builders(graph, backend, workers=3):
    triple = InvertedDatabase._from_graph_triples(graph, mask_backend=backend)
    columnar = InvertedDatabase.from_graph(graph, mask_backend=backend)
    partitioned = InvertedDatabase.from_graph(
        graph,
        mask_backend=backend,
        construction="partitioned",
        construction_workers=workers,
    )
    return triple, columnar, partitioned


@pytest.fixture(params=ALL_BACKENDS, ids=lambda b: repr(b))
def backend(request):
    return request.param


class TestColumnarEquivalence:
    """Batched-vs-triple identity on every backend variant."""

    def test_paper_graph_identical(self, backend):
        graph = paper_running_example()
        triple, columnar, partitioned = builders(graph, backend)
        reference = fingerprint(triple)
        assert fingerprint(columnar) == reference
        assert fingerprint(partitioned) == reference
        columnar.validate(graph)
        partitioned.validate(graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_identical(self, backend, seed):
        graph = random_graph(seed)
        triple, columnar, partitioned = builders(graph, backend)
        reference = fingerprint(triple)
        assert fingerprint(columnar) == reference
        assert fingerprint(partitioned) == reference

    def test_initial_description_length_byte_identical(self, backend):
        graph = random_graph(7)
        standard = StandardCodeTable.from_graph(graph)
        core = CoreCodeTable.singletons_from_graph(graph)
        triple, columnar, partitioned = builders(graph, backend)
        reference = initial_description_length(triple, standard, core)
        for db in (columnar, partitioned):
            folded = initial_description_length(db, standard, core)
            assert folded == reference
            # And both agree with the from-scratch recompute.
            assert folded == description_length(db, standard, core)

    def test_mining_identical_on_all_paths(self):
        graph = random_graph(11)
        standard = StandardCodeTable.from_graph(graph)
        core = CoreCodeTable.singletons_from_graph(graph)
        results = []
        for db in builders(graph, get_backend("chunked")):
            trace = run_partial(db, standard, core)
            results.append(
                (
                    [t.merged_pair for t in trace.iterations],
                    trace.final_dl_bits,
                    trace.total_gain_computations,
                    db.snapshot(),
                )
            )
        assert results[0] == results[1] == results[2]

    def test_pure_fallback_identical(self, backend, monkeypatch):
        graph = random_graph(3)
        reference = fingerprint(
            InvertedDatabase._from_graph_triples(graph, mask_backend=backend)
        )
        monkeypatch.setattr(inverted_db_module, "_np", None)
        pure = InvertedDatabase.from_graph(graph, mask_backend=backend)
        assert fingerprint(pure) == reference

    def test_tiny_group_blocks_identical(self, monkeypatch):
        # Force many flushes so block boundaries are exercised.
        graph = random_graph(5)
        reference = fingerprint(InvertedDatabase.from_graph(graph))
        monkeypatch.setattr(
            InvertedDatabase, "_GROUP_BLOCK_TRIPLES", 16
        )
        blocked = InvertedDatabase.from_graph(graph)
        assert fingerprint(blocked) == reference


VALUES = ["a", "b", "c", "d", "e"]


@st.composite
def attributed_graphs(draw, max_vertices=10):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    graph = AttributedGraph()
    for vertex in range(n):
        graph.add_vertex(vertex)
        size = draw(st.integers(min_value=1, max_value=3))
        values = draw(
            st.sets(st.sampled_from(VALUES), min_size=size, max_size=size)
        )
        graph.set_attributes(vertex, values)
    for vertex in range(1, n):
        graph.add_edge(vertex - 1, vertex)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


@given(graph=attributed_graphs())
@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_property_columnar_matches_triples(graph):
    for backend in (
        BigintMaskBackend(),
        ChunkedMaskBackend(chunk_bits=64),
        NumpyChunkedMaskBackend(chunk_bits=64),
    ):
        triple = InvertedDatabase._from_graph_triples(
            graph, mask_backend=backend
        )
        columnar = InvertedDatabase.from_graph(graph, mask_backend=backend)
        assert fingerprint(columnar) == fingerprint(triple)


@given(graph=attributed_graphs(), data=st.data())
@settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_property_pure_fallback_matches(graph, data):
    saved = inverted_db_module._np
    inverted_db_module._np = None
    try:
        pure = InvertedDatabase.from_graph(graph)
    finally:
        inverted_db_module._np = saved
    assert fingerprint(pure) == fingerprint(InvertedDatabase.from_graph(graph))


class TestPartitionPlan:
    """The contiguous, balanced coreset-space slicer."""

    def plan(self, weights):
        return {
            frozenset((f"c{i}",)): [f"v{i}_{j}" for j in range(w)]
            for i, w in enumerate(weights)
        }

    def test_contiguity_and_coverage(self):
        plan = self.plan([5, 1, 1, 5, 2, 2])
        partitions = partition_plan(plan, 3)
        flattened = [item for part in partitions for item in part]
        assert flattened == list(plan.items())
        assert 1 < len(partitions) <= 3

    def test_single_partition_cases(self):
        plan = self.plan([3, 3])
        assert partition_plan(plan, 1) == [list(plan.items())]
        assert len(partition_plan(plan, 5)) <= 2  # capped by item count

    def test_rough_balance(self):
        plan = self.plan([1] * 100)
        partitions = partition_plan(plan, 4)
        sizes = [sum(len(m) for _c, m in part) for part in partitions]
        assert len(partitions) == 4
        assert max(sizes) <= 2 * min(sizes)

    def test_workers_validated(self):
        graph = paper_running_example()
        with pytest.raises(MiningError, match="construction_workers"):
            InvertedDatabase.from_graph(
                graph, construction="partitioned", construction_workers=0
            )

    def test_unknown_construction_rejected(self):
        with pytest.raises(MiningError, match="construction"):
            InvertedDatabase.from_graph(
                paper_running_example(), construction="sharded"
            )

    def test_one_worker_runs_serial_in_process(self):
        graph = paper_running_example()
        db = InvertedDatabase.from_graph(
            graph, construction="partitioned", construction_workers=1
        )
        assert fingerprint(db) == fingerprint(
            InvertedDatabase.from_graph(graph)
        )


class TestFrozenVertexOrder:
    """Satellite: the explicit ``_bit_of`` fallback contract."""

    def test_from_graph_freezes_the_order(self, paper_graph):
        db = InvertedDatabase.from_graph(paper_graph)
        with pytest.raises(MiningError, match="frozen"):
            db._add_position(
                frozenset(["T"]), frozenset(["C"]), "brand-new-vertex"
            )

    def test_known_vertices_still_addressable(self, paper_graph):
        db = InvertedDatabase.from_graph(paper_graph)
        vertex = next(iter(db.vertex_bit_table()))
        # Adding a position at a known vertex goes through fine (the
        # row bookkeeping is the caller's concern, not the bit table's).
        db._add_position(frozenset(["__new_core__"]), frozenset(["x"]), vertex)
        assert db.row_frequency(frozenset(["__new_core__"]), frozenset(["x"])) == 1

    def test_hand_built_database_keeps_lazy_assignment(self):
        db = InvertedDatabase()
        db._add_position(frozenset(["a"]), frozenset(["b"]), "v0")
        db._add_position(frozenset(["a"]), frozenset(["b"]), "v1")
        assert db.vertex_bit_table() == {"v0": 0, "v1": 1}

    def test_copy_preserves_the_freeze(self, paper_graph):
        clone = InvertedDatabase.from_graph(paper_graph).copy()
        with pytest.raises(MiningError, match="frozen"):
            clone._add_position(frozenset(["T"]), frozenset(["C"]), "nope")


class TestConfigAndFacade:
    """The construction knobs across config, facade and CLI."""

    def test_config_validates_construction(self):
        assert CSPMConfig().construction == "serial"
        assert CSPMConfig(construction="partitioned").construction == (
            "partitioned"
        )
        with pytest.raises(ConfigError, match="construction"):
            CSPMConfig(construction="sharded")
        with pytest.raises(ConfigError, match="construction_workers"):
            CSPMConfig(construction_workers=0)
        with pytest.raises(ConfigError, match="construction_workers"):
            CSPMConfig(construction_workers=True)

    def test_defaults_not_serialised(self):
        # Schema-v1 result documents (and the CLI golden file) must not
        # grow fields for execution-engine defaults.
        document = CSPMConfig().to_dict()
        assert "construction" not in document
        assert "construction_workers" not in document
        assert CSPMConfig.from_dict(document) == CSPMConfig()

    def test_non_defaults_round_trip(self):
        config = CSPMConfig(construction="partitioned", construction_workers=2)
        document = config.to_dict()
        assert document["construction"] == "partitioned"
        assert document["construction_workers"] == 2
        assert CSPMConfig.from_dict(document) == config

    def test_facade_partitioned_mines_identically(self, paper_graph):
        from repro import CSPM

        reference = CSPM().fit(paper_graph)
        mined = CSPM(construction="partitioned", construction_workers=2).fit(
            paper_graph
        )
        assert mined.inverted_db.snapshot() == reference.inverted_db.snapshot()
        assert [star.to_dict() for star in mined.astars] == [
            star.to_dict() for star in reference.astars
        ]
        assert mined.trace.final_dl_bits == reference.trace.final_dl_bits

    def test_cli_exposes_construction_flags(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.graphs.io import save_json

        path = tmp_path / "graph.json"
        save_json(paper_running_example(), str(path))
        assert (
            main(
                [
                    "mine",
                    str(path),
                    "--construction",
                    "partitioned",
                    "--construction-workers",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["config"]["construction"] == "partitioned"
        assert document["config"]["construction_workers"] == 2

    def test_pipeline_records_construction_seconds(self, paper_graph):
        from repro.pipeline import MiningPipeline

        context = MiningPipeline.default().run_context(paper_graph)
        assert context.extras["construction_seconds"] >= 0.0
