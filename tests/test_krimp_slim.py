"""Tests for the Krimp and SLIM miners."""

import pytest

from repro.itemsets import cover_database, mine_code_table
from repro.itemsets.krimp import KrimpMiner
from repro.itemsets.slim import SlimMiner, slim_on_graph
from repro.itemsets.transactions import TransactionDatabase
from repro.graphs.builders import paper_running_example

# a+b always together, c half the time; d independent.
CORRELATED = [
    {"a", "b"},
    {"a", "b", "c"},
    {"a", "b"},
    {"a", "b", "c"},
    {"a", "b", "d"},
    {"a", "b"},
    {"d"},
    {"c", "d"},
]


@pytest.fixture()
def db():
    return TransactionDatabase(CORRELATED)


class TestKrimp:
    def test_compresses(self, db):
        report = KrimpMiner(min_support=2).fit(db)
        assert report.final_bits < report.initial_bits
        assert report.compression_ratio < 1.0

    def test_finds_the_correlated_pair(self, db):
        report = KrimpMiner(min_support=2).fit(db)
        assert frozenset({"a", "b"}) in report.accepted

    def test_dl_matches_code_table(self, db):
        report = KrimpMiner(min_support=2).fit(db)
        assert report.final_bits == pytest.approx(report.code_table.total_bits())

    def test_candidates_respect_min_support(self, db):
        report = KrimpMiner(min_support=7).fit(db)
        # No itemset of size >= 2 has support >= 7.
        assert report.candidates_considered == 0
        assert report.accepted == []

    def test_covers_stay_partitions(self, db):
        report = KrimpMiner(min_support=2).fit(db)
        for transaction, cover in zip(db, report.code_table.covers()):
            union = set()
            size = 0
            for itemset in cover:
                union |= itemset
                size += len(itemset)
            assert union == set(transaction) and size == len(transaction)


class TestSlim:
    def test_compresses(self, db):
        report = SlimMiner().fit(db)
        assert report.final_bits < report.initial_bits

    def test_finds_the_correlated_pair(self, db):
        report = SlimMiner().fit(db)
        assert frozenset({"a", "b"}) in report.accepted

    def test_rounds_counted(self, db):
        report = SlimMiner().fit(db)
        assert report.rounds == len(report.accepted)

    def test_max_rounds_cap(self, db):
        report = SlimMiner(max_rounds=1).fit(db)
        assert report.rounds <= 1

    def test_dl_never_increases_across_accepts(self, db):
        # Final bits equals the code table's recomputed DL and is the
        # minimum over the acceptance sequence by construction.
        report = SlimMiner().fit(db)
        assert report.final_bits == pytest.approx(report.code_table.total_bits())

    def test_slim_on_graph_runs(self):
        report = slim_on_graph(paper_running_example())
        assert report.initial_bits > 0
        assert report.final_bits <= report.initial_bits


class TestFacadeHelpers:
    def test_mine_code_table_slim_and_krimp(self):
        for algorithm in ("slim", "krimp"):
            table = mine_code_table(CORRELATED, algorithm=algorithm)
            assert frozenset({"a", "b"}) in table.itemsets()

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            mine_code_table(CORRELATED, algorithm="apriori")

    def test_cover_database_shapes(self):
        table = mine_code_table(CORRELATED, algorithm="slim")
        covers = cover_database(table, CORRELATED)
        assert len(covers) == len(CORRELATED)
        for transaction, cover in zip(CORRELATED, covers):
            union = set()
            for itemset in cover:
                union |= itemset
            assert union == set(transaction)


class TestMultiValueCoresets:
    def test_miner_with_slim_encoder(self):
        """Section IV-F: multi-value coresets via SLIM on attributes."""
        from repro.core.miner import CSPM
        from repro.graphs.attributed_graph import AttributedGraph

        # Vertices with strongly co-occurring attribute pair {p, q}.
        edges = [(i, i + 1) for i in range(9)]
        attributes = {}
        for i in range(10):
            attributes[i] = {"p", "q"} if i % 2 == 0 else {"r"}
        graph = AttributedGraph.from_edges(edges, attributes)
        result = CSPM(coreset_encoder="slim").fit(graph)
        coresets = {star.coreset for star in result.astars}
        assert frozenset({"p", "q"}) in coresets

    def test_miner_with_krimp_encoder(self):
        from repro.core.miner import CSPM
        from repro.graphs.attributed_graph import AttributedGraph

        edges = [(i, i + 1) for i in range(9)]
        attributes = {}
        for i in range(10):
            attributes[i] = {"p", "q"} if i % 2 == 0 else {"r"}
        graph = AttributedGraph.from_edges(edges, attributes)
        result = CSPM(coreset_encoder="krimp").fit(graph)
        assert result.astars
        result.inverted_db.validate()
