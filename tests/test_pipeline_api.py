"""Tests for the composable MiningPipeline."""

import pytest

from repro import CSPM, CSPMConfig, MiningPipeline, MiningError
from repro.graphs.attributed_graph import AttributedGraph
from repro.pipeline import (
    BuildInvertedDB,
    EncodeCoresets,
    FunctionStage,
    RankAndFilter,
    Search,
)


class TestDefaultPipeline:
    def test_stage_names(self):
        pipeline = MiningPipeline.default()
        assert pipeline.stage_names() == [
            "EncodeCoresets",
            "BuildInvertedDB",
            "Search",
            "RankAndFilter",
        ]

    def test_matches_facade_exactly(self, planted, planted_result):
        graph, _truth = planted
        result = MiningPipeline.default(CSPMConfig()).run(graph)
        assert result.astars == planted_result.astars
        assert (
            result.initial_dl.total_bits == planted_result.initial_dl.total_bits
        )
        assert result.final_dl.total_bits == planted_result.final_dl.total_bits
        assert (
            result.trace.num_iterations == planted_result.trace.num_iterations
        )

    def test_basic_method_matches_facade(self, paper_graph):
        config = CSPMConfig(method="basic")
        assert (
            MiningPipeline.default(config).run(paper_graph).astars
            == CSPM(config=config).fit(paper_graph).astars
        )

    def test_result_records_config(self, paper_graph):
        config = CSPMConfig(top_k=3)
        result = MiningPipeline.default(config).run(paper_graph)
        assert result.config == config

    def test_run_config_override(self, paper_graph):
        pipeline = MiningPipeline.default(CSPMConfig())
        capped = pipeline.run(paper_graph, config=CSPMConfig(top_k=2))
        assert len(capped.astars) == 2
        # the pipeline's own config is untouched
        assert pipeline.config.top_k is None

    def test_empty_graph_rejected(self):
        with pytest.raises(MiningError):
            MiningPipeline.default().run(AttributedGraph())


class TestBasicPartialTieBreak:
    """Regression: exact gain ties must not diverge basic vs partial.

    This graph produces two merge candidates with bit-identical gains
    at iteration 2; before the strict (gain, pair-key) revalidation in
    run_partial, the lazy queue accepted whichever pair it popped first
    and the two searches converged to different models.
    """

    def test_tied_gains_same_model(self):
        graph = AttributedGraph.from_edges(
            edges=[
                (0, 1), (0, 4), (1, 2), (2, 3), (2, 6),
                (3, 4), (4, 5), (4, 6), (5, 6),
            ],
            attributes={
                0: {"a", "c", "d"},
                1: {"e"},
                2: {"b", "c"},
                3: {"a"},
                4: {"a", "e"},
                5: {"e"},
                6: {"e"},
            },
        )
        basic = CSPM(config=CSPMConfig(method="basic")).fit(graph)
        partial = CSPM(config=CSPMConfig(method="partial")).fit(graph)
        assert basic.astars == partial.astars
        assert basic.final_dl == partial.final_dl
        assert [t.merged_pair for t in basic.trace.iterations] == [
            t.merged_pair for t in partial.trace.iterations
        ]


class TestPostFilters:
    def test_top_k_truncates_ranking(self, paper_graph):
        full = CSPM().fit(paper_graph)
        capped = CSPM(config=CSPMConfig(top_k=2)).fit(paper_graph)
        assert capped.astars == full.astars[:2]

    def test_min_leafset_filters(self, paper_graph):
        full = CSPM().fit(paper_graph)
        filtered = CSPM(config=CSPMConfig(min_leafset=2)).fit(paper_graph)
        assert filtered.astars == [
            star for star in full.astars if len(star.leafset) >= 2
        ]

    def test_filters_do_not_change_search(self, paper_graph):
        full = CSPM().fit(paper_graph)
        capped = CSPM(config=CSPMConfig(top_k=1, min_leafset=2)).fit(paper_graph)
        assert capped.trace.num_iterations == full.trace.num_iterations
        assert capped.final_dl.total_bits == full.final_dl.total_bits


class TestComposition:
    def test_callable_stage_is_wrapped(self):
        pipeline = MiningPipeline.default().with_stage(
            lambda context: None, before="Search"
        )
        assert len(pipeline.stages) == 5
        assert isinstance(pipeline.stages[2], FunctionStage)

    def test_instrumentation_tap_sees_intermediate_state(self, paper_graph):
        seen = {}

        def tap(context):
            seen["rows"] = context.inverted_db.num_rows
            seen["initial_bits"] = context.initial_dl.total_bits
            seen["searched"] = context.trace is not None

        result = (
            MiningPipeline.default()
            .with_stage(tap, before="Search")
            .run(paper_graph)
        )
        assert seen["rows"] > 0
        assert seen["initial_bits"] == result.initial_dl.total_bits
        assert seen["searched"] is False  # ran before the search stage

    def test_appended_stage_sees_result(self, paper_graph):
        seen = {}
        MiningPipeline.default().with_stage(
            lambda context: seen.setdefault("result", context.result)
        ).run(paper_graph)
        assert seen["result"] is not None

    def test_with_stage_after(self):
        pipeline = MiningPipeline.default().with_stage(
            FunctionStage(lambda context: None, name="tap"), after="Search"
        )
        assert pipeline.stage_names()[3] == "tap"

    def test_stage_class_rejected_eagerly(self):
        with pytest.raises(MiningError, match="instance"):
            MiningPipeline.default().with_stage(EncodeCoresets)

    def test_with_stage_unknown_anchor(self):
        with pytest.raises(MiningError):
            MiningPipeline.default().with_stage(lambda c: None, before="Nope")

    def test_with_stage_both_anchors_rejected(self):
        with pytest.raises(MiningError):
            MiningPipeline.default().with_stage(
                lambda c: None, before="Search", after="Search"
            )

    def test_with_stage_returns_new_pipeline(self):
        base = MiningPipeline.default()
        extended = base.with_stage(lambda c: None)
        assert len(base.stages) == 4
        assert len(extended.stages) == 5

    def test_with_config(self, paper_graph):
        base = MiningPipeline.default()
        capped = base.with_config(CSPMConfig(top_k=1))
        assert len(capped.run(paper_graph).astars) == 1
        assert base.config.top_k is None

    def test_custom_stage_order_from_scratch(self, paper_graph):
        pipeline = MiningPipeline(
            [EncodeCoresets(), BuildInvertedDB(), Search(), RankAndFilter()]
        )
        assert pipeline.run(paper_graph).astars == CSPM().fit(paper_graph).astars

    def test_missing_rank_stage_fails_loudly(self, paper_graph):
        pipeline = MiningPipeline([EncodeCoresets(), BuildInvertedDB(), Search()])
        with pytest.raises(MiningError):
            pipeline.run(paper_graph)

    def test_empty_stage_list_rejected(self):
        with pytest.raises(MiningError):
            MiningPipeline([])
