"""Unit tests for the inverted database, including the Fig. 2 golden
values and the Fig. 4 worked merge."""

import pytest

from repro.core.inverted_db import InvertedDatabase
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph


def fs(*values):
    return frozenset(values)


class TestConstruction:
    def test_paper_rows_match_fig2(self, paper_db):
        # Fig. 2(b): the record (SL={a}, Sc={c}) appears at {v2, v3}.
        assert paper_db.positions(fs("c"), fs("a")) == fs(1 * 2, 3)
        # Spot-check the remaining rows of the running example.
        assert paper_db.positions(fs("a"), fs("b")) == fs(1, 5)
        assert paper_db.positions(fs("a"), fs("c")) == fs(1, 5)
        assert paper_db.positions(fs("b"), fs("b")) == fs(4, 5)
        assert paper_db.num_rows == 8

    def test_initial_rows_are_single_leaf_values(self, paper_db):
        assert all(len(leaf) == 1 for _c, leaf, _p in paper_db.rows())

    def test_coreset_frequency_is_row_sum(self, paper_db):
        for core in paper_db.coresets():
            total = sum(
                paper_db.row_frequency(core, leaf)
                for leaf in paper_db.leafsets()
            )
            assert total == paper_db.coreset_frequency(core)

    def test_total_frequency(self, paper_db):
        assert paper_db.total_frequency() == 13

    def test_validates_against_graph(self, paper_db, paper_graph):
        paper_db.validate(paper_graph)

    def test_empty_coreset_rejected(self, paper_graph):
        with pytest.raises(MiningError):
            InvertedDatabase.from_graph(
                paper_graph, coreset_positions={frozenset(): [1]}
            )

    def test_isolated_vertices_produce_no_rows(self):
        graph = AttributedGraph.from_edges([(1, 2)], {1: {"a"}, 2: {"b"}, 3: {"c"}})
        db = InvertedDatabase.from_graph(graph)
        assert db.positions(fs("c"), fs("a")) == frozenset()
        assert {core for core, _l, _p in db.rows()} == {fs("a"), fs("b")}


class TestIndexes:
    def test_common_coresets(self, paper_db):
        common = set(paper_db.common_coresets(fs("b"), fs("c")))
        assert common == {fs("a"), fs("b")}

    def test_leafsets_of_coreset(self, paper_db):
        assert paper_db.leafsets_of(fs("c")) == fs(fs("a"), fs("b"))

    def test_related_leafsets(self, paper_db):
        related = paper_db.related_leafsets(fs("a"))
        assert related == fs(fs("b"), fs("c"))

    def test_leaf_union_mask_matches_rows(self, paper_db):
        for leaf in paper_db.leafsets():
            union = 0
            for core in paper_db.coresets_of(leaf):
                vertices = paper_db.positions(core, leaf)
                for vertex in vertices:
                    union |= 1 << paper_db._vertex_bit[vertex]
            assert union == paper_db.leaf_union_mask(leaf)


class TestMerge:
    def test_fig4_merge_of_b_and_c(self, paper_db, paper_graph):
        """The paper's worked example: merging leafsets {b} and {c}."""
        outcome = paper_db.merge(fs("b"), fs("c"))
        # Coreset {a}: totally merged at positions {v1, v5}.
        assert paper_db.positions(fs("a"), fs("b", "c")) == fs(1, 5)
        assert paper_db.row_frequency(fs("a"), fs("b")) == 0
        assert paper_db.row_frequency(fs("a"), fs("c")) == 0
        # Coreset {b}: one line totally merged; ({b},{b}) keeps {v4}.
        assert paper_db.positions(fs("b"), fs("b", "c")) == fs(5)
        assert paper_db.positions(fs("b"), fs("b")) == fs(4)
        assert paper_db.row_frequency(fs("b"), fs("c")) == 0
        # Leafset {c} is gone entirely.
        assert outcome.removed_leafsets == {fs("c")}
        assert outcome.partly_merged_leafsets == {fs("b")}
        paper_db.validate(paper_graph)

    def test_merge_stats_cases(self, paper_db):
        stats = {s.coreset: s for s in paper_db.merge_stats(fs("b"), fs("c"))}
        assert stats[fs("a")].case == "total"
        assert stats[fs("b")].case == "one-total"

    def test_merge_updates_coreset_frequencies(self, paper_db):
        before_a = paper_db.coreset_frequency(fs("a"))
        before_b = paper_db.coreset_frequency(fs("b"))
        paper_db.merge(fs("b"), fs("c"))
        assert paper_db.coreset_frequency(fs("a")) == before_a - 2
        assert paper_db.coreset_frequency(fs("b")) == before_b - 1

    def test_merge_with_self_rejected(self, paper_db):
        with pytest.raises(MiningError):
            paper_db.merge(fs("b"), fs("b"))

    def test_merge_unknown_leafset_rejected(self, paper_db):
        with pytest.raises(MiningError):
            paper_db.merge(fs("b"), fs("zzz"))

    def test_disjoint_leafsets_merge_is_noop(self):
        # x and y live under the same coreset {a} but at different
        # core positions, so xye == 0 and the merge must change nothing.
        graph = AttributedGraph.from_edges(
            [(1, 2), (3, 4)],
            {1: {"a"}, 2: {"x"}, 3: {"a"}, 4: {"y"}},
        )
        db = InvertedDatabase.from_graph(graph)
        snapshot = db.snapshot()
        outcome = db.merge(fs("x"), fs("y"))
        assert all(stat.xye == 0 for stat in outcome.stats)
        assert outcome.stats  # the coreset {a} is common to both
        assert db.snapshot() == snapshot

    def test_copy_isolated_from_merges(self, paper_db):
        clone = paper_db.copy()
        paper_db.merge(fs("b"), fs("c"))
        assert clone.num_rows == 8
        clone.validate()


class TestValidation:
    def test_validate_detects_frequency_corruption(self, paper_db):
        core = next(iter(paper_db.coresets()))
        paper_db._core_freq[core] += 1
        with pytest.raises(MiningError):
            paper_db.validate()

    def test_validate_detects_stale_union(self, paper_db):
        leaf = next(iter(paper_db.leafsets()))
        paper_db._leaf_union[leaf] ^= 1
        with pytest.raises(MiningError):
            paper_db.validate()
