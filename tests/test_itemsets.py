"""Tests for the itemset-mining substrate (transactions, Eclat, covers)."""

import math

import pytest

from repro.errors import EncodingError, MiningError
from repro.itemsets.code_table import ItemsetCodeTable
from repro.itemsets.eclat import frequent_itemsets
from repro.itemsets.transactions import TransactionDatabase

DATA = [
    {"a", "b", "c"},
    {"a", "b"},
    {"a", "b", "d"},
    {"c", "d"},
    {"a", "b", "c"},
]


@pytest.fixture()
def db():
    return TransactionDatabase(DATA)


class TestTransactionDatabase:
    def test_len_and_items(self, db):
        assert len(db) == 5
        assert db.items == ["a", "b", "c", "d"]

    def test_support(self, db):
        assert db.support({"a", "b"}) == 4
        assert db.support({"a", "b", "c"}) == 2
        assert db.support({"a", "zzz"}) == 0
        assert db.support(set()) == 5

    def test_item_frequencies(self, db):
        frequencies = db.item_frequencies()
        assert frequencies["a"] == 4
        assert frequencies["d"] == 2

    def test_tidlist(self, db):
        assert db.tidlist("c") == frozenset({0, 3, 4})

    def test_empty_database_rejected(self):
        with pytest.raises(MiningError):
            TransactionDatabase([])
        with pytest.raises(MiningError):
            TransactionDatabase([set(), set()])


class TestEclat:
    def test_finds_all_frequent_itemsets(self, db):
        found = dict(frequent_itemsets(db, min_support=2))
        assert found[frozenset({"a", "b"})] == 4
        assert found[frozenset({"a", "b", "c"})] == 2
        assert frozenset({"a", "d"}) not in found  # support 1

    def test_min_support_filters(self, db):
        found = dict(frequent_itemsets(db, min_support=4))
        assert set(found) == {
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"a", "b"}),
        }

    def test_max_size_caps_length(self, db):
        found = dict(frequent_itemsets(db, min_support=2, max_size=1))
        assert all(len(itemset) == 1 for itemset in found)

    def test_supports_are_correct(self, db):
        for itemset, support in frequent_itemsets(db, min_support=1):
            assert support == db.support(itemset)

    def test_invalid_parameters(self, db):
        with pytest.raises(MiningError):
            frequent_itemsets(db, min_support=0)
        with pytest.raises(MiningError):
            frequent_itemsets(db, max_size=0)


class TestItemsetCodeTable:
    def test_initial_cover_is_singletons(self, db):
        table = ItemsetCodeTable(db)
        cover = table.cover(frozenset({"a", "b"}))
        assert sorted(map(set, cover), key=str) == [{"a"}, {"b"}]

    def test_cover_is_partition(self, db):
        table = ItemsetCodeTable(db)
        table.add({"a", "b"})
        for transaction in db:
            cover = table.cover(transaction)
            union = set()
            total = 0
            for itemset in cover:
                union |= itemset
                total += len(itemset)
            assert union == set(transaction)
            assert total == len(transaction)  # no overlaps

    def test_larger_itemsets_cover_first(self, db):
        table = ItemsetCodeTable(db)
        table.add({"a", "b"})
        cover = table.cover(frozenset({"a", "b", "c"}))
        assert frozenset({"a", "b"}) in cover

    def test_usages_sum_matches_covers(self, db):
        table = ItemsetCodeTable(db)
        table.add({"a", "b"})
        usages = table.usages()
        assert usages[frozenset({"a", "b"})] == 4
        assert usages[frozenset({"a"})] == 0
        total_cover_elements = sum(len(c) for c in table.covers())
        assert sum(usages.values()) == total_cover_elements

    def test_adding_useful_itemset_reduces_dl(self, db):
        table = ItemsetCodeTable(db)
        before = table.total_bits()
        table.add({"a", "b"})
        assert table.total_bits() < before

    def test_remove_restores_dl(self, db):
        table = ItemsetCodeTable(db)
        before = table.total_bits()
        table.add({"a", "b"})
        table.remove({"a", "b"})
        assert table.total_bits() == pytest.approx(before)

    def test_code_lengths_follow_usage(self, db):
        table = ItemsetCodeTable(db)
        table.add({"a", "b"})
        # {a,b} used 4 times; {c} used 3 times -> {a,b} shorter code.
        assert table.code_length({"a", "b"}) < table.code_length({"c"})

    def test_unused_itemset_has_infinite_code(self, db):
        table = ItemsetCodeTable(db)
        table.add({"a", "b"})
        assert table.code_length({"a"}) == math.inf

    def test_add_guards(self, db):
        table = ItemsetCodeTable(db)
        with pytest.raises(MiningError):
            table.add({"a"})  # singleton
        with pytest.raises(MiningError):
            table.add({"a", "zzz"})  # never occurs
        table.add({"a", "b"})
        with pytest.raises(MiningError):
            table.add({"a", "b"})  # duplicate

    def test_remove_guards(self, db):
        table = ItemsetCodeTable(db)
        with pytest.raises(MiningError):
            table.remove({"a"})
        with pytest.raises(MiningError):
            table.remove({"a", "b"})

    def test_unknown_item_in_transaction(self, db):
        table = ItemsetCodeTable(db)
        with pytest.raises(EncodingError):
            table.cover(frozenset({"a", "unknown"}))
