"""Tests for the alarm-correlation application (rules, simulator,
ACOR, CSPM extraction, coverage)."""

import pytest

from repro.alarms import (
    AlarmEvent,
    PairRule,
    acor_rank_pairs,
    coverage_curve,
    cspm_rank_pairs,
    default_rule_library,
    simulate_alarms,
)
from repro.alarms.analysis import area_under_coverage
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def library():
    return default_rule_library(seed=0)


@pytest.fixture(scope="module")
def simulation(library):
    return simulate_alarms(
        library,
        num_devices=60,
        num_windows=120,
        causes_per_window=2.0,
        propagation=0.85,
        neighbour_fraction=0.9,
        num_noise_types=10,
        noise_rate=1.0,
        derivative_flap_rate=1.0,
        cascade_probability=0.3,
        window_split_probability=0.2,
        seed=3,
    )


class TestRuleLibrary:
    def test_paper_shape(self, library):
        assert len(library.rules) == 11
        assert library.num_pair_rules == 121

    def test_pair_rules_are_cause_derivative(self, library):
        causes = {rule.cause for rule in library.rules}
        for pair in library.pair_rules():
            assert pair.cause in causes
            assert pair.derivative not in causes

    def test_derivatives_unique_across_rules(self, library):
        seen = set()
        for rule in library.rules:
            for derivative in rule.derivatives:
                assert derivative not in seen
                seen.add(derivative)

    def test_custom_sizes(self):
        library = default_rule_library(num_rules=3, total_pairs=10)
        assert len(library.rules) == 3
        assert library.num_pair_rules == 10

    def test_invalid_sizes(self):
        with pytest.raises(DatasetError):
            default_rule_library(num_rules=0)
        with pytest.raises(DatasetError):
            default_rule_library(num_rules=5, total_pairs=3)


class TestSimulator:
    def test_events_reference_known_types(self, library, simulation):
        known = set(library.alarm_types()) | set(simulation.noise_types)
        assert {event.alarm_type for event in simulation.events} <= known

    def test_windows_in_range(self, simulation):
        assert all(
            0 <= event.window < simulation.num_windows
            for event in simulation.events
        )

    def test_causes_produce_derivatives_nearby(self, library, simulation):
        """For each cause firing, most derivatives appear on the same
        or an adjacent device within a window of the firing."""
        rule = library.rules[0]
        by_window = {}
        for event in simulation.events:
            by_window.setdefault(event.window, []).append(event)
        checked = 0
        nearby = 0
        for event in simulation.events:
            if event.alarm_type != rule.cause:
                continue
            neighbourhood = {event.device} | simulation.topology[event.device]
            local = [
                other
                for w in (event.window, event.window + 1)
                for other in by_window.get(w, [])
                if other.device in neighbourhood
            ]
            derivatives = {
                o.alarm_type for o in local if o.alarm_type in rule.derivatives
            }
            checked += 1
            nearby += len(derivatives) / len(rule.derivatives)
        assert checked > 0
        assert nearby / checked > 0.5

    def test_attributed_graph_round_trip(self, simulation):
        graph = simulation.to_attributed_graph()
        assert graph.num_vertices > 0
        # Every vertex's attributes come from events of its window.
        events = {}
        for event in simulation.events:
            events.setdefault((event.window, event.device), set()).add(
                event.alarm_type
            )
        for vertex in graph.vertices():
            assert graph.attributes_of(vertex) == frozenset(events[vertex])

    def test_simulator_guards(self, library):
        with pytest.raises(DatasetError):
            simulate_alarms(library, num_devices=1)
        with pytest.raises(DatasetError):
            simulate_alarms(library, num_windows=0)

    def test_seeded_determinism(self, library):
        first = simulate_alarms(library, num_devices=30, num_windows=20, seed=9)
        second = simulate_alarms(library, num_devices=30, num_windows=20, seed=9)
        assert first.events == second.events


class TestRankings:
    def test_acor_emits_scored_pairs(self, simulation):
        ranked = acor_rank_pairs(simulation)
        assert ranked
        scores = [score for _pair, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(0 < score <= 1 for score in scores)

    def test_acor_finds_true_rules(self, library, simulation):
        ranked = acor_rank_pairs(simulation)
        truth = set(library.pair_rules())
        found = {pair for pair, _score in ranked}
        assert len(truth & found) > len(truth) * 0.5

    def test_cspm_finds_true_rules(self, library, simulation):
        ranked = cspm_rank_pairs(simulation)
        truth = set(library.pair_rules())
        found = {pair for pair, _score in ranked}
        assert len(truth & found) > len(truth) * 0.5

    def test_cspm_scores_descend(self, simulation):
        ranked = cspm_rank_pairs(simulation)
        scores = [score for _pair, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_max_pairs_truncates(self, simulation):
        assert len(cspm_rank_pairs(simulation, max_pairs=10)) == 10
        assert len(acor_rank_pairs(simulation, max_pairs=10)) == 10


class TestCoverage:
    def test_curve_monotone_and_bounded(self, library, simulation):
        ranked = cspm_rank_pairs(simulation)
        curve = coverage_curve(ranked, library.pair_rules(), [10, 100, 1000, 10000])
        assert all(0.0 <= v <= 1.0 for v in curve)
        assert curve == sorted(curve)

    def test_full_ranking_reaches_found_fraction(self, library, simulation):
        ranked = cspm_rank_pairs(simulation)
        truth = library.pair_rules()
        found = {pair for pair, _ in ranked}
        expected = len(set(truth) & found) / len(truth)
        (coverage,) = coverage_curve(ranked, truth, [len(ranked)])
        assert coverage == pytest.approx(expected)

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            coverage_curve([(PairRule("a", "b"), 1.0)], [], [1])

    def test_area_summary(self):
        assert area_under_coverage([0.0, 0.5, 1.0]) == pytest.approx(0.5)
        assert area_under_coverage([]) == 0.0


class TestTypes:
    def test_pair_rule_str(self):
        assert str(PairRule("x", "y")) == "x -> y"

    def test_alarm_event_frozen(self):
        event = AlarmEvent(1, 2, "z")
        with pytest.raises(Exception):
            event.window = 5
