"""Unit tests for the attributed graph substrate."""

import pytest

from repro.errors import GraphError
from repro.graphs.attributed_graph import AttributedGraph


def build_triangle():
    return AttributedGraph.from_edges(
        edges=[(1, 2), (2, 3), (1, 3)],
        attributes={1: {"a"}, 2: {"a", "b"}, 3: {"c"}},
    )


class TestConstruction:
    def test_from_edges_counts(self):
        graph = build_triangle()
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_from_adjacency_matches_from_edges(self):
        adjacency = {1: [2, 3], 2: [1, 3], 3: [1, 2]}
        attributes = {1: {"a"}, 2: {"a", "b"}, 3: {"c"}}
        left = AttributedGraph.from_adjacency(adjacency, attributes)
        assert left == build_triangle()

    def test_attribute_only_vertices_are_isolated(self):
        graph = AttributedGraph.from_edges([(1, 2)], {3: {"x"}})
        assert 3 in graph
        assert graph.degree(3) == 0

    def test_duplicate_edges_collapse(self):
        graph = AttributedGraph.from_edges([(1, 2), (2, 1), (1, 2)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = AttributedGraph()
        with pytest.raises(GraphError):
            graph.add_edge(5, 5)

    def test_networkx_round_trip(self):
        graph = build_triangle()
        back = AttributedGraph.from_networkx(graph.to_networkx())
        assert back == graph


class TestQueries:
    def test_neighbors(self):
        graph = build_triangle()
        assert graph.neighbors(1) == frozenset({2, 3})

    def test_unknown_vertex_raises(self):
        graph = build_triangle()
        with pytest.raises(GraphError):
            graph.neighbors(99)
        with pytest.raises(GraphError):
            graph.attributes_of(99)
        with pytest.raises(GraphError):
            graph.degree(99)

    def test_neighbor_values_union(self):
        graph = build_triangle()
        assert graph.neighbor_values(3) == frozenset({"a", "b"})

    def test_edges_iterated_once(self):
        graph = build_triangle()
        edges = list(graph.edges())
        assert len(edges) == 3
        normalized = {frozenset(edge) for edge in edges}
        assert normalized == {
            frozenset({1, 2}),
            frozenset({2, 3}),
            frozenset({1, 3}),
        }

    def test_value_positions_is_mapping_table(self):
        graph = build_triangle()
        positions = graph.value_positions()
        assert positions["a"] == frozenset({1, 2})
        assert positions["b"] == frozenset({2})

    def test_value_frequencies(self):
        graph = build_triangle()
        frequencies = graph.value_frequencies()
        assert frequencies["a"] == 2
        assert graph.total_value_occurrences() == 4

    def test_attribute_values_universe(self):
        assert build_triangle().attribute_values() == frozenset({"a", "b", "c"})


class TestMutation:
    def test_set_attributes_replaces(self):
        graph = build_triangle()
        graph.set_attributes(1, {"z"})
        assert graph.attributes_of(1) == frozenset({"z"})

    def test_add_attribute_accumulates(self):
        graph = build_triangle()
        graph.add_attribute(1, "q")
        assert graph.attributes_of(1) == frozenset({"a", "q"})

    def test_set_attributes_unknown_vertex(self):
        graph = build_triangle()
        with pytest.raises(GraphError):
            graph.set_attributes(42, {"a"})


class TestStructure:
    def test_connectivity(self):
        graph = build_triangle()
        assert graph.is_connected()
        graph.add_vertex(99)
        assert not graph.is_connected()

    def test_subgraph_induces_edges_and_attributes(self):
        graph = build_triangle()
        sub = graph.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.attributes_of(2) == frozenset({"a", "b"})

    def test_subgraph_unknown_vertex(self):
        with pytest.raises(GraphError):
            build_triangle().subgraph([1, 77])

    def test_copy_is_independent(self):
        graph = build_triangle()
        clone = graph.copy()
        clone.add_edge(1, 4)
        clone.set_attributes(1, {"changed"})
        assert graph.num_edges == 3
        assert graph.attributes_of(1) == frozenset({"a"})
        assert clone != graph
