"""The supervised runtime's resilience guarantee, exercised end to end.

Every multiprocess path in this repo is pinned bit-exact to its serial
twin, so the strongest possible claim is testable and tested here:
whatever a worker does — crash (``os._exit``), hang past the timeout,
fail the result pickle, or return a corrupt payload — the supervised
run still produces the serial-identical result, via retry on a fresh
pool or in-process degradation.  Faults come from deterministic
:class:`~repro.runtime.faults.FaultPlan` schedules, so every chaos
scenario here reproduces exactly.

Covered per site (construction partitions, search components, batch
runs): retry-then-succeed, degrade-to-serial past the retry budget,
and ``on_worker_failure="raise"``; the search site additionally runs
across mask backends.
"""

import json

import pytest

from repro.config import CSPMConfig
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_partial import run_partial
from repro.core.inverted_db import InvertedDatabase
from repro.core.masks import get_backend
from repro.core.search_shard import run_sharded
from repro.errors import ConfigError, WorkerFailure
from repro.graphs.attributed_graph import AttributedGraph
from repro.graphs.builders import paper_running_example
from repro.graphs.generators import PlantedAStar, planted_astar_graph
from repro.runtime import (
    ENV_VAR,
    CorruptResult,
    FaultEvent,
    FaultPlan,
    RuntimePolicy,
    SiteReport,
    backoff_seconds,
    environment_plan,
    resolve_plan,
    run_supervised,
)

#: A hang long enough to trip the short test timeouts below, short
#: enough that a worker the supervisor somehow failed to terminate
#: exits the test run on its own.
HANG = 15.0

#: Timeout used by the hang tests: generous against slow CI workers,
#: small against HANG.
SHORT_TIMEOUT = 2.0


def _no_sleep(_seconds: float) -> None:
    """Injected clock for tests: skip real backoff delays."""


def quiet_policy(**kwargs) -> RuntimePolicy:
    kwargs.setdefault("sleep", _no_sleep)
    return RuntimePolicy(**kwargs)


def _double(job):
    """Module-level worker for the supervisor unit tests (FRK001)."""
    return job * 2


def crash_plan(site, index=0, times=1, kind="crash"):
    return FaultPlan(
        events=(
            FaultEvent(
                site=site, index=index, kind=kind, times=times,
                hang_seconds=HANG,
            ),
        )
    )


def multi_component_graph(seed, parts=3):
    """Disjoint planted graphs -> a multi-component overlap graph."""
    graph = AttributedGraph()
    for part in range(parts):
        sub, _ = planted_astar_graph(
            40,
            90,
            [PlantedAStar(f"p{part}", (f"q{part}", f"r{part}"), strength=0.9)],
            noise_values=(f"n{part}a", f"n{part}b"),
            noise_rate=0.25,
            seed=seed * 7 + part,
        )
        offset = part * 10_000
        for vertex in sub.vertices():
            graph.add_vertex(vertex + offset)
            graph.set_attributes(vertex + offset, sub.attributes_of(vertex))
        for left, right in sub.edges():
            graph.add_edge(left + offset, right + offset)
    return graph


def search_setup(graph, mask_backend=None):
    backend = get_backend(mask_backend) if mask_backend else None
    return (
        InvertedDatabase.from_graph(graph, mask_backend=backend),
        StandardCodeTable.from_graph(graph),
        CoreCodeTable.singletons_from_graph(graph),
    )


# ----------------------------------------------------------------------
# FaultPlan / FaultEvent semantics
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ConfigError, match="site"):
            FaultEvent(site="disk", index=0, kind="crash")
        with pytest.raises(ConfigError, match="kind"):
            FaultEvent(site="search", index=0, kind="gamma-ray")
        with pytest.raises(ConfigError, match="index"):
            FaultEvent(site="search", index=-1, kind="crash")
        with pytest.raises(ConfigError, match="times"):
            FaultEvent(site="search", index=0, kind="crash", times=0)
        with pytest.raises(ConfigError, match="hang_seconds"):
            FaultEvent(site="search", index=0, kind="hang", hang_seconds=0)

    def test_times_budget_gates_attempts(self):
        plan = crash_plan("search", index=2, times=2)
        assert plan.fault_for("search", 2, 0) is not None
        assert plan.fault_for("search", 2, 1) is not None
        assert plan.fault_for("search", 2, 2) is None  # budget spent
        assert plan.fault_for("search", 1, 0) is None  # other index
        assert plan.fault_for("batch", 2, 0) is None  # other site

    def test_first_matching_event_wins(self):
        plan = FaultPlan(
            events=(
                FaultEvent(site="batch", index=0, kind="crash"),
                FaultEvent(site="batch", index=0, kind="hang"),
            )
        )
        assert plan.fault_for("batch", 0, 0).kind == "crash"

    def test_seeded_is_deterministic(self):
        assert FaultPlan.seeded(3) == FaultPlan.seeded(3)
        assert FaultPlan.seeded(3) != FaultPlan.seeded(4)
        assert not FaultPlan.seeded(3, rate=0.0)
        full = FaultPlan.seeded(3, rate=1.0, max_index=4)
        assert len(full.events) == 4 * 3  # every (site, index) pair

    def test_round_trip_and_unknown_fields(self):
        plan = crash_plan("construction", times=3)
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        with pytest.raises(ConfigError, match="unknown fault plan"):
            FaultPlan.from_dict({"events": [], "surprise": 1})
        with pytest.raises(ConfigError, match="unknown fault event"):
            FaultPlan.from_dict(
                {"events": [{"site": "batch", "index": 0, "kind": "crash",
                             "extra": True}]}
            )

    def test_coerce_spellings(self, tmp_path):
        plan = crash_plan("batch")
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(plan.to_dict()) == plan
        assert FaultPlan.coerce(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.coerce(str(path)) == plan
        with pytest.raises(ConfigError, match="cannot read fault plan"):
            FaultPlan.coerce(str(tmp_path / "missing.json"))
        with pytest.raises(ConfigError):
            FaultPlan.coerce(42)

    def test_environment_activation_and_precedence(self):
        plan = crash_plan("search")
        assert environment_plan({}) is None
        assert environment_plan({ENV_VAR: plan.to_json()}) == plan
        config_plan = crash_plan("batch")
        assert resolve_plan(config_plan, {ENV_VAR: plan.to_json()}) == config_plan
        assert resolve_plan(None, {ENV_VAR: plan.to_json()}) == plan

    def test_config_coerces_and_env_reaches_policy(self, monkeypatch):
        plan = crash_plan("search")
        config = CSPMConfig(fault_plan=plan.to_dict())
        assert config.fault_plan == plan
        monkeypatch.setenv(ENV_VAR, crash_plan("batch").to_json())
        assert RuntimePolicy.from_config(CSPMConfig()).fault_plan == crash_plan(
            "batch"
        )
        # The config's plan wins over the environment's.
        assert RuntimePolicy.from_config(config).fault_plan == plan


# ----------------------------------------------------------------------
# Supervisor unit behaviour (tiny jobs, real pools)
# ----------------------------------------------------------------------


class TestSupervisor:
    def test_no_faults_preserves_order(self):
        results, report = run_supervised(
            "batch", [1, 2, 3], _double, quiet_policy(), max_workers=2
        )
        assert results == [2, 4, 6]
        assert isinstance(report, SiteReport)
        assert (report.tasks, report.rounds) == (3, 1)
        assert report.retries == 0 and report.degraded_tasks == []

    @pytest.mark.parametrize("kind", ["crash", "pickle", "corrupt"])
    def test_retry_then_succeed(self, kind):
        policy = quiet_policy(fault_plan=crash_plan("batch", times=1, kind=kind))
        results, report = run_supervised(
            "batch", [7], _double, policy, max_workers=1, expect_type=int
        )
        assert results == [14]
        assert report.retries == 1
        assert report.degraded_tasks == []
        assert any("injected " + kind in line for line in report.failures)

    def test_hang_times_out_then_succeeds(self):
        policy = quiet_policy(
            fault_plan=crash_plan("batch", times=1, kind="hang"),
            worker_timeout=SHORT_TIMEOUT,
        )
        results, report = run_supervised(
            "batch", [7], _double, policy, max_workers=1
        )
        assert results == [14]
        assert report.retries == 1
        assert any("timed out" in line for line in report.failures)

    def test_exhausted_task_degrades_in_process(self):
        policy = quiet_policy(
            fault_plan=crash_plan("batch", times=10), max_task_retries=1
        )
        results, report = run_supervised(
            "batch", [7], _double, policy, max_workers=1
        )
        assert results == [14]
        assert report.degraded_tasks == [0]
        assert report.retries == 1  # one re-submission, then exhausted

    def test_raise_policy_raises_worker_failure(self):
        policy = quiet_policy(
            fault_plan=crash_plan("batch", times=10),
            max_task_retries=0,
            on_worker_failure="raise",
        )
        with pytest.raises(WorkerFailure) as excinfo:
            run_supervised("batch", [7], _double, policy, max_workers=1)
        failure = excinfo.value
        assert failure.site == "batch"
        assert failure.task_index == 0
        assert failure.attempts == 1

    def test_crash_only_disturbs_its_round(self):
        # Index 1 crashes twice then succeeds; every result is exact
        # and in order regardless of which other tasks shared the
        # broken pools.
        policy = quiet_policy(fault_plan=crash_plan("batch", index=1, times=2))
        results, report = run_supervised(
            "batch", [1, 2, 3, 4], _double, policy, max_workers=2
        )
        assert results == [2, 4, 6, 8]
        assert report.retries >= 2
        assert report.rounds >= 3

    def test_backoff_is_deterministic_and_bounded(self):
        values = [
            backoff_seconds("search", index, attempt)
            for index in range(4)
            for attempt in range(6)
        ]
        assert values == [
            backoff_seconds("search", index, attempt)
            for index in range(4)
            for attempt in range(6)
        ]
        assert all(0.0 < value <= 2.0 for value in values)

    def test_sleep_clock_is_injected(self):
        delays = []
        policy = quiet_policy(
            fault_plan=crash_plan("batch", times=1), sleep=delays.append
        )
        run_supervised("batch", [7], _double, policy, max_workers=1)
        assert delays == [backoff_seconds("batch", 0, 1)]


# ----------------------------------------------------------------------
# Construction site: partitions killed, result identical
# ----------------------------------------------------------------------


def construction_graph():
    graph, _ = planted_astar_graph(
        50,
        120,
        [
            PlantedAStar("p", ("q", "r"), strength=0.9),
            PlantedAStar("s", ("t",), strength=0.85),
        ],
        noise_values=("n1", "n2"),
        noise_rate=0.2,
        seed=11,
    )
    return graph


def assert_construction_bit_exact(policy):
    graph = construction_graph()
    serial = InvertedDatabase.from_graph(graph)
    supervised = InvertedDatabase.from_graph(
        graph,
        construction="partitioned",
        construction_workers=2,
        runtime_policy=policy,
    )
    assert supervised.snapshot() == serial.snapshot()
    assert supervised._initial_row_order == serial._initial_row_order
    assert supervised.construction_report is not None
    return supervised.construction_report


class TestConstructionSite:
    def test_killed_partition_retries_bit_exact(self):
        report = assert_construction_bit_exact(
            quiet_policy(fault_plan=crash_plan("construction", times=1))
        )
        assert report.retries >= 1
        assert report.degraded_tasks == []

    def test_exhausted_partition_degrades_bit_exact(self):
        report = assert_construction_bit_exact(
            quiet_policy(
                fault_plan=crash_plan("construction", times=10),
                max_task_retries=1,
            )
        )
        assert 0 in report.degraded_tasks

    def test_raise_policy(self):
        graph = construction_graph()
        with pytest.raises(WorkerFailure) as excinfo:
            InvertedDatabase.from_graph(
                graph,
                construction="partitioned",
                construction_workers=2,
                runtime_policy=quiet_policy(
                    fault_plan=crash_plan("construction", times=10),
                    max_task_retries=0,
                    on_worker_failure="raise",
                ),
            )
        assert excinfo.value.site == "construction"


# ----------------------------------------------------------------------
# Search site: components killed, stitched trace identical
# ----------------------------------------------------------------------


def assert_search_bit_exact(policy, mask_backend=None, seed=6):
    graph = multi_component_graph(seed)
    db_serial, standard, core = search_setup(graph, mask_backend)
    trace_serial = run_partial(db_serial, standard, core, update_scope="lazy")
    db_sharded, _, _ = search_setup(graph, mask_backend)
    sharded = run_sharded(
        db_sharded,
        standard,
        core,
        update_scope="lazy",
        workers=2,
        policy=policy,
    )
    assert sharded.trace.to_dict() == trace_serial.to_dict()
    assert db_sharded.snapshot() == db_serial.snapshot()
    return sharded.report


class TestSearchSite:
    @pytest.mark.parametrize("mask_backend", [None, "chunked", "numpy"])
    def test_killed_component_retries_bit_exact(self, mask_backend):
        report = assert_search_bit_exact(
            quiet_policy(fault_plan=crash_plan("search", times=1)),
            mask_backend=mask_backend,
        )
        assert report is not None and report.retries >= 1

    def test_hung_component_times_out_bit_exact(self):
        report = assert_search_bit_exact(
            quiet_policy(
                fault_plan=crash_plan("search", times=1, kind="hang"),
                worker_timeout=SHORT_TIMEOUT,
            )
        )
        assert any("timed out" in line for line in report.failures)

    @pytest.mark.parametrize("mask_backend", [None, "chunked"])
    def test_exhausted_component_degrades_bit_exact(self, mask_backend):
        report = assert_search_bit_exact(
            quiet_policy(
                fault_plan=crash_plan("search", times=10), max_task_retries=1
            ),
            mask_backend=mask_backend,
        )
        assert 0 in report.degraded_tasks

    def test_raise_policy(self):
        graph = multi_component_graph(6)
        db, standard, core = search_setup(graph)
        with pytest.raises(WorkerFailure) as excinfo:
            run_sharded(
                db,
                standard,
                core,
                workers=2,
                policy=quiet_policy(
                    fault_plan=crash_plan("search", times=10),
                    max_task_retries=0,
                    on_worker_failure="raise",
                ),
            )
        assert excinfo.value.site == "search"


# ----------------------------------------------------------------------
# Batch site: runs killed, per-run results identical
# ----------------------------------------------------------------------


def batch_graphs():
    graphs = [paper_running_example()]
    for seed in (1, 2):
        graph, _ = planted_astar_graph(
            40,
            90,
            [PlantedAStar("core", ("l1", "l2"), strength=0.9)],
            noise_values=("n1", "n2"),
            noise_rate=0.2,
            seed=seed,
        )
        graphs.append(graph)
    return graphs


def assert_batch_bit_exact(fault_config):
    from repro import fit_many

    graphs = batch_graphs()
    serial = fit_many(graphs, CSPMConfig(top_k=15))
    supervised = fit_many(
        graphs, fault_config, n_jobs=2, executor="process"
    )
    for left, right in zip(serial, supervised):
        assert left.result.astars == right.result.astars
        assert left.result.trace.to_dict() == right.result.trace.to_dict()
        assert (
            left.result.final_dl.total_bits == right.result.final_dl.total_bits
        )
    return supervised.report


class TestBatchSite:
    def test_killed_run_retries_bit_exact(self):
        report = assert_batch_bit_exact(
            CSPMConfig(top_k=15, fault_plan=crash_plan("batch", times=1))
        )
        assert report is not None and report.retries >= 1

    def test_exhausted_run_degrades_bit_exact(self):
        report = assert_batch_bit_exact(
            CSPMConfig(
                top_k=15,
                fault_plan=crash_plan("batch", times=10),
                max_task_retries=1,
            )
        )
        assert 0 in report.degraded_tasks

    def test_raise_policy(self):
        from repro import fit_many

        with pytest.raises(WorkerFailure) as excinfo:
            fit_many(
                batch_graphs(),
                CSPMConfig(
                    fault_plan=crash_plan("batch", times=10),
                    max_task_retries=0,
                    on_worker_failure="raise",
                ),
                n_jobs=2,
                executor="process",
            )
        assert excinfo.value.site == "batch"

    def test_mining_exception_is_isolated_not_retried(self):
        """A deterministic per-run exception becomes an error record in
        place — it must not burn pool retries or kill the batch."""
        from repro import fit_many

        graphs = batch_graphs()
        graphs[1] = AttributedGraph()  # empty graph: the pipeline raises
        batch = fit_many(graphs, CSPMConfig(), n_jobs=2, executor="process")
        assert len(batch) == len(graphs)
        assert batch[0].ok and batch[2].ok
        failed = batch[1]
        assert not failed.ok and failed.result is None
        assert failed.error and failed.traceback
        assert batch.errors == [failed]
        assert "FAILED" in batch.summary()
        # The supervisor saw clean pool executions: no retries burned.
        assert batch.report is not None and batch.report.retries == 0
        document = failed.to_dict()
        assert document["error"] == failed.error


# ----------------------------------------------------------------------
# End-to-end: pipeline + CLI telemetry under injected faults
# ----------------------------------------------------------------------


class TestEndToEnd:
    def test_fit_with_faults_matches_serial_and_reports(self):
        from repro import CSPM

        graph = multi_component_graph(5)
        serial = CSPM(partial_update_scope="lazy").fit(graph)
        plan = crash_plan("search", times=1)
        supervised = CSPM(
            partial_update_scope="lazy",
            search="sharded",
            search_workers=2,
            fault_plan=plan,
        ).fit(graph)
        assert supervised.astars == serial.astars
        assert supervised.trace.to_dict() == serial.trace.to_dict()
        assert supervised.final_dl == serial.final_dl
        assert serial.runtime is None
        runtime = supervised.runtime
        assert runtime["search"]["retries"] >= 1
        assert runtime["fault_plan"] == plan.to_dict()

    def test_mine_json_surfaces_runtime_telemetry(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs.io import save_json

        path = tmp_path / "graph.json"
        save_json(multi_component_graph(4), path)
        plan = crash_plan("search", times=1)
        assert (
            main(
                [
                    "mine",
                    str(path),
                    "--json",
                    "--search",
                    "sharded",
                    "--search-workers",
                    "2",
                    "--fault-plan",
                    plan.to_json(),
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["runtime"]["search"]["retries"] >= 1
        assert document["runtime"]["fault_plan"] == plan.to_dict()
        assert document["config"]["fault_plan"] == plan.to_dict()

    def test_cli_exits_nonzero_on_repro_error(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs.io import save_json

        path = tmp_path / "graph.json"
        save_json(paper_running_example(), path)
        code = main(
            ["mine", str(path), "--fault-plan", '{"events": "bogus"}']
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
