"""Tests for graph generators, IO, statistics and builders."""

import pytest

from repro.errors import DatasetError, GraphError
from repro.graphs.builders import paper_running_example, path_graph, star_graph
from repro.graphs.generators import (
    PlantedAStar,
    planted_astar_graph,
    random_attributed_graph,
)
from repro.graphs.io import (
    from_json_dict,
    load_json,
    save_json,
    to_adjacency_text,
    to_json_dict,
)
from repro.graphs.stats import graph_stats, stats_table


class TestBuilders:
    def test_running_example_shape(self):
        graph = paper_running_example()
        assert graph.num_vertices == 5
        assert graph.num_edges == 5
        assert graph.attributes_of(2) == frozenset({"a", "c"})
        assert graph.is_connected()

    def test_star_graph(self):
        graph = star_graph(["x"], [["a"], ["b", "c"]])
        assert graph.degree(0) == 2
        assert graph.neighbor_values(0) == frozenset({"a", "b", "c"})

    def test_star_graph_needs_leaves(self):
        with pytest.raises(GraphError):
            star_graph(["x"], [])

    def test_path_graph(self):
        graph = path_graph([["a"], ["b"], ["c"]])
        assert graph.num_edges == 2
        assert graph.degree(1) == 2

    def test_path_graph_empty(self):
        with pytest.raises(GraphError):
            path_graph([])


class TestGenerators:
    def test_random_graph_connected_and_sized(self):
        graph = random_attributed_graph(30, 60, ["a", "b", "c"], seed=1)
        assert graph.num_vertices == 30
        assert graph.num_edges == 60
        assert graph.is_connected()
        for vertex in graph.vertices():
            assert len(graph.attributes_of(vertex)) == 2

    def test_random_graph_seeded(self):
        first = random_attributed_graph(20, 40, ["a", "b"], seed=5)
        second = random_attributed_graph(20, 40, ["a", "b"], seed=5)
        assert first == second

    def test_random_graph_guards(self):
        with pytest.raises(DatasetError):
            random_attributed_graph(10, 3, ["a"])  # too few edges
        with pytest.raises(DatasetError):
            random_attributed_graph(4, 100, ["a"])  # too many edges
        with pytest.raises(DatasetError):
            random_attributed_graph(4, 4, [])  # no values

    def test_planted_graph_places_cores(self):
        patterns = [PlantedAStar("core", ("l1", "l2"), strength=1.0)]
        graph, truth = planted_astar_graph(
            50, 120, patterns, noise_values=("n",), seed=0
        )
        positions = truth.core_positions["core"]
        assert positions
        for vertex in positions:
            assert "core" in graph.attributes_of(vertex)

    def test_planted_strength_one_means_leaves_nearby(self):
        patterns = [PlantedAStar("core", ("l1",), strength=1.0)]
        graph, truth = planted_astar_graph(40, 100, patterns, seed=3)
        hits = sum(
            1
            for vertex in truth.core_positions["core"]
            if "l1" in graph.neighbor_values(vertex)
        )
        assert hits / len(truth.core_positions["core"]) > 0.9

    def test_planted_guards(self):
        with pytest.raises(DatasetError):
            planted_astar_graph(10, 20, [], noise_rate=2.0)
        with pytest.raises(DatasetError):
            planted_astar_graph(10, 20, [], carrier_fraction=0.0)


class TestIO:
    def test_json_round_trip(self, tmp_path, paper_graph):
        path = tmp_path / "graph.json"
        save_json(paper_graph, path)
        loaded = load_json(path)
        assert loaded == paper_graph

    def test_json_dict_round_trip(self, paper_graph):
        assert from_json_dict(to_json_dict(paper_graph)) == paper_graph

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            load_json(tmp_path / "missing.json")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(GraphError):
            load_json(path)

    def test_adjacency_text_mentions_all_vertices(self, paper_graph):
        text = to_adjacency_text(paper_graph)
        assert len(text.splitlines()) == paper_graph.num_vertices
        assert "a,c" in text  # v2's values


class TestStats:
    def test_paper_graph_stats(self, paper_graph):
        stats = graph_stats(paper_graph)
        assert stats.num_vertices == 5
        assert stats.num_edges == 5
        assert stats.num_values == 3
        assert stats.num_coresets == 3
        assert stats.avg_values_per_vertex == pytest.approx(7 / 5)
        assert stats.avg_degree == pytest.approx(2.0)

    def test_coresets_require_attributed_neighbours(self):
        from repro.graphs.attributed_graph import AttributedGraph

        graph = AttributedGraph.from_edges(
            [(1, 2)], {1: {"a"}, 2: set(), 3: {"b"}}
        )
        stats = graph_stats(graph)
        # 'a' has only an unattributed neighbour; 'b' is isolated.
        assert stats.num_coresets == 0

    def test_stats_table_format(self, paper_graph):
        text = stats_table([("example", paper_graph)])
        assert "example" in text
        assert "#Nodes" in text
