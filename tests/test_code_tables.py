"""Unit tests for the standard and coreset code tables (Eq. 5)."""

import math

import pytest

from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.errors import EncodingError
from repro.graphs.attributed_graph import AttributedGraph


class TestStandardCodeTable:
    def test_paper_graph_frequencies(self, paper_graph):
        table = StandardCodeTable.from_graph(paper_graph)
        # a appears at v1, v2, v5 -> 3 of 7 total occurrences.
        assert table.code_length("a") == pytest.approx(-math.log2(3 / 7))
        assert table.code_length("b") == pytest.approx(-math.log2(2 / 7))
        assert table.code_length("c") == pytest.approx(-math.log2(2 / 7))
        assert table.total_occurrences == 7

    def test_rarer_values_get_longer_codes(self, paper_graph):
        table = StandardCodeTable.from_graph(paper_graph)
        assert table.code_length("b") > table.code_length("a")

    def test_set_cost_is_additive(self, paper_graph):
        table = StandardCodeTable.from_graph(paper_graph)
        assert table.set_cost({"a", "b"}) == pytest.approx(
            table.code_length("a") + table.code_length("b")
        )

    def test_unknown_value_raises(self, paper_graph):
        table = StandardCodeTable.from_graph(paper_graph)
        with pytest.raises(EncodingError):
            table.code_length("zzz")

    def test_empty_graph_rejected(self):
        graph = AttributedGraph()
        graph.add_vertex(1)
        with pytest.raises(EncodingError):
            StandardCodeTable.from_graph(graph)

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(EncodingError):
            StandardCodeTable({"a": 0})

    def test_membership_and_len(self, paper_graph):
        table = StandardCodeTable.from_graph(paper_graph)
        assert "a" in table
        assert "zzz" not in table
        assert len(table) == 3


class TestCoreCodeTable:
    def test_singletons_match_standard_table(self, paper_graph):
        standard = StandardCodeTable.from_graph(paper_graph)
        core = CoreCodeTable.singletons_from_graph(paper_graph)
        for value in ("a", "b", "c"):
            assert core.code_length(frozenset([value])) == pytest.approx(
                standard.code_length(value)
            )

    def test_multi_value_usage(self):
        table = CoreCodeTable({frozenset({"a", "b"}): 3, frozenset({"c"}): 1})
        assert table.usage({"a", "b"}) == 3
        assert table.code_length({"a", "b"}) == pytest.approx(-math.log2(3 / 4))
        assert table.total_usage == 4

    def test_duplicate_keys_accumulate(self):
        table = CoreCodeTable({frozenset({"a"}): 2})
        assert table.usage(("a",)) == 2

    def test_unknown_coreset_raises(self):
        table = CoreCodeTable({frozenset({"a"}): 1})
        with pytest.raises(EncodingError):
            table.code_length(frozenset({"zzz"}))

    def test_empty_or_invalid_usage_rejected(self):
        with pytest.raises(EncodingError):
            CoreCodeTable({})
        with pytest.raises(EncodingError):
            CoreCodeTable({frozenset({"a"}): 0})
