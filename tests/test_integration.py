"""End-to-end integration tests across packages."""

import numpy as np
import pytest

from repro import CSPM, AStarScorer
from repro.alarms import (
    acor_rank_pairs,
    coverage_curve,
    cspm_rank_pairs,
    default_rule_library,
    simulate_alarms,
)
from repro.completion.experiment import run_completion_experiment
from repro.datasets import load_dataset
from repro.graphs.io import from_json_dict, to_json_dict


class TestMiningPipeline:
    def test_dataset_to_patterns(self):
        """Generate -> mine -> rank -> score, on the Pokec analogue."""
        graph = load_dataset("pokec", seed=2)
        result = CSPM().fit(graph)
        assert result.compression_ratio < 0.9
        result.inverted_db.validate(graph)

        scorer = AStarScorer(result)
        vertex = next(iter(graph.vertices()))
        scores = scorer.score(graph, vertex)
        assert scores

    def test_serialisation_then_mining(self):
        graph = load_dataset("usflight", seed=1)
        clone = from_json_dict(to_json_dict(graph))
        original = CSPM().fit(graph)
        roundtrip = CSPM().fit(clone)
        assert original.final_dl.total_bits == pytest.approx(
            roundtrip.final_dl.total_bits
        )

    def test_mining_deterministic(self):
        graph = load_dataset("dblp", scale=0.3, seed=0)
        first = CSPM().fit(graph)
        second = CSPM().fit(graph)
        assert [s.sort_key() for s in first.astars] == [
            s.sort_key() for s in second.astars
        ]


class TestCompletionPipeline:
    def test_small_experiment_improves_weak_baseline(self):
        graph = load_dataset("cora", scale=0.08, seed=3)
        report = run_completion_experiment(
            graph,
            dataset_name="cora-small",
            ks=(10, 20),
            models=["neighaggre", "vae"],
            test_fraction=0.4,
            seed=0,
            model_kwargs={"vae": {"epochs": 40}},
        )
        table = report.as_table()
        assert "CSPM+neighaggre" in table
        improvement = report.improvement()
        # The Table IV effect on the weak baselines.
        assert sum(improvement.values()) / len(improvement) > 0

    def test_metrics_in_unit_interval(self):
        graph = load_dataset("cora", scale=0.08, seed=4)
        report = run_completion_experiment(
            graph,
            dataset_name="x",
            ks=(5,),
            models=["neighaggre"],
            seed=1,
        )
        for block in (report.plain, report.fused):
            for metrics in block.values():
                for value in metrics.values():
                    assert 0.0 <= value <= 1.0


class TestAlarmPipeline:
    def test_cspm_beats_acor_in_late_coverage(self):
        library = default_rule_library(seed=0)
        simulation = simulate_alarms(
            library,
            num_devices=80,
            num_windows=150,
            causes_per_window=2.5,
            propagation=0.85,
            neighbour_fraction=0.85,
            num_noise_types=20,
            noise_rate=2.0,
            derivative_flap_rate=2.0,
            cascade_probability=0.4,
            window_split_probability=0.5,
            seed=1,
        )
        truth = library.pair_rules()
        ks = [250, 500, 1000, 2000]
        cspm_curve = coverage_curve(cspm_rank_pairs(simulation), truth, ks)
        acor_curve = coverage_curve(acor_rank_pairs(simulation), truth, ks)
        assert cspm_curve[-1] >= 0.95
        assert sum(cspm_curve) >= sum(acor_curve)


class TestPublicAPI:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__

    def test_numpy_interop(self):
        """Scores fuse with plain numpy arrays end to end."""
        from repro.completion.fusion import fuse_scores

        model = np.random.default_rng(0).random((4, 6))
        cspm = np.full((4, 6), -np.inf)
        cspm[:, 0] = 1.0
        fused = fuse_scores(model, cspm)
        assert fused.shape == (4, 6)
        assert np.isfinite(fused).all()
